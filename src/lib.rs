//! # gridbnb — grid-enabled branch and bound with interval-coded work units
//!
//! A from-scratch Rust reproduction of M. Mezmaz, N. Melab and E-G.
//! Talbi, *A Grid-enabled Branch and Bound Algorithm for Solving
//! Challenging Combinatorial Optimization Problems* (INRIA RR-5945 /
//! IPDPS 2007) — the system that produced the first exact resolution of
//! Taillard's Ta056 flowshop instance (makespan 3679) on a 1889-processor
//! nation-wide grid.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`bigint`] | `gridbnb-bigint` | arbitrary-precision integers (50! sized node numbers) |
//! | [`coding`] | `gridbnb-coding` | node weight/number/range, fold & unfold operators |
//! | [`engine`] | `gridbnb-engine` | `Problem` trait + interval-restricted DFS explorer |
//! | [`flowshop`] | `gridbnb-flowshop` | Taillard instances, makespan, bounds, NEH, iterated greedy |
//! | [`tsp`] | `gridbnb-tsp` | TSP as a second `Problem` |
//! | [`qap`] | `gridbnb-qap` | QAP campaign: Nugent-style instances, LAP, Gilmore–Lawler bounds, greedy |
//! | [`core`] | `gridbnb-core` | coordinator, pull protocol, checkpoints, thread runtime |
//! | [`net`] | `gridbnb-net` | the protocol over real TCP: wire codec, socket server, client transports |
//! | [`grid`] | `gridbnb-grid` | discrete-event simulator of the paper's grid |
//!
//! ## Quickstart
//!
//! ```
//! use gridbnb::core::runtime::{run, RuntimeConfig};
//! use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem};
//! use gridbnb::flowshop::bounds::PairSelection;
//!
//! // An exactly-solvable Taillard-like instance: 9 jobs × 4 machines.
//! let instance = taillard::generate(9, 4, 1234);
//! let problem = FlowshopProblem::new(instance, BoundMode::Johnson(PairSelection::All));
//! let report = run(&problem, &RuntimeConfig::new(4));
//! println!(
//!     "optimum {:?} after {} nodes across {} work units",
//!     report.proven_optimum,
//!     report.total_explored(),
//!     report.coordinator_stats.work_allocations,
//! );
//! assert!(report.proven_optimum.is_some());
//! ```
//!
//! ## QAP campaign quickstart
//!
//! The same engine/coordinator/shard stack solves a third problem
//! unchanged — here a Nugent-style quadratic assignment instance,
//! upper-bounded by greedy + pairwise exchange and proven optimal
//! through a sharded run:
//!
//! ```
//! use gridbnb::core::runtime::{run, RuntimeConfig};
//! use gridbnb::qap::greedy::{greedy_upper_bound, GreedyParams};
//! use gridbnb::qap::{Bound, QapInstance, QapProblem};
//!
//! // Six facilities on a 2×3 grid with Manhattan distances.
//! let instance = QapInstance::nugent_style(2, 3, 42);
//! let (_, ub) = greedy_upper_bound(&instance, &GreedyParams::default());
//! let problem = QapProblem::new(instance, Bound::GilmoreLawler);
//! let config = RuntimeConfig::new(2)
//!     .with_shards(2)
//!     .with_initial_upper_bound(ub + 1);
//! let report = run(&problem, &config);
//! let optimum = report.proven_optimum.expect("greedy+1 bounds the space");
//! assert!(optimum <= ub);
//! ```

pub use gridbnb_bigint as bigint;
pub use gridbnb_coding as coding;
pub use gridbnb_core as core;
pub use gridbnb_engine as engine;
pub use gridbnb_flowshop as flowshop;
pub use gridbnb_grid as grid;
pub use gridbnb_net as net;
pub use gridbnb_qap as qap;
pub use gridbnb_tsp as tsp;
