//! Load generator for the network service layer: a worker storm (W far
//! above the host's core count, the paper's farmer regime) hammering a
//! loopback [`NetServer`] with heartbeat contacts, reporting sustained
//! contacts/sec and the latency tail per client wiring mode.
//!
//! ```sh
//! cargo run --release --example net_storm -- \
//!     [--workers 64] [--contacts 100] [--shards 4] \
//!     [--mode per|mux|both] [--aggregate none|fixed:N|adaptive:N] \
//!     [--metrics] [--json PATH]
//! ```
//!
//! Each worker joins (checking a real interval out of the sharded
//! coordinator), then fires `--contacts` heartbeat updates of that
//! interval, timing every round trip. Per-connection mode gives each
//! worker its own socket; multiplexed mode pipelines the whole storm
//! over one socket, which the server folds into shared coordinator
//! bundles — the mode the `net` bench gates in CI.
//!
//! `--aggregate` puts a [`gridbnb::core::ContactGateway`] between the
//! handler pool and the router: `fixed:N` pins the fan-in, `adaptive:N`
//! starts at `N/4` and lets the buffered-age / contention /
//! backpressure policy resize it within `[1, N]`. `--metrics` scrapes
//! the server's registry over the same TCP port *while the storm
//! runs* — proving live observability under load — and reports series
//! counts plus the adaptive policy's grow/shrink transitions.

use gridbnb::core::{GatewayPolicy, Interval, Request, Response, Transport, UBig, WorkerId};
use gridbnb::net::{
    query_metrics, ClientMode, ClientOptions, MuxClient, NetServer, ServerConfig, SocketTransport,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, PartialEq)]
enum Aggregate {
    None,
    Fixed(usize),
    Adaptive(usize),
}

impl Aggregate {
    /// The 500 µs deadline keeps heartbeat p99 bounded while still
    /// letting the gateway merge a storm's worth of contacts per flush.
    fn policy(self) -> Option<GatewayPolicy> {
        const MAX_DELAY_NS: u64 = 500_000;
        match self {
            Aggregate::None => None,
            Aggregate::Fixed(fan_in) => Some(GatewayPolicy::new(fan_in, MAX_DELAY_NS)),
            Aggregate::Adaptive(max_fan_in) => Some(GatewayPolicy::adaptive(
                (max_fan_in / 4).max(1),
                max_fan_in,
                MAX_DELAY_NS,
            )),
        }
    }

    fn name(self) -> String {
        match self {
            Aggregate::None => "none".into(),
            Aggregate::Fixed(n) => format!("fixed:{n}"),
            Aggregate::Adaptive(n) => format!("adaptive:{n}"),
        }
    }
}

struct Args {
    workers: usize,
    contacts: u64,
    shards: usize,
    modes: Vec<ClientMode>,
    aggregate: Aggregate,
    metrics: bool,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 64,
        contacts: 100,
        shards: 4,
        modes: vec![ClientMode::PerConnection, ClientMode::Multiplexed],
        aggregate: Aggregate::None,
        metrics: false,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--workers" => args.workers = value().parse().expect("--workers N"),
            "--contacts" => args.contacts = value().parse().expect("--contacts M"),
            "--shards" => args.shards = value().parse().expect("--shards S"),
            "--mode" => {
                args.modes = match value().as_str() {
                    "per" => vec![ClientMode::PerConnection],
                    "mux" => vec![ClientMode::Multiplexed],
                    "both" => vec![ClientMode::PerConnection, ClientMode::Multiplexed],
                    other => panic!("--mode must be per, mux or both, not {other}"),
                }
            }
            "--aggregate" => {
                let spec = value();
                args.aggregate = match spec.split_once(':') {
                    None if spec == "none" => Aggregate::None,
                    Some(("fixed", n)) => Aggregate::Fixed(n.parse().expect("fixed:N")),
                    Some(("adaptive", n)) => Aggregate::Adaptive(n.parse().expect("adaptive:N")),
                    _ => panic!("--aggregate must be none, fixed:N or adaptive:N, not {spec}"),
                }
            }
            "--metrics" => args.metrics = true,
            "--json" => args.json = Some(value()),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One mode's aggregate: every contact latency, plus the storm's wall
/// time from first to last contact.
struct StormResult {
    mode: &'static str,
    contacts: u64,
    wall_s: f64,
    latencies_ns: Vec<u64>,
    scrape: Option<ScrapeSummary>,
}

/// What the live metrics scraper saw: how many mid-storm scrapes
/// landed, the final exposition, and the adaptive policy's transitions.
struct ScrapeSummary {
    scrapes: u64,
    series: usize,
    fanin_grow: u64,
    fanin_shrink: u64,
    gateway_fan_in: u64,
    text: String,
}

/// Sums every sample of `name` (all label sets) in an exposition text.
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .filter(|line| {
            line.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with(' ') || rest.starts_with('{'))
        })
        .filter_map(|line| line.rsplit(' ').next())
        .filter_map(|value| value.parse::<u64>().ok())
        .sum()
}

impl StormResult {
    fn contacts_per_sec(&self) -> f64 {
        self.contacts as f64 / self.wall_s
    }

    /// `q` in [0, 1] over the sorted latency sample.
    fn quantile_us(&self, q: f64) -> f64 {
        let index = ((self.latencies_ns.len() - 1) as f64 * q).round() as usize;
        self.latencies_ns[index] as f64 / 1_000.0
    }
}

fn mode_name(mode: ClientMode) -> &'static str {
    match mode {
        ClientMode::PerConnection => "per_connection",
        ClientMode::Multiplexed => "multiplexed",
    }
}

/// Joins as `worker`, then times `contacts` heartbeat updates.
fn storm_worker(transport: Box<dyn Transport + Send>, worker: WorkerId, contacts: u64) -> Vec<u64> {
    let responses = transport
        .contact(vec![Request::Join { worker, power: 100 }])
        .expect("join contact");
    let interval = match responses.into_iter().next() {
        Some(Response::Work { interval, .. }) => interval,
        other => panic!("join answered {other:?}"),
    };
    let mut latencies = Vec::with_capacity(contacts as usize);
    for _ in 0..contacts {
        let t0 = Instant::now();
        let responses = transport
            .contact(vec![Request::Update {
                worker,
                interval: interval.clone(),
            }])
            .expect("heartbeat contact");
        latencies.push(t0.elapsed().as_nanos() as u64);
        assert!(
            matches!(responses.first(), Some(Response::UpdateAck { .. })),
            "heartbeat answered {responses:?}"
        );
    }
    latencies
}

/// Scrapes the server registry over TCP until `stop` flips, keeping
/// the last exposition — proof the metrics endpoint answers mid-storm.
fn scrape_loop(addr: SocketAddr, stop: &AtomicBool) -> ScrapeSummary {
    let options = ClientOptions::default();
    let mut scrapes = 0u64;
    let mut text = String::new();
    while !stop.load(Ordering::Acquire) {
        if let Ok(exposition) = query_metrics(addr, &options) {
            assert!(
                !exposition.is_empty(),
                "mid-storm metrics scrape returned an empty exposition"
            );
            scrapes += 1;
            text = exposition;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // One final scrape after the storm settles catches the totals.
    if let Ok(exposition) = query_metrics(addr, &options) {
        scrapes += 1;
        text = exposition;
    }
    ScrapeSummary {
        scrapes,
        series: text.lines().filter(|l| !l.starts_with('#')).count(),
        fanin_grow: metric_value(&text, "gbnb_gateway_fanin_grow_total"),
        fanin_shrink: metric_value(&text, "gbnb_gateway_fanin_shrink_total"),
        gateway_fan_in: metric_value(&text, "gbnb_gateway_fan_in"),
        text,
    }
}

fn run_storm(args: &Args, mode: ClientMode) -> StormResult {
    let root = Interval::new(UBig::zero(), UBig::factorial(50));
    let mut config = ServerConfig::new(args.shards);
    config.aggregate = args.aggregate.policy();
    let server = NetServer::bind("127.0.0.1:0", root, config).expect("bind loopback");
    let addr: SocketAddr = server.local_addr();
    let handle = server.handle();
    let server = std::thread::spawn(move || server.serve().expect("serve"));

    let stop_scraper = Arc::new(AtomicBool::new(false));
    let scraper = args.metrics.then(|| {
        let stop = Arc::clone(&stop_scraper);
        std::thread::spawn(move || scrape_loop(addr, &stop))
    });

    let options = ClientOptions::default();
    let mux = match mode {
        ClientMode::PerConnection => None,
        ClientMode::Multiplexed => Some(MuxClient::connect(addr, &options).expect("connect mux")),
    };
    let started = Instant::now();
    let workers: Vec<_> = (0..args.workers)
        .map(|index| {
            let transport: Box<dyn Transport + Send> = match &mux {
                None => Box::new(SocketTransport::connect(addr, &options).expect("connect")),
                Some(mux) => Box::new(mux.transport()),
            };
            let contacts = args.contacts;
            std::thread::spawn(move || storm_worker(transport, WorkerId(index as u64), contacts))
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(args.workers * args.contacts as usize);
    for worker in workers {
        latencies_ns.extend(worker.join().expect("storm worker"));
    }
    let wall_s = started.elapsed().as_secs_f64();
    if let Some(mux) = mux {
        mux.close();
    }
    let scrape = scraper.map(|scraper| {
        stop_scraper.store(true, Ordering::Release);
        let summary = scraper.join().expect("scraper thread");
        assert!(
            summary.scrapes > 0 && summary.series > 0,
            "metrics scraper never landed a scrape"
        );
        summary
    });
    handle.stop();
    server.join().expect("server thread");

    latencies_ns.sort_unstable();
    StormResult {
        mode: mode_name(mode),
        contacts: args.workers as u64 * args.contacts,
        wall_s,
        latencies_ns,
        scrape,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "net storm: {} workers x {} contacts, {} shards, aggregate {}, loopback TCP",
        args.workers,
        args.contacts,
        args.shards,
        args.aggregate.name()
    );
    println!(
        "{:<16} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "mode", "contacts/sec", "p50 us", "p90 us", "p99 us", "max us"
    );
    let results: Vec<StormResult> = args.modes.iter().map(|&m| run_storm(&args, m)).collect();
    for r in &results {
        println!(
            "{:<16} {:>14.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            r.mode,
            r.contacts_per_sec(),
            r.quantile_us(0.50),
            r.quantile_us(0.90),
            r.quantile_us(0.99),
            r.quantile_us(1.0),
        );
    }
    if results.len() == 2 {
        println!(
            "multiplexed / per_connection contacts/sec: {:.2}x",
            results[1].contacts_per_sec() / results[0].contacts_per_sec()
        );
    }
    for r in &results {
        if let Some(s) = &r.scrape {
            println!(
                "{}: {} live scrapes, {} series; frames_in {}, gateway fan_in {} \
                 (grew {}x, shrank {}x)",
                r.mode,
                s.scrapes,
                s.series,
                metric_value(&s.text, "gbnb_net_frames_in_total"),
                s.gateway_fan_in,
                s.fanin_grow,
                s.fanin_shrink,
            );
        }
    }
    if let Some(path) = &args.json {
        let rows: Vec<String> = results
            .iter()
            .map(|r| {
                let scrape = r
                    .scrape
                    .as_ref()
                    .map(|s| {
                        format!(
                            ", \"scrapes\": {}, \"metric_series\": {}, \"fanin_grow\": {}, \
                             \"fanin_shrink\": {}",
                            s.scrapes, s.series, s.fanin_grow, s.fanin_shrink
                        )
                    })
                    .unwrap_or_default();
                format!(
                    "  {{\"mode\": \"{}\", \"aggregate\": \"{}\", \"workers\": {}, \
                     \"contacts\": {}, \"wall_s\": {:.4}, \
                     \"contacts_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \
                     \"p99_us\": {:.1}, \"max_us\": {:.1}{}}}",
                    r.mode,
                    args.aggregate.name(),
                    args.workers,
                    r.contacts,
                    r.wall_s,
                    r.contacts_per_sec(),
                    r.quantile_us(0.50),
                    r.quantile_us(0.90),
                    r.quantile_us(0.99),
                    r.quantile_us(1.0),
                    scrape,
                )
            })
            .collect();
        std::fs::write(path, format!("[\n{}\n]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }
}
