//! Load generator for the network service layer: a worker storm (W far
//! above the host's core count, the paper's farmer regime) hammering a
//! loopback [`NetServer`] with heartbeat contacts, reporting sustained
//! contacts/sec and the latency tail per client wiring mode.
//!
//! ```sh
//! cargo run --release --example net_storm -- \
//!     [--workers 64] [--contacts 100] [--shards 4] \
//!     [--mode per|mux|both] [--json PATH]
//! ```
//!
//! Each worker joins (checking a real interval out of the sharded
//! coordinator), then fires `--contacts` heartbeat updates of that
//! interval, timing every round trip. Per-connection mode gives each
//! worker its own socket; multiplexed mode pipelines the whole storm
//! over one socket, which the server folds into shared coordinator
//! bundles — the mode the `net` bench gates in CI.

use gridbnb::core::{Interval, Request, Response, Transport, UBig, WorkerId};
use gridbnb::net::{
    ClientMode, ClientOptions, MuxClient, NetServer, ServerConfig, SocketTransport,
};
use std::net::SocketAddr;
use std::time::Instant;

struct Args {
    workers: usize,
    contacts: u64,
    shards: usize,
    modes: Vec<ClientMode>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 64,
        contacts: 100,
        shards: 4,
        modes: vec![ClientMode::PerConnection, ClientMode::Multiplexed],
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--workers" => args.workers = value().parse().expect("--workers N"),
            "--contacts" => args.contacts = value().parse().expect("--contacts M"),
            "--shards" => args.shards = value().parse().expect("--shards S"),
            "--mode" => {
                args.modes = match value().as_str() {
                    "per" => vec![ClientMode::PerConnection],
                    "mux" => vec![ClientMode::Multiplexed],
                    "both" => vec![ClientMode::PerConnection, ClientMode::Multiplexed],
                    other => panic!("--mode must be per, mux or both, not {other}"),
                }
            }
            "--json" => args.json = Some(value()),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One mode's aggregate: every contact latency, plus the storm's wall
/// time from first to last contact.
struct StormResult {
    mode: &'static str,
    contacts: u64,
    wall_s: f64,
    latencies_ns: Vec<u64>,
}

impl StormResult {
    fn contacts_per_sec(&self) -> f64 {
        self.contacts as f64 / self.wall_s
    }

    /// `q` in [0, 1] over the sorted latency sample.
    fn quantile_us(&self, q: f64) -> f64 {
        let index = ((self.latencies_ns.len() - 1) as f64 * q).round() as usize;
        self.latencies_ns[index] as f64 / 1_000.0
    }
}

fn mode_name(mode: ClientMode) -> &'static str {
    match mode {
        ClientMode::PerConnection => "per_connection",
        ClientMode::Multiplexed => "multiplexed",
    }
}

/// Joins as `worker`, then times `contacts` heartbeat updates.
fn storm_worker(transport: Box<dyn Transport + Send>, worker: WorkerId, contacts: u64) -> Vec<u64> {
    let responses = transport
        .contact(vec![Request::Join { worker, power: 100 }])
        .expect("join contact");
    let interval = match responses.into_iter().next() {
        Some(Response::Work { interval, .. }) => interval,
        other => panic!("join answered {other:?}"),
    };
    let mut latencies = Vec::with_capacity(contacts as usize);
    for _ in 0..contacts {
        let t0 = Instant::now();
        let responses = transport
            .contact(vec![Request::Update {
                worker,
                interval: interval.clone(),
            }])
            .expect("heartbeat contact");
        latencies.push(t0.elapsed().as_nanos() as u64);
        assert!(
            matches!(responses.first(), Some(Response::UpdateAck { .. })),
            "heartbeat answered {responses:?}"
        );
    }
    latencies
}

fn run_storm(args: &Args, mode: ClientMode) -> StormResult {
    let root = Interval::new(UBig::zero(), UBig::factorial(50));
    let server = NetServer::bind("127.0.0.1:0", root, ServerConfig::new(args.shards))
        .expect("bind loopback");
    let addr: SocketAddr = server.local_addr();
    let handle = server.handle();
    let server = std::thread::spawn(move || server.serve().expect("serve"));

    let options = ClientOptions::default();
    let mux = match mode {
        ClientMode::PerConnection => None,
        ClientMode::Multiplexed => Some(MuxClient::connect(addr, &options).expect("connect mux")),
    };
    let started = Instant::now();
    let workers: Vec<_> = (0..args.workers)
        .map(|index| {
            let transport: Box<dyn Transport + Send> = match &mux {
                None => Box::new(SocketTransport::connect(addr, &options).expect("connect")),
                Some(mux) => Box::new(mux.transport()),
            };
            let contacts = args.contacts;
            std::thread::spawn(move || storm_worker(transport, WorkerId(index as u64), contacts))
        })
        .collect();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(args.workers * args.contacts as usize);
    for worker in workers {
        latencies_ns.extend(worker.join().expect("storm worker"));
    }
    let wall_s = started.elapsed().as_secs_f64();
    if let Some(mux) = mux {
        mux.close();
    }
    handle.stop();
    server.join().expect("server thread");

    latencies_ns.sort_unstable();
    StormResult {
        mode: mode_name(mode),
        contacts: args.workers as u64 * args.contacts,
        wall_s,
        latencies_ns,
    }
}

fn main() {
    let args = parse_args();
    println!(
        "net storm: {} workers x {} contacts, {} shards, loopback TCP",
        args.workers, args.contacts, args.shards
    );
    println!(
        "{:<16} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "mode", "contacts/sec", "p50 us", "p90 us", "p99 us", "max us"
    );
    let results: Vec<StormResult> = args.modes.iter().map(|&m| run_storm(&args, m)).collect();
    for r in &results {
        println!(
            "{:<16} {:>14.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            r.mode,
            r.contacts_per_sec(),
            r.quantile_us(0.50),
            r.quantile_us(0.90),
            r.quantile_us(0.99),
            r.quantile_us(1.0),
        );
    }
    if results.len() == 2 {
        println!(
            "multiplexed / per_connection contacts/sec: {:.2}x",
            results[1].contacts_per_sec() / results[0].contacts_per_sec()
        );
    }
    if let Some(path) = &args.json {
        let rows: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "  {{\"mode\": \"{}\", \"workers\": {}, \"contacts\": {}, \"wall_s\": {:.4}, \
                     \"contacts_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \
                     \"p99_us\": {:.1}, \"max_us\": {:.1}}}",
                    r.mode,
                    args.workers,
                    r.contacts,
                    r.wall_s,
                    r.contacts_per_sec(),
                    r.quantile_us(0.50),
                    r.quantile_us(0.90),
                    r.quantile_us(0.99),
                    r.quantile_us(1.0),
                )
            })
            .collect();
        std::fs::write(path, format!("[\n{}\n]\n", rows.join(",\n"))).expect("write json");
        println!("wrote {path}");
    }
}
