//! Quickstart: solve a flowshop instance exactly with the grid-enabled
//! B&B on local threads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::neh::neh;
use gridbnb::flowshop::{makespan::makespan, taillard, BoundMode, FlowshopProblem};

fn main() {
    // A Taillard-style 11×5 instance (exactly solvable in well under a
    // second; Ta056 itself took the paper 22 CPU-years).
    let instance = taillard::generate(11, 5, 2_006_100);
    println!(
        "instance: {} jobs x {} machines",
        instance.jobs(),
        instance.machines()
    );

    // 1. Heuristic upper bound (the paper seeded its runs with the best
    //    known cost from iterated greedy).
    let (neh_schedule, neh_cost) = neh(&instance);
    println!("NEH upper bound: {neh_cost} via {neh_schedule:?}");

    // 2. Exact resolution on 4 worker threads with the Johnson bound.
    let problem = FlowshopProblem::new(instance.clone(), BoundMode::Johnson(PairSelection::All));
    let config = RuntimeConfig::new(4).with_initial_upper_bound(neh_cost + 1);
    let report = run(&problem, &config);

    let optimum = report.proven_optimum.expect("search space is non-empty");
    println!("proven optimum: {optimum}");
    if let Some(solution) = &report.solution {
        let schedule = problem.decode_ranks(&solution.leaf_ranks);
        println!("optimal schedule: {schedule:?}");
        assert_eq!(makespan(&instance, &schedule), optimum);
    }
    println!(
        "explored {} nodes in {} work units ({} partitions, {} duplications)",
        report.total_explored(),
        report.coordinator_stats.work_allocations,
        report.coordinator_stats.partitions,
        report.coordinator_stats.duplications,
    );
    println!(
        "worker exploitation {:.1}%, farmer exploitation {:.2}%, redundancy {:.3}%",
        report.worker_exploitation() * 100.0,
        report.farmer_exploitation() * 100.0,
        report.redundancy() * 100.0,
    );
}
