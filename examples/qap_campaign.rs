//! A small exact-resolution campaign over Nugent-style QAP instances:
//! greedy + pairwise-exchange upper bounds first, then a sharded
//! parallel proof of optimality — the Nug30-lineage pipeline of the
//! paper's Table 3 at laptop scale, run through the same
//! engine/coordinator/shard stack as the flowshop campaign.
//!
//! ```sh
//! cargo run --release --example qap_campaign            # full ladder
//! cargo run --release --example qap_campaign -- --small # CI-sized
//! ```

use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::qap::greedy::{greedy_upper_bound, GreedyParams};
use gridbnb::qap::{Bound, QapInstance, QapProblem};
use std::time::Instant;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    // (rows, cols, seed): rectangular grids at nug-ish sizes.
    let grids: &[(usize, usize, u64)] = if small {
        &[(2, 3, 1), (3, 3, 7)]
    } else {
        &[(2, 3, 1), (3, 3, 7), (3, 4, 2007)]
    };
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>7} {:>9} {:>8}",
        "instance", "greedyUB", "optimum", "nodes", "steals", "time", "gap(UB)"
    );
    for &(rows, cols, seed) in grids {
        let n = rows * cols;
        let instance = QapInstance::nugent_style(rows, cols, seed);
        let (_, ub) = greedy_upper_bound(&instance, &GreedyParams::default());

        let problem = QapProblem::new(instance, Bound::GilmoreLawler);
        let mut config = RuntimeConfig::new(4)
            .with_shards(2)
            .with_initial_upper_bound(ub + 1);
        config.poll_nodes = 500;
        let t0 = Instant::now();
        let report = run(&problem, &config);
        let elapsed = t0.elapsed();
        let optimum = report.proven_optimum.expect("bounded above by greedy+1");
        let gap = (ub as f64 / optimum as f64 - 1.0) * 100.0;
        println!(
            "{:<10} {:>8} {:>8} {:>10} {:>7} {:>8.1?} {:>7.2}%",
            format!("nug{n}-{rows}x{cols}"),
            ub,
            optimum,
            report.total_explored(),
            report.steals,
            elapsed,
            gap,
        );
        assert!(ub >= optimum, "heuristic can never beat the optimum");
    }
    println!("\ngreedy+exchange found the optimum whenever gap = 0.00% — on Nug30 the grid resolution started from a heuristic bound the same way.");
}
