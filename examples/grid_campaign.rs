//! Simulate the paper's 1889-processor nation-wide campaign at reduced
//! scale: volatile campus desktops + dedicated Grid'5000 nodes solving a
//! Ta056-shaped workload, with the statistics of Table 2.
//!
//! ```sh
//! cargo run --release --example grid_campaign
//! ```

use gridbnb::bigint::UBig;
use gridbnb::core::CoordinatorConfig;
use gridbnb::grid::{paper_pool, simulate, SimConfig, WorkloadModel};

fn main() {
    // The paper's pool scaled down 10x (~190 processors), exploring a
    // Ta056-shaped workload of 20 billion synthetic node visits over the
    // 50! interval (the real run visited 6.5e12).
    let pool = paper_pool().scaled_down(10);
    println!(
        "pool: {} processors in {} domains, {:.0} GHz aggregate",
        pool.total_processors(),
        pool.clusters.len(),
        pool.total_ghz()
    );

    let workload = WorkloadModel::irregular(UBig::factorial(50), 2e10, 1024, 2.5, 56);
    let mut config = SimConfig::new(pool);
    config.coordinator = CoordinatorConfig {
        duplication_threshold: UBig::factorial(50).div_rem_u64(10_000_000).0,
        holder_timeout_ns: 15 * 60 * 1_000_000_000,
        initial_upper_bound: Some(3680),
    };
    config.sample_period_s = 1_800.0;

    let report = simulate(&config, &workload);
    assert!(report.completed, "the run must terminate by itself");

    println!("\n--- campaign report (cf. paper Table 2) ---");
    println!("wall clock            : {:.1} h", report.wall_s / 3600.0);
    println!(
        "cumulative CPU        : {:.1} days",
        report.cpu_s / 86_400.0
    );
    println!(
        "avg / max workers     : {:.0} / {}",
        report.avg_workers, report.max_workers
    );
    println!(
        "worker exploitation   : {:.1} %",
        report.worker_exploitation * 100.0
    );
    println!(
        "farmer exploitation   : {:.2} %",
        report.farmer_exploitation * 100.0
    );
    println!("work allocations      : {}", report.work_allocations);
    println!("checkpoint operations : {}", report.checkpoint_ops);
    println!("explored nodes        : {:.3e}", report.explored_nodes);
    println!(
        "redundant nodes       : {:.2} %",
        report.redundant_ratio * 100.0
    );

    println!("\n--- available processors over time (cf. Figure 7) ---");
    let max = report
        .samples
        .iter()
        .map(|s| s.online)
        .max()
        .unwrap_or(1)
        .max(1);
    for chunk in report
        .samples
        .chunks(report.samples.len().div_ceil(24).max(1))
    {
        let t = chunk[0].t_s / 3600.0;
        let online: usize = chunk.iter().map(|s| s.online).sum::<usize>() / chunk.len();
        let bar = "#".repeat(online * 50 / max);
        println!("{t:>7.1} h |{bar:<50}| {online}");
    }
}
