//! Fault-tolerance demonstration: workers crash mid-search (losing all
//! state), the coordinator recovers their intervals, and the final
//! optimum is still exact. Also shows farmer checkpoint/restore — the
//! paper's two-file recovery (§4.1).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use gridbnb::core::checkpoint::CheckpointStore;
use gridbnb::core::runtime::{
    run, run_with_coordinator, ChaosConfig, CheckpointPolicy, CrashPlan, RuntimeConfig,
};
use gridbnb::core::{Coordinator, CoordinatorConfig};
use gridbnb::engine::solve;
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem};
use std::time::Duration;

fn main() {
    let instance = taillard::generate(10, 5, 31_337);
    let problem = FlowshopProblem::new(instance, BoundMode::Johnson(PairSelection::All));

    // Ground truth from a sequential run.
    let expected = solve(&problem, None).best_cost;
    println!("sequential optimum: {expected:?}");

    // ---- Worker crashes.
    let mut config = RuntimeConfig::new(4);
    config.poll_nodes = 200;
    config.coordinator.holder_timeout_ns = 20_000_000; // 20 ms
    config.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 0,
                after_nodes: 500,
                rejoin: true,
            },
            CrashPlan {
                worker_index: 1,
                after_nodes: 600,
                rejoin: false,
            },
            CrashPlan {
                worker_index: 2,
                after_nodes: 900,
                rejoin: true,
            },
        ],
    });
    let report = run(&problem, &config);
    let crashes: u64 = report.workers.iter().map(|w| w.crashes).sum();
    println!(
        "with {crashes} injected crashes: optimum {:?}, redundancy {:.2}%, holders expired {}",
        report.proven_optimum,
        report.redundancy() * 100.0,
        report.coordinator_stats.holders_expired,
    );
    assert_eq!(
        report.proven_optimum, expected,
        "crashes must not lose work"
    );

    // ---- Farmer checkpoint/restore.
    let dir = std::env::temp_dir().join(format!("gridbnb-example-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = CheckpointStore::new(dir.join("INTERVALS"), dir.join("SOLUTION"));
    let mut config = RuntimeConfig::new(4);
    config.checkpoint = Some(CheckpointPolicy {
        store: store.clone(),
        every: Duration::from_millis(5),
    });
    let report = run(&problem, &config);
    println!(
        "checkpointing run: optimum {:?}, {} farmer checkpoints written",
        report.proven_optimum, report.farmer_checkpoints
    );

    // Simulate a farmer restart from the files — here the terminal state.
    let (intervals, solution) = store.load().expect("readable checkpoint");
    println!(
        "restored checkpoint: {} interval(s), solution {:?}",
        intervals.len(),
        solution.as_ref().map(|s| s.cost)
    );
    let coordinator = Coordinator::restore(
        problem_root(&problem),
        intervals,
        solution,
        CoordinatorConfig::default(),
    );
    let resumed = run_with_coordinator(&problem, coordinator, &RuntimeConfig::new(2));
    println!("resumed run confirms optimum: {:?}", resumed.proven_optimum);
    assert_eq!(resumed.proven_optimum, expected);
    std::fs::remove_dir_all(&dir).ok();
}

fn problem_root(problem: &FlowshopProblem) -> gridbnb::coding::Interval {
    use gridbnb::engine::Problem;
    problem.shape().root_range()
}
