//! Fault-tolerance demonstration: workers crash mid-search (losing all
//! state), the coordinator recovers their intervals, and the final
//! optimum is still exact. Also shows farmer checkpoint/restore — the
//! paper's two-file recovery (§4.1).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```
//!
//! Two extra modes:
//!
//! ```sh
//! # Durable coordinator: a write-ahead log on a directory-per-shard
//! # backend, a crash image taken mid-run (what kill -9 leaves on
//! # disk), recovery, and a resumed run proving the same optimum.
//! cargo run --release --example fault_tolerance -- --durable
//!
//! # A bigger checkpointed campaign: 16-facility Nugent-style QAP,
//! # heuristic-seeded, durable and checkpointed while it runs.
//! cargo run --release --example fault_tolerance -- --nug16
//! ```

use gridbnb::core::checkpoint::CheckpointStore;
use gridbnb::core::runtime::{
    run, run_with_coordinator, run_with_router, ChaosConfig, CheckpointPolicy, CrashPlan,
    RuntimeConfig,
};
use gridbnb::core::{
    Coordinator, CoordinatorConfig, MetricsRegistry, ShardDirBackend, ShardRouter, StorageBackend,
    WalStore,
};
use gridbnb::engine::solve;
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--durable") {
        demo_durable();
        return;
    }
    if args.iter().any(|a| a == "--nug16") {
        demo_nug16();
        return;
    }
    demo_crashes_and_checkpoints();
}

fn demo_crashes_and_checkpoints() {
    let instance = taillard::generate(10, 5, 31_337);
    let problem = FlowshopProblem::new(instance, BoundMode::Johnson(PairSelection::All));

    // Ground truth from a sequential run.
    let expected = solve(&problem, None).best_cost;
    println!("sequential optimum: {expected:?}");

    // ---- Worker crashes.
    let mut config = RuntimeConfig::new(4);
    config.poll_nodes = 200;
    config.coordinator.holder_timeout_ns = 20_000_000; // 20 ms
    config.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 0,
                after_nodes: 500,
                rejoin: true,
            },
            CrashPlan {
                worker_index: 1,
                after_nodes: 600,
                rejoin: false,
            },
            CrashPlan {
                worker_index: 2,
                after_nodes: 900,
                rejoin: true,
            },
        ],
    });
    let report = run(&problem, &config);
    let crashes: u64 = report.workers.iter().map(|w| w.crashes).sum();
    println!(
        "with {crashes} injected crashes: optimum {:?}, redundancy {:.2}%, holders expired {}",
        report.proven_optimum,
        report.redundancy() * 100.0,
        report.coordinator_stats.holders_expired,
    );
    assert_eq!(
        report.proven_optimum, expected,
        "crashes must not lose work"
    );

    // ---- Farmer checkpoint/restore.
    let dir = std::env::temp_dir().join(format!("gridbnb-example-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = CheckpointStore::new(dir.join("INTERVALS"), dir.join("SOLUTION"));
    let mut config = RuntimeConfig::new(4);
    config.checkpoint = Some(CheckpointPolicy {
        store: store.clone(),
        every: Duration::from_millis(5),
    });
    let report = run(&problem, &config);
    println!(
        "checkpointing run: optimum {:?}, {} farmer checkpoints written, {} failed",
        report.proven_optimum, report.farmer_checkpoints, report.checkpoint_failures
    );

    // Simulate a farmer restart from the files — here the terminal state.
    let (intervals, solution) = store.load().expect("readable checkpoint");
    println!(
        "restored checkpoint: {} interval(s), solution {:?}",
        intervals.len(),
        solution.as_ref().map(|s| s.cost)
    );
    let coordinator = Coordinator::restore(
        problem_root(&problem),
        intervals,
        solution,
        CoordinatorConfig::default(),
    );
    let resumed = run_with_coordinator(&problem, coordinator, &RuntimeConfig::new(2));
    println!("resumed run confirms optimum: {:?}", resumed.proven_optimum);
    assert_eq!(resumed.proven_optimum, expected);
    std::fs::remove_dir_all(&dir).ok();
}

/// Durable-coordinator demo: the campaign journals every interval delta
/// to a write-ahead log on a directory-per-shard backend; a concurrent
/// thread keeps copying the directory — each copy is a *crash image*,
/// the bytes a `kill -9` would leave behind. The last image is then
/// recovered (torn tail repaired, log tail replayed over the committed
/// snapshot), a router is rebuilt from the recovered state, and the
/// resumed run proves the same optimum.
fn demo_durable() {
    let instance = taillard::generate(10, 5, 31_337);
    let problem = FlowshopProblem::new(instance, BoundMode::Johnson(PairSelection::All));
    let expected = solve(&problem, None).best_cost;
    println!("sequential optimum: {expected:?}");

    let scratch = std::env::temp_dir().join(format!("gridbnb-durable-{}", std::process::id()));
    let live_dir = scratch.join("live");
    let image_dir = scratch.join("crash-image");
    let _ = std::fs::remove_dir_all(&scratch);

    let backend: Arc<dyn StorageBackend> =
        Arc::new(ShardDirBackend::new(&live_dir).expect("shard-dir backend"));
    let registry = MetricsRegistry::new();
    let mut config = RuntimeConfig::new(4)
        .with_shards(2)
        .with_metrics(&registry)
        .with_durability(Arc::clone(&backend), Duration::from_millis(10));
    config.poll_nodes = 200;

    // Crash-image thief: while the durable run is live, copy the
    // backend directory once, as early as possible — a mid-flight
    // point-in-time image, the bytes a kill -9 would leave behind.
    let imaging = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let thief = {
        let live = live_dir.clone();
        let image = image_dir.clone();
        let imaging = Arc::clone(&imaging);
        std::thread::spawn(move || {
            while imaging.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(2));
                // An image copied before the WAL's first MANIFEST commit
                // has nothing to recover — wipe partial attempts and keep
                // trying until the copy caught a committed state.
                let _ = std::fs::remove_dir_all(&image);
                if live.exists()
                    && copy_tree(&live, &image).is_ok()
                    && image.join("MANIFEST").exists()
                {
                    return true;
                }
            }
            false
        })
    };
    let live_report = run(&problem, &config);
    imaging.store(false, std::sync::atomic::Ordering::Release);
    let imaged_in_flight = thief.join().expect("imaging thread");
    if !imaged_in_flight {
        // The run beat the thief to it — image the terminal state.
        copy_tree(&live_dir, &image_dir).expect("image terminal state");
    }
    println!(
        "durable run: optimum {:?} (crash image taken {})",
        live_report.proven_optimum,
        if imaged_in_flight {
            "mid-flight"
        } else {
            "after the fact"
        }
    );
    for line in registry
        .render_text()
        .lines()
        .filter(|l| l.starts_with("gbnb_wal_") && !l.contains("_ns"))
    {
        println!("  {line}");
    }
    assert_eq!(live_report.proven_optimum, expected);

    // "Restart" from the crash image.
    let imaged: Arc<dyn StorageBackend> =
        Arc::new(ShardDirBackend::new(&image_dir).expect("imaged backend"));
    let (_, state) =
        WalStore::recover(Arc::clone(&imaged)).expect("every point-in-time image must recover");
    println!(
        "recovered image: {} replayed records ({} ops), {} torn tail(s) repaired, \
         remaining length {}, solution {:?}",
        state.replayed_records,
        state.replayed_ops,
        state.torn_truncations,
        state.total_length(),
        state.solution.as_ref().map(|s| s.cost),
    );
    let shards = state.shard_intervals.len();
    let router = ShardRouter::restore(
        problem_root(&problem),
        state.shard_intervals,
        state.solution,
        CoordinatorConfig::default(),
    )
    .expect("restore router");
    let mut resumed_config = RuntimeConfig::new(4)
        .with_shards(shards)
        .with_durability(imaged, Duration::from_millis(10));
    resumed_config.poll_nodes = 200;
    let resumed = run_with_router(&problem, router, &resumed_config);
    println!("resumed run confirms optimum: {:?}", resumed.proven_optimum);
    assert_eq!(resumed.proven_optimum, expected);
    std::fs::remove_dir_all(&scratch).ok();
}

/// A bigger campaign in the paper's style: 16-facility Nugent-like QAP,
/// seeded with the greedy heuristic's upper bound, running durable AND
/// checkpointed at once. Expect minutes, not seconds — that is the
/// point: the checkpoint files and the WAL stay warm the whole way.
fn demo_nug16() {
    use gridbnb::qap::greedy::{greedy_upper_bound, GreedyParams};
    use gridbnb::qap::{Bound, QapInstance, QapProblem};

    let instance = QapInstance::nugent_style(4, 4, 2007);
    let (_, ub) = greedy_upper_bound(&instance, &GreedyParams::default());
    println!("nug16: greedy upper bound {ub}");
    let problem = QapProblem::new(instance, Bound::GilmoreLawler);

    let scratch = std::env::temp_dir().join(format!("gridbnb-nug16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let backend: Arc<dyn StorageBackend> =
        Arc::new(ShardDirBackend::new(scratch.join("wal")).expect("shard-dir backend"));
    std::fs::create_dir_all(scratch.join("ckpt")).expect("ckpt dir");
    let store = CheckpointStore::new(
        scratch.join("ckpt/INTERVALS"),
        scratch.join("ckpt/SOLUTION"),
    );

    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let registry = MetricsRegistry::new();
    let mut config = RuntimeConfig::new(workers)
        .with_shards(4)
        .with_metrics(&registry)
        .with_durability(Arc::clone(&backend), Duration::from_millis(500));
    config.coordinator.initial_upper_bound = Some(ub + 1);
    config.checkpoint = Some(CheckpointPolicy {
        store,
        every: Duration::from_millis(250),
    });
    let report = run(&problem, &config);
    println!(
        "nug16 proved optimum {:?} on {workers} workers in {:?} \
         ({} checkpoints, {} failed)",
        report.proven_optimum, report.wall, report.farmer_checkpoints, report.checkpoint_failures
    );
    for line in registry
        .render_text()
        .lines()
        .filter(|l| l.starts_with("gbnb_wal_") && !l.contains("_ns"))
    {
        println!("  {line}");
    }
    std::fs::remove_dir_all(&scratch).ok();
}

/// Recursive file copy — the crash-image "dd" of the demo.
fn copy_tree(src: &Path, dst: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to: PathBuf = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_tree(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

fn problem_root(problem: &FlowshopProblem) -> gridbnb::coding::Interval {
    use gridbnb::engine::Problem;
    problem.shape().root_range()
}
