//! Worker idle time vs contact count across gateway fan-in settings:
//! a 64-worker, 4-shard in-process campaign run at fixed fan-in
//! F ∈ {4, 16, 64} and under the adaptive policy, each with an
//! injected metrics registry so the table below is read straight from
//! the same counters a live scrape would see.
//!
//! ```sh
//! cargo run --release --example fan_in_sweep -- [--workers 64] [--shards 4] [--jobs 10]
//! ```
//!
//! The trade the fan-in knob controls: a larger flush folds more
//! workers' contacts into one shard lock acquisition (fewer router
//! contacts), but every parked submission is a worker holding work it
//! is not exploring (idle time). The adaptive policy walks this
//! frontier at run time — growing while flushes fill fast and the
//! shard locks show contention, shrinking on backpressure and towards
//! termination — and the sweep shows where it lands.

use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::core::{MetricsRegistry, UBig};
use gridbnb::engine::solve;
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem};
use std::time::Instant;

struct Args {
    workers: usize,
    shards: usize,
    jobs: usize,
    poll_nodes: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 64,
        shards: 4,
        jobs: 12,
        // Small slices mean frequent contacts — the regime where the
        // fan-in knob matters at all on a single box.
        poll_nodes: 50,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match flag.as_str() {
            "--workers" => args.workers = value().parse().expect("--workers N"),
            "--shards" => args.shards = value().parse().expect("--shards S"),
            "--jobs" => args.jobs = value().parse().expect("--jobs J"),
            "--poll" => args.poll_nodes = value().parse().expect("--poll N"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

enum Policy {
    Fixed(usize),
    Adaptive { start: usize, max: usize },
}

impl Policy {
    fn name(&self) -> String {
        match self {
            Policy::Fixed(f) => format!("fixed:{f}"),
            Policy::Adaptive { max, .. } => format!("adaptive:{max}"),
        }
    }
}

fn main() {
    let args = parse_args();
    let problem = FlowshopProblem::new(
        taillard::generate(args.jobs, 5, 20_070_326),
        BoundMode::Johnson(PairSelection::All),
    );
    let expected = solve(&problem, None).best_cost;
    println!(
        "fan-in sweep: {} workers, {} shards, {}x5 flowshop (optimum {:?})",
        args.workers, args.shards, args.jobs, expected
    );
    println!(
        "{:<12} {:>8} {:>12} {:>14} {:>9} {:>8} {:>7} {:>7}",
        "policy", "wall_s", "worker_cts", "router_cts", "flushes", "idle_%", "grows", "shrinks"
    );

    let policies = [
        Policy::Fixed(4),
        Policy::Fixed(16),
        Policy::Fixed(64),
        Policy::Adaptive { start: 4, max: 64 },
    ];
    for policy in policies {
        let registry = MetricsRegistry::new();
        let mut config = RuntimeConfig::new(args.workers)
            .with_shards(args.shards)
            .with_metrics(&registry);
        config.poll_nodes = args.poll_nodes;
        config.coordinator.duplication_threshold = UBig::from(64u64);
        config = match policy {
            Policy::Fixed(f) => config.with_gateway(f),
            Policy::Adaptive { start, max } => config.with_adaptive_gateway(start, max),
        };

        let started = Instant::now();
        let report = run(&problem, &config);
        let wall_s = started.elapsed().as_secs_f64();
        assert_eq!(
            report.proven_optimum,
            expected,
            "{} diverged",
            policy.name()
        );

        let snapshot = registry.snapshot();
        let busy = snapshot.counter("gbnb_worker_busy_ns_total");
        let idle = snapshot.counter("gbnb_worker_idle_ns_total");
        let idle_pct = 100.0 * idle as f64 / (busy + idle).max(1) as f64;
        let stats = report.gateway.expect("gateway stats");
        println!(
            "{:<12} {:>8.2} {:>12} {:>14} {:>9} {:>8.1} {:>7} {:>7}",
            policy.name(),
            wall_s,
            report.total_contacts(),
            snapshot.counter("gbnb_router_contacts_total"),
            stats.flushes,
            idle_pct,
            snapshot.counter("gbnb_gateway_fanin_grow_total"),
            snapshot.counter("gbnb_gateway_fanin_shrink_total"),
        );
    }
}
