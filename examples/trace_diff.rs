//! Replicable-mode demonstration and cross-run trace differ.
//!
//! Runs the same flowshop search twice in deterministic replicable mode
//! (same seed), prints both run-traces' fingerprints, and diffs them
//! event by event with [`diff_traces`]. Two same-seed runs must be
//! byte-identical; the process exits non-zero if they ever diverge, so
//! CI can gate on it directly.
//!
//! ```sh
//! cargo run --release --example trace_diff
//! cargo run --release --example trace_diff -- --seed 42 --workers 8 --shards 4
//! # Show a deliberate divergence (two different seeds):
//! cargo run --release --example trace_diff -- --cross-seed
//! ```

use gridbnb::core::runtime::{run, RunReport, RuntimeConfig};
use gridbnb::core::{diff_traces, TraceReplayer, UBig};
use gridbnb::engine::solve;
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem, Problem};
use std::process::ExitCode;

fn flag_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn replicable_run(
    problem: &FlowshopProblem,
    seed: u64,
    workers: usize,
    shards: usize,
) -> RunReport {
    let mut config = RuntimeConfig::new(workers)
        .with_shards(shards)
        .with_replicable(seed);
    config.poll_nodes = 1_000;
    config.coordinator.duplication_threshold = UBig::from(64u64);
    config.coordinator.holder_timeout_ns = 50_000_000;
    run(problem, &config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = flag_value(&args, "--seed").unwrap_or(2007);
    let workers = flag_value(&args, "--workers").unwrap_or(8) as usize;
    let shards = flag_value(&args, "--shards").unwrap_or(4) as usize;
    let cross_seed = args.iter().any(|a| a == "--cross-seed");

    let instance = taillard::generate(10, 5, 301);
    let problem = FlowshopProblem::new(instance, BoundMode::Johnson(PairSelection::All));
    let expected = solve(&problem, None).best_cost;

    let seed_b = if cross_seed {
        seed.wrapping_add(1)
    } else {
        seed
    };
    println!("replicable flowshop 10x5, W={workers} S={shards}");
    println!("  run A: seed {seed}");
    let a = replicable_run(&problem, seed, workers, shards);
    println!("  run B: seed {seed_b}");
    let b = replicable_run(&problem, seed_b, workers, shards);

    for (name, report) in [("A", &a), ("B", &b)] {
        let trace = report
            .trace
            .as_ref()
            .expect("replicable run records a trace");
        println!(
            "  run {name}: optimum {:?}, {} nodes, {} steals, {} trace events ({} bytes)",
            report.proven_optimum,
            report.total_explored(),
            report.steals,
            trace.len(),
            trace.encode().len(),
        );
        assert_eq!(report.proven_optimum, expected, "run {name} lost exactness");
    }

    // Replay run A's trace from the partitioned root: it must land
    // exactly on the drained final state with A's best solution.
    let ta = a.trace.as_ref().unwrap();
    let mut replayer = TraceReplayer::new(&problem.shape().root_range(), shards);
    replayer.replay(&ta.events()).expect("trace replay failed");
    replayer
        .verify_snapshot(&(vec![Vec::new(); shards], a.solution.clone()))
        .expect("replayed end state diverges from the run's final state");
    println!(
        "  replay: {} events -> drained final state, verified",
        replayer.applied()
    );

    let tb = b.trace.as_ref().unwrap();
    match diff_traces(&ta.events(), &tb.events()) {
        None => {
            assert_eq!(ta.encode(), tb.encode(), "equal events but unequal bytes");
            println!("  traces byte-identical ({} events): replicable", ta.len());
            ExitCode::SUCCESS
        }
        Some(divergence) => {
            println!("  traces diverge: {divergence}");
            if cross_seed {
                println!("  (expected under --cross-seed: different seeds, different search)");
                ExitCode::SUCCESS
            } else {
                println!("  REPLICABILITY VIOLATION: same seed produced different searches");
                ExitCode::FAILURE
            }
        }
    }
}
