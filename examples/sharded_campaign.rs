//! Sharded-coordinator demonstration: the same flowshop resolution run
//! through the classic single farmer, then through a 4-shard
//! [`gridbnb::core::ShardRouter`] with direct worker contacts and work
//! stealing — identical optimum, and the sim shows the sharded farmer
//! under grid-scale load.
//!
//! ```sh
//! cargo run --release --example sharded_campaign
//! ```

use gridbnb::bigint::UBig;
use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::engine::solve;
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem};
use gridbnb::grid::{paper_pool, simulate, SimConfig, WorkloadModel};

fn main() {
    let instance = taillard::generate(10, 5, 20_077);
    let problem = FlowshopProblem::new(instance, BoundMode::Johnson(PairSelection::All));
    let expected = solve(&problem, None).best_cost;
    println!("sequential optimum: {expected:?}");

    // ---- The same threaded resolution, single farmer vs 4 shards.
    for shards in [1usize, 4] {
        let mut config = RuntimeConfig::new(4).with_shards(shards);
        config.poll_nodes = 500;
        let report = run(&problem, &config);
        println!(
            "{shards} shard(s): optimum {:?}, {} allocations, {} steals, redundancy {:.2}%",
            report.proven_optimum,
            report.coordinator_stats.work_allocations,
            report.steals,
            report.redundancy() * 100.0,
        );
        assert_eq!(report.proven_optimum, expected, "sharding must stay exact");
    }

    // ---- One worker, eight shards: seven slices are only reachable by
    // stealing, and the run is still exact.
    let config = RuntimeConfig::new(1).with_shards(8);
    let report = run(&problem, &config);
    println!(
        "1 worker / 8 shards: optimum {:?}, {} steals (work reached every slice)",
        report.proven_optimum, report.steals
    );
    assert_eq!(report.proven_optimum, expected);
    assert!(report.steals >= 7);

    // ---- Grid-scale: the simulator drives the identical router over a
    // volatile pool.
    let pool = paper_pool().scaled_down(40);
    let workload = WorkloadModel::irregular(UBig::factorial(50), 2e8, 256, 2.0, 2007);
    let mut sim = SimConfig::new(pool);
    sim.shards = 4;
    sim.coordinator.duplication_threshold = UBig::factorial(50).div_rem_u64(1_000_000).0;
    sim.coordinator.initial_upper_bound = Some(3680);
    sim.update_period_s = 30.0;
    let report = simulate(&sim, &workload);
    println!(
        "sharded sim: completed {}, {:.1} sim-days, {} allocations, {} steals, redundancy {:.2}%",
        report.completed,
        report.wall_s / 86_400.0,
        report.work_allocations,
        report.steals,
        report.redundant_ratio * 100.0,
    );
    assert!(report.completed);
}
