//! A small exact-resolution campaign over Taillard-style flowshop
//! instances: heuristic upper bounds first (NEH + iterated greedy), then
//! parallel proof of optimality — the paper's §5 pipeline at laptop
//! scale.
//!
//! ```sh
//! cargo run --release --example flowshop_campaign
//! ```

use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::flowshop::bounds::PairSelection;
use gridbnb::flowshop::ig::{iterated_greedy, IgParams};
use gridbnb::flowshop::neh::neh;
use gridbnb::flowshop::{taillard, BoundMode, FlowshopProblem};
use std::time::Instant;

fn main() {
    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>10} {:>9} {:>8}",
        "instance", "NEH", "IG", "optimum", "nodes", "time", "gap(IG)"
    );
    for (k, seed) in [4221i64, 58_455, 9_000_001, 777, 123_456]
        .iter()
        .enumerate()
    {
        let instance = taillard::generate(10, 5, *seed);
        let (_, neh_cost) = neh(&instance);
        let (_, ig_cost) = iterated_greedy(
            &instance,
            &IgParams {
                iterations: 150,
                ..IgParams::default()
            },
        );

        let problem = FlowshopProblem::new(instance, BoundMode::Combined(PairSelection::All));
        let config = RuntimeConfig::new(4).with_initial_upper_bound(ig_cost + 1);
        let t0 = Instant::now();
        let report = run(&problem, &config);
        let elapsed = t0.elapsed();
        let optimum = report.proven_optimum.expect("bounded above by IG+1");
        let gap = (ig_cost as f64 / optimum as f64 - 1.0) * 100.0;
        println!(
            "{:<12} {:>6} {:>6} {:>8} {:>10} {:>8.1?} {:>7.2}%",
            format!("synth{:02}", k + 1),
            neh_cost,
            ig_cost,
            optimum,
            report.total_explored(),
            elapsed,
            gap,
        );
        assert!(ig_cost >= optimum, "heuristic can never beat the optimum");
    }
    println!("\nIG found the optimum whenever gap = 0.00% — on Ta056 the paper's IG bound (3681) was 2 off the true 3679.");
}
