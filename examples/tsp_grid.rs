//! The interval coding is problem-agnostic: solve travelling-salesman
//! instances with the very same farmer-worker machinery (paper Table 3
//! ranks Ta056 among mostly-TSP milestone resolutions).
//!
//! ```sh
//! cargo run --release --example tsp_grid
//! ```

use gridbnb::core::runtime::{run, RuntimeConfig};
use gridbnb::tsp::{TspInstance, TspProblem};
use std::time::Instant;

fn main() {
    println!(
        "{:<8} {:>8} {:>12} {:>10}",
        "cities", "optimum", "nodes", "time"
    );
    for n in [8usize, 9, 10, 11] {
        let instance = TspInstance::random_euclidean(n, 0xC0FFEE + n as u64);
        let problem = TspProblem::new(instance.clone());
        let t0 = Instant::now();
        let report = run(&problem, &RuntimeConfig::new(4));
        let elapsed = t0.elapsed();
        let optimum = report.proven_optimum.expect("tours exist");
        if n <= 10 {
            assert_eq!(optimum, instance.brute_optimum(), "must match brute force");
        }
        if let Some(solution) = &report.solution {
            let tour = problem.decode_ranks(&solution.leaf_ranks);
            assert_eq!(instance.tour_length(&tour), optimum);
        }
        println!(
            "{:<8} {:>8} {:>12} {:>9.1?}",
            n,
            optimum,
            report.total_explored(),
            elapsed
        );
    }
    println!("\nSame coordinator, same interval algebra — only the Problem impl changed.");
}
