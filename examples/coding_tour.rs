//! A tour of the paper's §3: weights, numbers, ranges, fold and unfold,
//! culminating at Ta056 scale where node numbers need 215-bit integers.
//!
//! ```sh
//! cargo run --release --example coding_tour
//! ```

use gridbnb::bigint::UBig;
use gridbnb::coding::{fold, unfold, Interval, NodePath, TreeShape};
use gridbnb::flowshop::taillard::{ta056, TA056_OPTIMAL_SCHEDULE};
use gridbnb::flowshop::{BoundMode, FlowshopProblem};

fn main() {
    // ---- Figures 1-3: weights, numbers, ranges on a small permutation tree.
    let shape = TreeShape::permutation(4);
    println!(
        "permutation tree over 4 elements ({} leaves)",
        shape.total_leaves()
    );
    for depth in 0..=4 {
        println!("  depth {depth}: weight {}", shape.weight_at(depth));
    }
    let node = NodePath::from_ranks(vec![2, 1]);
    println!(
        "node {node}: number {}, range {}",
        node.number(&shape),
        node.range(&shape)
    );

    // ---- Figure 4: fold an active list, unfold an interval.
    let frontier = vec![
        NodePath::from_ranks(vec![0, 2]),
        NodePath::from_ranks(vec![1]),
        NodePath::from_ranks(vec![2]),
    ];
    let interval = fold(&shape, &frontier).expect("contiguous DFS frontier");
    println!(
        "\nfold({:?}) = {}",
        frontier.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
        interval
    );
    let recovered = unfold(&shape, &interval);
    println!(
        "unfold({interval}) = {:?}",
        recovered.iter().map(|n| n.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(recovered, frontier);

    // ---- Ta056 scale: the whole search space as one interval.
    let ta056_shape = TreeShape::permutation(50);
    println!(
        "\nTa056 search space: 50! = {} leaves ({} bits)",
        ta056_shape.total_leaves(),
        ta056_shape.total_leaves().bit_len()
    );
    let root = ta056_shape.root_range();
    println!(
        "root work unit: {} — {} bytes on the wire",
        root,
        root.byte_len()
    );

    // Where does the paper's published optimal schedule live in the tree?
    let problem = FlowshopProblem::new(ta056(), BoundMode::OneMachine);
    let ranks = problem.encode_schedule(&TA056_OPTIMAL_SCHEDULE);
    let leaf = NodePath::from_ranks(ranks);
    println!(
        "the optimal schedule is leaf number\n  {}\nof the Ta056 permutation tree",
        leaf.number(&ta056_shape)
    );

    // A mid-run checkpoint: a millionth of the space, encoded two ways.
    let begin = ta056_shape.total_leaves().div_rem_u64(3).0;
    let end = &begin + &ta056_shape.total_leaves().div_rem_u64(1_000_000).0;
    let unit = Interval::new(begin, end.clone());
    let nodes = unfold(&ta056_shape, &unit);
    let node_list_bytes: usize = nodes.len() * 50; // ≥ one rank byte per depth per node
    println!(
        "\na 50!-scale work unit: interval = {} bytes, equivalent node list = {} nodes ≈ {} bytes",
        unit.byte_len(),
        nodes.len(),
        node_list_bytes
    );
    assert!(UBig::from(unit.byte_len()) < UBig::from(node_list_bytes));
}
