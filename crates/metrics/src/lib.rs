//! A dependency-free metrics registry for the grid B&B workspace.
//!
//! The paper's farmer/worker protocol lives or dies on contact pressure
//! and worker idle time, so every layer of this workspace (coordinator
//! shards, contact gateway, worker runtime, wire server) records into
//! one [`MetricsRegistry`]. The design goals, in order:
//!
//! 1. **Cheap hot path.** Recording must be safe to leave on in the
//!    worker slice loop and the shard contact path. Every instrument is
//!    a handle over pre-resolved `AtomicU64` cells: registration (cold)
//!    resolves `(name, label set)` to shared cells once, and recording
//!    (hot) is one `fetch_add` with [`Ordering::Relaxed`] — no map
//!    lookup, no locking, no allocation.
//! 2. **No dependencies.** The build environment has no registry
//!    access; this crate is `std`-only.
//! 3. **Scrapable.** [`MetricsRegistry::render_text`] emits a
//!    Prometheus-style text exposition so a one-shot wire frame (see
//!    `gridbnb-net`) can serve it to any scraper mid-campaign.
//!
//! Three instrument kinds, all `u64`:
//!
//! | kind | handle | semantics |
//! |---|---|---|
//! | counter | [`Counter`] | monotone total (`_total` names) |
//! | gauge | [`Gauge`] | last-written value (`set`/`add`/`sub`/`max`) |
//! | histogram | [`Histogram`] | fixed upper-bound buckets + sum + count |
//!
//! Durations are recorded as integer **nanoseconds** (`_ns` names)
//! rather than the Prometheus convention of float seconds: the cells
//! are `u64` and the workspace's latencies are all sub-second, so
//! nanoseconds keep recording integer-only and lossless.
//!
//! Consistency: individual increments are never lost (each is one
//! atomic RMW), but a [`MetricsRegistry::snapshot`] taken while
//! recorders are mid-flight may observe a histogram whose `sum` cell
//! is a few observations ahead of its `count` cell — the three cells
//! of an observation are distinct relaxed writes. Quiesce recorders
//! first when exact cross-cell equality matters (tests do).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A resolved label set: `(key, value)` pairs in registration order.
pub type Labels = Vec<(String, String)>;

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter: records into a private cell no registry
    /// renders. Useful as a struct-field default before wiring.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one. Hot path: a single relaxed `fetch_add`.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Point-in-time value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value instrument. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A detached gauge (see [`Counter::detached`]).
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (occupancy-style gauges).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`. The caller keeps the gauge non-negative; this
    /// saturates at zero rather than wrapping if it does not.
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.cell.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .cell
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the value to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    /// Inclusive upper bounds, strictly increasing. The implicit last
    /// bucket is `+Inf`.
    bounds: Box<[u64]>,
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` cells.
    buckets: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram. Buckets are chosen once at registration;
/// observing is a binary search over the bounds plus three relaxed
/// `fetch_add`s. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(&[])
    }
}

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            cells: Arc::new(HistogramCells {
                bounds: bounds.into(),
                buckets,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// A detached histogram (see [`Counter::detached`]).
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records `v` into the first bucket whose upper bound is ≥ `v`
    /// (`le` semantics), or the `+Inf` bucket past the last bound.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = self.cells.bounds.partition_point(|b| *b < v);
        self.cells.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(v, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value, zero before the first observation.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Per-bucket (non-cumulative) counts; last entry is the `+Inf`
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.cells
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The registered upper bounds (exclusive of `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.cells.bounds
    }
}

/// Upper bounds suited to nanosecond latencies from sub-microsecond
/// atomics up to one second, roughly ×4 apart.
pub fn latency_buckets_ns() -> Vec<u64> {
    vec![
        250,
        1_000,
        4_000,
        16_000,
        64_000,
        250_000,
        1_000_000,
        4_000_000,
        16_000_000,
        64_000_000,
        250_000_000,
        1_000_000_000,
    ]
}

/// `count` upper bounds starting at `start`, each `factor`× the last.
pub fn exponential_buckets(start: u64, factor: u64, count: usize) -> Vec<u64> {
    assert!(start >= 1 && factor >= 2, "degenerate bucket ladder");
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b = b.saturating_mul(factor);
    }
    bounds.dedup();
    bounds
}

#[derive(Debug)]
struct Registered<H> {
    name: String,
    labels: Labels,
    handle: H,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Vec<Registered<Counter>>,
    gauges: Vec<Registered<Gauge>>,
    histograms: Vec<Registered<Histogram>>,
}

/// The registry: a shared, cloneable index of every registered
/// instrument. Cloning shares the underlying store, so layers can each
/// hold a handle and register their own metrics into one exposition.
///
/// Registration is idempotent: asking for an existing `(name, labels)`
/// pair returns a handle over the **same** cells, so two layers that
/// name the same metric record into one stream.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

fn resolve_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_name(k), "invalid label key {k:?}");
            (k.to_string(), v.to_string())
        })
        .collect()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or finds) a counter. Panics on an invalid name — a
    /// metric name is source code, not input.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = resolve_labels(labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(existing) = inner
            .counters
            .iter()
            .find(|m| m.name == name && m.labels == labels)
        {
            return existing.handle.clone();
        }
        let handle = Counter::default();
        inner.counters.push(Registered {
            name: name.to_string(),
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = resolve_labels(labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(existing) = inner
            .gauges
            .iter()
            .find(|m| m.name == name && m.labels == labels)
        {
            return existing.handle.clone();
        }
        let handle = Gauge::default();
        inner.gauges.push(Registered {
            name: name.to_string(),
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or finds) a histogram with the given inclusive upper
    /// bounds (a final `+Inf` bucket is implicit). Panics if the name
    /// already exists with different bounds: one family, one ladder.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let labels = resolve_labels(labels);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(existing) = inner.histograms.iter().find(|m| m.name == name) {
            assert!(
                existing.handle.bounds() == bounds,
                "histogram {name:?} re-registered with different bounds"
            );
            if let Some(same) = inner
                .histograms
                .iter()
                .find(|m| m.name == name && m.labels == labels)
            {
                return same.handle.clone();
            }
        }
        let handle = Histogram::with_bounds(bounds);
        inner.histograms.push(Registered {
            name: name.to_string(),
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// A point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|m| Sample {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    value: m.handle.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|m| Sample {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    value: m.handle.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|m| HistogramSample {
                    name: m.name.clone(),
                    labels: m.labels.clone(),
                    bounds: m.handle.bounds().to_vec(),
                    buckets: m.handle.bucket_counts(),
                    sum: m.handle.sum(),
                    count: m.handle.count(),
                })
                .collect(),
        }
    }

    /// Prometheus-style text exposition of the whole registry: one
    /// `# TYPE` line per family, `name{labels} value` samples,
    /// histograms as cumulative `_bucket{le=...}` plus `_sum`/`_count`.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// One scalar sample in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Metric family name.
    pub name: String,
    /// Label set, in registration order.
    pub labels: Labels,
    /// The value at snapshot time.
    pub value: u64,
}

/// One histogram sample in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric family name.
    pub name: String,
    /// Label set, in registration order.
    pub labels: Labels,
    /// Inclusive upper bounds (exclusive of the implicit `+Inf`).
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; last entry is `+Inf`.
    pub buckets: Vec<u64>,
    /// Sum of observed values.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

/// A point-in-time copy of a registry, detached from the live cells.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// All counters, in registration order.
    pub counters: Vec<Sample>,
    /// All gauges, in registration order.
    pub gauges: Vec<Sample>,
    /// All histograms, in registration order.
    pub histograms: Vec<HistogramSample>,
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

impl MetricsSnapshot {
    /// Sum of a counter family across all its label sets (zero if the
    /// family was never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// The value of a counter at one exact label set.
    pub fn counter_at(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let want: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.counters
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| s.value)
    }

    /// Sum of a gauge family across all its label sets.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Total observation count of a histogram family across label sets.
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.count)
            .sum()
    }

    /// Total observed sum of a histogram family across label sets.
    pub fn histogram_sum(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.sum)
            .sum()
    }

    /// Renders this snapshot in the Prometheus text format (see
    /// [`MetricsRegistry::render_text`]).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut families: BTreeMap<&str, (&str, Vec<String>)> = BTreeMap::new();
        for s in &self.counters {
            let entry = families
                .entry(&s.name)
                .or_insert_with(|| ("counter", Vec::new()));
            entry.1.push(format!(
                "{}{} {}",
                s.name,
                render_labels(&s.labels, None),
                s.value
            ));
        }
        for s in &self.gauges {
            let entry = families
                .entry(&s.name)
                .or_insert_with(|| ("gauge", Vec::new()));
            entry.1.push(format!(
                "{}{} {}",
                s.name,
                render_labels(&s.labels, None),
                s.value
            ));
        }
        for s in &self.histograms {
            let entry = families
                .entry(&s.name)
                .or_insert_with(|| ("histogram", Vec::new()));
            let mut cumulative = 0u64;
            for (i, bucket) in s.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = s
                    .bounds
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                entry.1.push(format!(
                    "{}_bucket{} {}",
                    s.name,
                    render_labels(&s.labels, Some(("le", &le))),
                    cumulative
                ));
            }
            entry.1.push(format!(
                "{}_sum{} {}",
                s.name,
                render_labels(&s.labels, None),
                s.sum
            ));
            entry.1.push(format!(
                "{}_count{} {}",
                s.name,
                render_labels(&s.labels, None),
                s.count
            ));
        }
        for (name, (kind, lines)) in families {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            for line in lines {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_and_gauge_basics() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("ops_total", &[]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = registry.gauge("occupancy", &[]);
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge sub saturates at zero");
        g.max(5);
        g.max(3);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn registration_is_idempotent_and_shares_cells() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("hits_total", &[("shard", "0")]);
        let b = registry.counter("hits_total", &[("shard", "0")]);
        let other = registry.counter("hits_total", &[("shard", "1")]);
        a.inc();
        b.inc();
        other.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_at("hits_total", &[("shard", "0")]), Some(2));
        assert_eq!(snap.counter_at("hits_total", &[("shard", "1")]), Some(1));
        assert_eq!(snap.counter("hits_total"), 3);
    }

    #[test]
    fn histogram_le_bucket_semantics() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_ns", &[], &[10, 100, 1000]);
        h.observe(10); // le=10 (inclusive upper bound)
        h.observe(11); // le=100
        h.observe(100); // le=100
        h.observe(5000); // +Inf
        assert_eq!(h.bucket_counts(), vec![1, 2, 0, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10 + 11 + 100 + 5000);
        assert_eq!(h.mean(), (10 + 11 + 100 + 5000) / 4);
    }

    #[test]
    fn bucket_counts_sum_to_count() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("v", &[], &latency_buckets_ns());
        for v in [0u64, 3, 999, 250, 251, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_family_rejects_mismatched_bounds() {
        let registry = MetricsRegistry::new();
        registry.histogram("lat_ns", &[("shard", "0")], &[10, 100]);
        registry.histogram("lat_ns", &[("shard", "1")], &[10, 200]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn names_are_validated() {
        MetricsRegistry::new().counter("bad name", &[]);
    }

    #[test]
    fn exponential_buckets_grow_and_saturate() {
        assert_eq!(exponential_buckets(1, 4, 4), vec![1, 4, 16, 64]);
        let capped = exponential_buckets(u64::MAX / 2, 2, 3);
        assert_eq!(capped.last(), Some(&u64::MAX));
        assert!(capped.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn render_text_exposes_families_with_type_lines() {
        let registry = MetricsRegistry::new();
        registry.counter("reqs_total", &[("kind", "query")]).add(3);
        registry.gauge("fan_in", &[]).set(16);
        let h = registry.histogram("svc_ns", &[], &[100, 1000]);
        h.observe(50);
        h.observe(5000);
        let text = registry.render_text();
        assert!(text.contains("# TYPE reqs_total counter\n"));
        assert!(text.contains("reqs_total{kind=\"query\"} 3\n"));
        assert!(text.contains("# TYPE fan_in gauge\n"));
        assert!(text.contains("fan_in 16\n"));
        assert!(text.contains("# TYPE svc_ns histogram\n"));
        assert!(text.contains("svc_ns_bucket{le=\"100\"} 1\n"));
        assert!(
            text.contains("svc_ns_bucket{le=\"1000\"} 1\n"),
            "buckets are cumulative: {text}"
        );
        assert!(text.contains("svc_ns_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("svc_ns_sum 5050\n"));
        assert!(text.contains("svc_ns_count 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("odd_total", &[("v", "a\"b\\c\nd")]).inc();
        let text = registry.render_text();
        assert!(text.contains("odd_total{v=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("spins_total", &[]);
        let h = registry.histogram("spin_ns", &[], &[8, 64]);
        thread::scope(|scope| {
            for t in 0..8 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe((i + t) % 128);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 80_000);
    }
}
