//! Property pins for the metrics registry: concurrent recording never
//! loses an increment, and the text exposition stays parseable.

use gridbnb_metrics::{exponential_buckets, MetricsRegistry};
use proptest::prelude::*;
use std::thread;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any split of a workload across recorder threads lands every
    /// single increment: counter totals, histogram counts, bucket sums
    /// and value sums all equal the sequentially computed expectation.
    #[test]
    fn concurrent_recording_never_loses_increments(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 0..200),
            1..8,
        ),
    ) {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("events_total", &[]);
        let histogram =
            registry.histogram("event_ns", &[], &exponential_buckets(16, 4, 8));
        thread::scope(|scope| {
            for values in &per_thread {
                let counter = counter.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for &v in values {
                        counter.inc();
                        histogram.observe(v);
                    }
                });
            }
        });
        let expected_count: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
        let expected_sum: u64 = per_thread.iter().flatten().sum();
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("events_total"), expected_count);
        prop_assert_eq!(snap.histogram_count("event_ns"), expected_count);
        prop_assert_eq!(snap.histogram_sum("event_ns"), expected_sum);
        let sample = &snap.histograms[0];
        prop_assert_eq!(
            sample.buckets.iter().sum::<u64>(),
            expected_count,
            "bucket counts must sum to the observation count"
        );
    }

    /// Exposition lines are well-formed for arbitrary label values:
    /// every non-comment line is `name{...} value` with a parseable
    /// integer, and cumulative buckets are monotone.
    #[test]
    fn render_text_is_well_formed(
        label_bytes in proptest::collection::vec(32u8..127, 0..24),
        counts in proptest::collection::vec(0u64..1_000, 1..5),
    ) {
        let label: String = label_bytes.iter().map(|&b| b as char).collect();
        let registry = MetricsRegistry::new();
        for (i, &n) in counts.iter().enumerate() {
            registry
                .counter("labeled_total", &[("origin", &format!("{label}{i}"))])
                .add(n);
        }
        let h = registry.histogram("spread_ns", &[], &[10, 100, 1_000]);
        for &n in &counts {
            h.observe(n);
        }
        let text = registry.render_text();
        let mut last_bucket = 0u64;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
            let value: u64 = value.parse().expect("sample value parses as u64");
            if line.starts_with("spread_ns_bucket") {
                prop_assert!(value >= last_bucket, "buckets are cumulative: {}", line);
                last_bucket = value;
            }
        }
        prop_assert_eq!(last_bucket, counts.len() as u64, "+Inf bucket counts all");
        let total: u64 = counts.iter().sum();
        let sum_line = format!("spread_ns_sum {total}");
        prop_assert!(text.contains(&sum_line), "missing {}", sum_line);
    }
}
