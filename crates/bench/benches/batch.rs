//! Batched vs per-request contact throughput on the 8192-interval
//! workload — the amortization the batched protocol (PR 4) buys over
//! the sharded router's lock-per-contact baseline.
//!
//! The same aggregate load (4 client threads × 1024 progressing
//! updates) is served two ways at S = 1 and S = 4:
//!
//! * `per_request_update_x1024_threads4/S` — every update is its own
//!   [`ShardRouter::handle`] contact: one lock acquisition and one full
//!   round of index maintenance (priority re-key + heartbeat move) per
//!   op — what the runtime does without coalescing;
//! * `bundled64_update_x1024_threads4/S` — the updates ship as bundles
//!   of 64 through [`ShardRouter::handle_bundle`]: one lock acquisition
//!   per bundle and one deferred re-key/heartbeat move per touched
//!   entry per bundle ([`Coordinator::apply_batch`]).
//!
//! CI gates on the S=4 pair: bundles must stay ≥ 1.5× the per-request
//! path (`BENCH_batch.json` is the checked-in baseline; the advantage
//! may not regress more than 25 % against it). Ratios, not absolute ns,
//! so hardware differences divide out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_core::{CoordinatorConfig, Interval, Request, Response, ShardRouter, UBig, WorkerId};
use std::hint::black_box;

const WORKERS: u64 = 8192;
const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 1024;
const BUNDLE: u64 = 64;

fn root() -> Interval {
    Interval::new(UBig::zero(), UBig::factorial(50))
}

fn config() -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::one(),
        ..CoordinatorConfig::default()
    }
}

/// A router with ~8192 live intervals held by 8192 workers.
fn router_with(shards: usize) -> ShardRouter {
    let router = ShardRouter::new(root(), shards, config()).expect("valid config");
    for w in 0..WORKERS {
        let _ = router.handle(
            Request::Join {
                worker: WorkerId(w),
                power: 50 + w % 100,
            },
            w,
        );
    }
    router
}

/// One benched client: `(worker, its current interval copy)` — each
/// update advances the begin, exercising the shrink + re-index path.
type Client = (WorkerId, Interval);

/// Picks `THREADS` distinct joined workers, thread `t` homed on shard
/// `t % S` (so at S=4 the four client threads hit four distinct locks).
fn clients_of(router: &ShardRouter) -> Vec<Client> {
    let mut chosen: Vec<WorkerId> = Vec::with_capacity(THREADS);
    for t in 0..THREADS {
        let home = (t % router.shard_count()) as u32;
        let worker = (0..WORKERS)
            .map(WorkerId)
            .find(|&w| router.route(w).0 == home && !chosen.contains(&w))
            .expect("a worker homed on every shard");
        chosen.push(worker);
    }
    chosen
        .into_iter()
        .enumerate()
        .map(|(t, worker)| {
            let copy = match router.handle(
                Request::Update {
                    worker,
                    interval: root(),
                },
                WORKERS + t as u64,
            ) {
                Response::UpdateAck { interval, .. } => interval,
                other => panic!("probe failed: {other:?}"),
            };
            (worker, copy)
        })
        .collect()
}

/// 4 threads × 1024 progressing updates, one contact per update.
fn drive_per_request(router: &ShardRouter, clients: &[Client]) {
    std::thread::scope(|scope| {
        for (worker, copy) in clients {
            scope.spawn(move || {
                for j in 0..OPS_PER_THREAD {
                    let reported =
                        Interval::new(copy.begin().add(&UBig::from(j + 1)), copy.end().clone());
                    black_box(router.handle(
                        Request::Update {
                            worker: *worker,
                            interval: reported,
                        },
                        1_000_000 + j,
                    ));
                }
            });
        }
    });
}

/// The identical 4 × 1024 update load, shipped as bundles of 64.
fn drive_bundled(router: &ShardRouter, clients: &[Client]) {
    std::thread::scope(|scope| {
        for (worker, copy) in clients {
            scope.spawn(move || {
                for chunk in 0..OPS_PER_THREAD / BUNDLE {
                    let bundle: Vec<_> = (0..BUNDLE)
                        .map(|k| {
                            let j = chunk * BUNDLE + k;
                            router.envelope(Request::Update {
                                worker: *worker,
                                interval: Interval::new(
                                    copy.begin().add(&UBig::from(j + 1)),
                                    copy.end().clone(),
                                ),
                            })
                        })
                        .collect();
                    black_box(router.handle_bundle(bundle, 1_000_000 + chunk));
                }
            });
        }
    });
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);

    for shards in [1usize, 4] {
        let base = router_with(shards);
        let clients = clients_of(&base);
        group.bench_with_input(
            BenchmarkId::new("per_request_update_x1024_threads4", shards),
            &(&base, &clients),
            |b, (base, clients)| {
                b.iter_batched(
                    || (*base).clone(),
                    |router| {
                        drive_per_request(&router, clients);
                        router
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bundled64_update_x1024_threads4", shards),
            &(&base, &clients),
            |b, (base, clients)| {
                b.iter_batched(
                    || (*base).clone(),
                    |router| {
                        drive_bundled(&router, clients);
                        router
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
