//! Shared (cross-worker) bundles at W ≫ S — the gateway's flush shape
//! against the two existing delivery regimes on the same traffic.
//!
//! 16 workers (4 per shard at S = 4), each producing 8 progressing
//! updates per round against a router already holding 8192 live
//! entries, delivered three ways:
//!
//! * `per_request_w16x8/S` — every update is its own
//!   [`ShardRouter::handle`] contact: the runtime's default (no
//!   coalescing) and the paper's literal protocol — per-op lock and
//!   index traffic, 128 lock acquisitions per round;
//! * `per_worker_bundles_w16x8/S` — each worker ships its own
//!   8-update bundle (PR 4 coalescing): 16 lock acquisitions per
//!   round, per-worker deferred index maintenance;
//! * `shared_bundle_w16x8/S` — one gateway-flush-shaped
//!   [`ShardRouter::handle_bundle`] call per round carrying all 16
//!   workers' bundles (the wire shape [`gridbnb_core::ContactGateway`]
//!   flushes; its submit/reply plumbing is exercised by the gateway
//!   tests): `S` lock acquisitions per round.
//!
//! Two honest findings this bench pins (both measured on the 1-core
//! build box):
//!
//! 1. The shared bundle keeps the full batching advantage over the
//!    per-request regime — the cross-worker tier loses none of PR 4's
//!    amortization while dividing lock acquisitions by another `W/S`.
//!    **CI gates on this S=4 ratio (≥ 1.3×, baseline ~2.0×)** and on
//!    its regression against the checked-in `BENCH_gateway.json`.
//! 2. Against *per-worker* bundles the shared bundle is serving-cost
//!    **neutral** (identical `handle_bundle` time for the same
//!    traffic, within a few percent once the flush's concatenation is
//!    included): the deferred index maintenance is per touched
//!    entry/worker either way, so merging different workers cannot
//!    dedup it further. What the merge buys is the 16 → S lock/contact
//!    reduction (pinned deterministically by the gateway unit tests
//!    and the sim's contact counters) and one delivery per flush
//!    instead of one per worker on the transport — wins that
//!    uncontended single-core wall time cannot see. The row is kept so
//!    a regression that makes shared bundles *slower* than per-worker
//!    bundles would surface here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_core::{CoordinatorConfig, Interval, Request, Response, ShardRouter, UBig, WorkerId};
use std::hint::black_box;

const POOL: u64 = 8192;
const CLIENTS: usize = 16;
const PER_WORKER: u64 = 8;
const ROUNDS: u64 = 4;

fn root() -> Interval {
    Interval::new(UBig::zero(), UBig::factorial(50))
}

fn config() -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::one(),
        ..CoordinatorConfig::default()
    }
}

/// A router with ~8192 live intervals held by 8192 workers.
fn router_with(shards: usize) -> ShardRouter {
    let router = ShardRouter::new(root(), shards, config()).expect("valid config");
    for w in 0..POOL {
        let _ = router.handle(
            Request::Join {
                worker: WorkerId(w),
                power: 50 + w % 100,
            },
            w,
        );
    }
    router
}

/// One aggregated client: `(worker, its current interval copy)`.
type Client = (WorkerId, Interval);

/// 16 joined workers, 4 per shard at S = 4 (round-robin over shards),
/// each probed for its current interval copy.
fn clients_of(router: &ShardRouter) -> Vec<Client> {
    let mut chosen: Vec<WorkerId> = Vec::with_capacity(CLIENTS);
    for c in 0..CLIENTS {
        let home = (c % router.shard_count()) as u32;
        let worker = (0..POOL)
            .map(WorkerId)
            .find(|&w| router.route(w).0 == home && !chosen.contains(&w))
            .expect("a worker homed on every shard");
        chosen.push(worker);
    }
    chosen
        .into_iter()
        .enumerate()
        .map(|(c, worker)| {
            let copy = match router.handle(
                Request::Update {
                    worker,
                    interval: root(),
                },
                POOL + c as u64,
            ) {
                Response::UpdateAck { interval, .. } => interval,
                other => panic!("probe failed: {other:?}"),
            };
            (worker, copy)
        })
        .collect()
}

/// The `k`-th progressing update of `client` in `round` (each advances
/// the begin, exercising the shrink + re-index path).
fn update_of(client: &Client, round: u64, k: u64) -> Request {
    let (worker, copy) = client;
    let j = round * PER_WORKER + k;
    Request::Update {
        worker: *worker,
        interval: Interval::new(copy.begin().add(&UBig::from(j + 1)), copy.end().clone()),
    }
}

/// 4 rounds × 16 workers × 8 updates, one contact per update.
fn drive_per_request(router: &ShardRouter, clients: &[Client]) {
    for round in 0..ROUNDS {
        for client in clients {
            for k in 0..PER_WORKER {
                black_box(router.handle(update_of(client, round, k), 1_000_000 + round));
            }
        }
    }
}

/// The identical load, one bundle per worker per round.
fn drive_per_worker(router: &ShardRouter, clients: &[Client]) {
    for round in 0..ROUNDS {
        for client in clients {
            let bundle: Vec<_> = (0..PER_WORKER)
                .map(|k| router.envelope(update_of(client, round, k)))
                .collect();
            black_box(router.handle_bundle(bundle, 1_000_000 + round));
        }
    }
}

/// The identical load, one shared bundle per round — the gateway's
/// flush shape.
fn drive_shared(router: &ShardRouter, clients: &[Client]) {
    for round in 0..ROUNDS {
        let mut bundle = Vec::with_capacity(clients.len() * PER_WORKER as usize);
        for client in clients {
            bundle.extend((0..PER_WORKER).map(|k| router.envelope(update_of(client, round, k))));
        }
        black_box(router.handle_bundle(bundle, 1_000_000 + round));
    }
}

fn bench_gateway(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway");
    group.sample_size(10);

    for shards in [1usize, 4] {
        let base = router_with(shards);
        let clients = clients_of(&base);
        group.bench_with_input(
            BenchmarkId::new("per_request_w16x8", shards),
            &(&base, &clients),
            |b, (base, clients)| {
                b.iter_batched(
                    || (*base).clone(),
                    |router| {
                        drive_per_request(&router, clients);
                        router
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_worker_bundles_w16x8", shards),
            &(&base, &clients),
            |b, (base, clients)| {
                b.iter_batched(
                    || (*base).clone(),
                    |router| {
                        drive_per_worker(&router, clients);
                        router
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("shared_bundle_w16x8", shards),
            &(&base, &clients),
            |b, (base, clients)| {
                b.iter_batched(
                    || (*base).clone(),
                    |router| {
                        drive_shared(&router, clients);
                        router
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gateway);
criterion_main!(benches);
