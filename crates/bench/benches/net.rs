//! Contact throughput over real loopback TCP — the two client wiring
//! modes of `gridbnb-net` on identical traffic.
//!
//! W = 64 worker threads (far more than the build box has cores — the
//! paper's regime, where one farmer host serves hundreds of remote
//! workers) each drive 4 heartbeat `Update` contacts per round against
//! a 4-shard [`NetServer`]:
//!
//! * `per_connection_w64x4/4` — every worker owns a TCP connection
//!   ([`SocketTransport`]): 64 sockets, one frame in flight each, one
//!   `handle_bundle` lock acquisition per contact — 256 per round;
//! * `multiplexed_w64x4/4` — the whole fleet shares one [`MuxClient`]
//!   connection: contacts pipeline by sequence number, and the server's
//!   buffered-frame drain folds each burst into one coordinator bundle
//!   — ~2 syscalls and ~one shard lock per burst instead of per
//!   contact.
//!
//! Both rows move the same 256 contacts per round, so contacts/sec
//! ratios are inverse median-time ratios and hardware divides out. **CI
//! gates on multiplexed ≥ 1.2× per-connection contacts/sec at W = 64**
//! and on ≤ 25% regression of that advantage against the checked-in
//! `BENCH_net.json`.
//!
//! Worker threads persist across rounds behind a pair of barriers, so
//! the measurement window holds socket round-trips only — no thread
//! spawn, no connect, no join handshake.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_core::{Interval, Request, Response, Transport, UBig, WorkerId};
use gridbnb_net::{ClientMode, ClientOptions, MuxClient, NetServer, ServerConfig, SocketTransport};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;

const WORKERS: usize = 64;
const CONTACTS_PER_ROUND: u64 = 4;
const SHARDS: usize = 4;

fn root() -> Interval {
    Interval::new(UBig::zero(), UBig::factorial(50))
}

/// A joined fleet parked behind barriers: `round()` releases every
/// worker for [`CONTACTS_PER_ROUND`] heartbeat contacts and waits for
/// the last to finish.
struct Fleet {
    start: Arc<Barrier>,
    done: Arc<Barrier>,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    mux: Option<MuxClient>,
    server_handle: gridbnb_net::ServerHandle,
    server: Option<JoinHandle<()>>,
}

impl Fleet {
    fn spawn(mode: ClientMode) -> Fleet {
        let server = NetServer::bind("127.0.0.1:0", root(), ServerConfig::new(SHARDS))
            .expect("bind loopback");
        let addr = server.local_addr();
        let server_handle = server.handle();
        let server = std::thread::spawn(move || {
            server.serve().expect("serve");
        });

        let options = ClientOptions::default();
        let start = Arc::new(Barrier::new(WORKERS + 1));
        let done = Arc::new(Barrier::new(WORKERS + 1));
        let stop = Arc::new(AtomicBool::new(false));
        let mux = match mode {
            ClientMode::PerConnection => None,
            ClientMode::Multiplexed => {
                Some(MuxClient::connect(addr, &options).expect("connect mux"))
            }
        };
        let workers = (0..WORKERS)
            .map(|index| {
                let transport: Box<dyn Transport + Send> = match &mux {
                    None => Box::new(connect(addr, &options)),
                    Some(mux) => Box::new(mux.transport()),
                };
                let (start, done, stop) = (start.clone(), done.clone(), stop.clone());
                std::thread::spawn(move || drive_worker(index, transport, &start, &done, &stop))
            })
            .collect();
        Fleet {
            start,
            done,
            stop,
            workers,
            mux,
            server_handle,
            server: Some(server),
        }
    }

    /// One measured round: 64 workers × 4 contacts, barrier to barrier.
    fn round(&self) {
        self.start.wait();
        self.done.wait();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.start.wait(); // release the workers into the stop check
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
        if let Some(mux) = self.mux.take() {
            mux.close();
        }
        self.server_handle.stop();
        if let Some(server) = self.server.take() {
            server.join().expect("server thread");
        }
    }
}

fn connect(addr: SocketAddr, options: &ClientOptions) -> SocketTransport {
    SocketTransport::connect(addr, options).expect("connect worker socket")
}

/// Joins once (checking an interval out of the server), then answers
/// every barrier release with [`CONTACTS_PER_ROUND`] heartbeat updates
/// of that interval — traffic that never drains the pool, so rounds can
/// repeat indefinitely.
fn drive_worker(
    index: usize,
    transport: Box<dyn Transport + Send>,
    start: &Barrier,
    done: &Barrier,
    stop: &AtomicBool,
) {
    let worker = WorkerId(index as u64);
    let responses = transport
        .contact(vec![Request::Join { worker, power: 100 }])
        .expect("join contact");
    let interval = match responses.into_iter().next() {
        Some(Response::Work { interval, .. }) => interval,
        other => panic!("join answered {other:?}"),
    };
    loop {
        start.wait();
        if stop.load(Ordering::Acquire) {
            return;
        }
        for _ in 0..CONTACTS_PER_ROUND {
            let responses = transport
                .contact(vec![Request::Update {
                    worker,
                    interval: interval.clone(),
                }])
                .expect("update contact");
            assert!(
                matches!(responses.first(), Some(Response::UpdateAck { .. })),
                "heartbeat answered {responses:?}"
            );
        }
        done.wait();
    }
}

fn bench_net(c: &mut Criterion) {
    let mut group = c.benchmark_group("net");
    group.sample_size(10);

    for (name, mode) in [
        ("per_connection_w64x4", ClientMode::PerConnection),
        ("multiplexed_w64x4", ClientMode::Multiplexed),
    ] {
        let fleet = Fleet::spawn(mode);
        group.bench_with_input(BenchmarkId::new(name, SHARDS), &fleet, |b, fleet| {
            b.iter(|| fleet.round())
        });
        drop(fleet);
    }
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
