//! The price of durability: what one write-ahead append costs against
//! the full-state snapshot it amortizes, plus the recovery path a
//! restart pays.
//!
//! * `append_x64` — 64 one-op records appended per iteration (encode,
//!   CRC, frame, blob append) against a store whose committed state
//!   holds 8192 intervals. Append cost must be independent of state
//!   size — that is the whole argument for logging deltas instead of
//!   re-snapshotting.
//! * `snapshot_8192` — one full compaction of an 8192-interval, 4-shard
//!   state: encode every interval through the checkpoint codec, write
//!   the per-shard snapshot blobs, commit the manifest, delete the
//!   stale generation.
//! * `recover_8192_replay256` — a cold restart: parse the manifest,
//!   decode the 8192-interval snapshot, replay a 256-record log tail.
//!
//! Honest finding, pinned by the checked-in `BENCH_wal.json` and gated
//! in CI: one append is ~1.2 µs on the build box while the
//! 8192-interval snapshot is ~2 ms — three orders of magnitude apart,
//! far beyond the ≥5× amortization the CI gate demands. Journaling per
//! delta and compacting on a timer is the right trade at any campaign
//! size the paper's runs reach. A cold recovery (snapshot decode plus a
//! 256-record replay) lands at ~1.6 ms — a restart costs about one
//! compaction.

use criterion::{criterion_group, criterion_main, Criterion};
use gridbnb_core::{Interval, MemoryBackend, Solution, StorageBackend, UBig, WalOp, WalStore};
use std::hint::black_box;
use std::sync::Arc;

const OPS: u64 = 64;
const STATE_INTERVALS: usize = 8192;
const SHARDS: usize = 4;
const TAIL_RECORDS: u64 = 256;

fn iv(begin: u64, end: u64) -> Interval {
    Interval::new(UBig::from(begin), UBig::from(end))
}

/// An 8192-interval state spread over 4 shards — the shape of a large
/// mid-campaign frontier.
fn big_state() -> Vec<Vec<Interval>> {
    let per_shard = STATE_INTERVALS / SHARDS;
    (0..SHARDS)
        .map(|k| {
            (0..per_shard)
                .map(|i| {
                    let begin = ((k * per_shard + i) as u64) * 1_000;
                    iv(begin, begin + 500)
                })
                .collect()
        })
        .collect()
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    group.sample_size(10);

    let state = big_state();
    let solution = Solution::new(4242, vec![1, 2, 3, 4]);

    // Append: delta records against a big committed state. The op
    // payload is a realistic worker update (one interval replaced).
    let append_store = WalStore::create(
        Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>,
        &state,
        None,
    )
    .expect("create append store");
    let mut tick = 0u64;
    group.bench_function("append_x64", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                tick += 1;
                let begin = tick * 1_000;
                append_store
                    .append(
                        (tick % SHARDS as u64) as usize,
                        &[WalOp::Replace {
                            old: iv(begin, begin + 500),
                            new: iv(begin + 1, begin + 500),
                        }],
                    )
                    .expect("append");
            }
            black_box(tick)
        })
    });

    // Snapshot: the full-state alternative one append amortizes away.
    let snap_store = WalStore::create(
        Arc::new(MemoryBackend::new()) as Arc<dyn StorageBackend>,
        &state,
        None,
    )
    .expect("create snapshot store");
    group.bench_function("snapshot_8192", |b| {
        b.iter(|| {
            let generation = snap_store.advance_generation();
            snap_store
                .compact(generation, &state, Some(&solution))
                .expect("compact");
            black_box(generation)
        })
    });

    // Recovery: committed 8192-interval snapshot + 256-record tail.
    let recover_backend = Arc::new(MemoryBackend::new());
    {
        let store = WalStore::create(
            Arc::clone(&recover_backend) as Arc<dyn StorageBackend>,
            &state,
            Some(&solution),
        )
        .expect("create recovery fixture");
        for i in 0..TAIL_RECORDS {
            let begin = (STATE_INTERVALS as u64) * 1_000 + i * 10;
            store
                .append(
                    (i % SHARDS as u64) as usize,
                    &[WalOp::Insert(iv(begin, begin + 5))],
                )
                .expect("append tail");
        }
    }
    group.bench_function("recover_8192_replay256", |b| {
        b.iter(|| {
            let (_, recovered) =
                WalStore::recover(Arc::clone(&recover_backend) as Arc<dyn StorageBackend>)
                    .expect("recover");
            black_box(recovered.replayed_records)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
