//! Engine throughput: raw node-visit rate (no pruning), bound-driven
//! search, and the cost of interval restriction.

use criterion::{criterion_group, criterion_main, Criterion};
use gridbnb_coding::Interval;
use gridbnb_engine::toy::{FullEnumeration, TableAssignment};
use gridbnb_engine::{solve, solve_interval, IntervalExplorer, Problem, UBig};
use gridbnb_flowshop::bounds::PairSelection;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");

    // Raw traversal rate: 109 600 node visits, no pruning.
    let enumeration = FullEnumeration::new(8);
    group.bench_function("enumerate_8_full_tree", |b| {
        b.iter(|| solve(black_box(&enumeration), None))
    });

    // Interval-restricted run over a slice of the same tree.
    let shape = enumeration.shape();
    let total = shape.root_range().end().to_u64().unwrap();
    let slice = Interval::new(UBig::from(total / 4), UBig::from(total / 2));
    group.bench_function("enumerate_8_quarter_slice", |b| {
        b.iter(|| solve_interval(black_box(&enumeration), black_box(&slice), None))
    });

    // Budgeted stepping (the worker inner loop shape).
    group.bench_function("explorer_run_1000_steps", |b| {
        b.iter(|| {
            let mut e = IntervalExplorer::new(&enumeration, &shape.root_range(), None);
            e.run(1_000);
            black_box(e.stats().explored)
        })
    });

    // Bound-driven searches.
    let assignment = TableAssignment::random(9, 7);
    group.bench_function("assignment_9_bnb", |b| {
        b.iter(|| solve(black_box(&assignment), None))
    });
    let fs_weak = FlowshopProblem::new(generate(9, 4, 42), BoundMode::OneMachine);
    group.bench_function("flowshop_9x4_one_machine", |b| {
        b.iter(|| solve(black_box(&fs_weak), None))
    });
    let fs_strong =
        FlowshopProblem::new(generate(9, 4, 42), BoundMode::Johnson(PairSelection::All));
    group.bench_function("flowshop_9x4_johnson", |b| {
        b.iter(|| solve(black_box(&fs_strong), None))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
