//! Benchmarks of the paper's coding operators: fold, the two unfold
//! implementations, and the communication-size argument (interval vs
//! serialized node list) that justifies the whole design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_bigint::UBig;
use gridbnb_coding::{fold, unfold, unfold_direct, Interval, TreeShape};
use std::hint::black_box;

fn mid_interval(shape: &TreeShape, denom: u64) -> Interval {
    let third = shape.total_leaves().div_rem_u64(3).0;
    let len = shape.total_leaves().div_rem_u64(denom).0;
    Interval::new(third.clone(), &third + &len)
}

fn bench_coding(c: &mut Criterion) {
    let mut group = c.benchmark_group("coding");

    for n in [20usize, 35, 50] {
        let shape = TreeShape::permutation(n);
        let interval = mid_interval(&shape, 1_000_000);
        group.bench_with_input(
            BenchmarkId::new("unfold_paper", n),
            &(&shape, &interval),
            |b, (shape, interval)| b.iter(|| unfold(black_box(shape), black_box(interval))),
        );
        group.bench_with_input(
            BenchmarkId::new("unfold_direct", n),
            &(&shape, &interval),
            |b, (shape, interval)| b.iter(|| unfold_direct(black_box(shape), black_box(interval))),
        );
        let nodes = unfold(&shape, &interval);
        group.bench_with_input(
            BenchmarkId::new("fold", n),
            &(&shape, &nodes),
            |b, (shape, nodes)| b.iter(|| fold(black_box(shape), black_box(nodes)).unwrap()),
        );
        // The message-size claim: two big integers vs one rank token per
        // depth per active node.
        group.bench_with_input(
            BenchmarkId::new("serialize_interval", n),
            &interval,
            |b, interval| {
                b.iter(|| {
                    let s = format!("{} {}", interval.begin(), interval.end());
                    black_box(s)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("serialize_node_list", n),
            &nodes,
            |b, nodes| {
                b.iter(|| {
                    let mut s = String::new();
                    for node in nodes.iter() {
                        for r in node.ranks() {
                            s.push_str(&r.to_string());
                            s.push(' ');
                        }
                        s.push(';');
                    }
                    black_box(s)
                })
            },
        );
    }

    // Interval algebra hot ops at 50! scale.
    let shape = TreeShape::permutation(50);
    let a = mid_interval(&shape, 100);
    let b_iv = mid_interval(&shape, 7);
    group.bench_function("intersect_50", |b| {
        b.iter(|| black_box(&a).intersect(black_box(&b_iv)))
    });
    group.bench_function("split_at_50", |b| {
        let cut = a.begin() + &UBig::factorial(40);
        b.iter(|| black_box(&a).split_at(black_box(&cut)))
    });
    group.finish();
}

criterion_group!(benches, bench_coding);
criterion_main!(benches);
