//! Pooled-bounding benchmarks: one `lower_bound_batch` call over a
//! sibling pool vs the scalar `lower_bound_against` loop over the same
//! children — the amortization the pooled explorer buys at every
//! internal node. CI gates on the flowshop pair (pooled must bound the
//! pool ≥ 1.5× faster than the scalar loop); the end-to-end explorer
//! numbers are informational.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_engine::IntervalExplorer;
use gridbnb_flowshop::neh::neh;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem, Problem};
use gridbnb_qap::{greedy, Bound, QapInstance, QapProblem};
use std::hint::black_box;

/// All children of the state reached by branching `prefix_ranks` from
/// the root — exactly the pool the pooled explorer fills at that frame.
fn sibling_pool<P: Problem>(problem: &P, prefix_ranks: &[u64]) -> Vec<P::State> {
    let mut state = problem.root_state();
    for &r in prefix_ranks {
        state = problem.branch(&state, r);
    }
    let arity = problem.shape().arity_at(prefix_ranks.len());
    (0..arity).map(|r| problem.branch(&state, r)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");

    // Flowshop: a near-root pool on a mid-size Taillard instance with a
    // realistic NEH incumbent — the gated pair. The prefix follows the
    // NEH schedule itself so the pool is mixed: some children are
    // eliminated by the one-machine screen, the rest pay the Johnson
    // pass, exactly the workload an explorer frame sees on the
    // trajectory towards the optimum.
    let instance = generate(14, 5, 873654221);
    let (schedule, ub) = neh(&instance);
    let cutoff = ub; // elimination threshold a real search would hold
    let problem = FlowshopProblem::new(instance, BoundMode::default());
    let ranks = problem.encode_schedule(&schedule);
    let pool = sibling_pool(&problem, &ranks[..2]);
    let label = format!("14x5_w{}", pool.len());
    group.bench_with_input(
        BenchmarkId::new("flowshop_scalar", &label),
        &(&problem, &pool),
        |b, (problem, pool)| {
            b.iter(|| {
                let mut acc = 0u64;
                for s in pool.iter() {
                    acc ^= problem.lower_bound_against(black_box(s), cutoff);
                }
                acc
            })
        },
    );
    let mut out = Vec::new();
    group.bench_with_input(
        BenchmarkId::new("flowshop_pooled", &label),
        &(&problem, &pool),
        |b, (problem, pool)| {
            b.iter(|| {
                problem.lower_bound_batch(black_box(pool), cutoff, &mut out);
                out.iter().fold(0u64, |a, &x| a ^ x)
            })
        },
    );

    // QAP: same shape on a 12-facility grid instance with a greedy
    // incumbent (informational — the screen/GL split dominates).
    let instance = QapInstance::nugent_style(3, 4, 2007);
    let (_, ub) = greedy::greedy_construct(&instance);
    let cutoff = ub;
    let problem = QapProblem::new(instance, Bound::Tiered);
    let pool = sibling_pool(&problem, &[0, 1]);
    let label = format!("nug12_w{}", pool.len());
    group.bench_with_input(
        BenchmarkId::new("qap_scalar", &label),
        &(&problem, &pool),
        |b, (problem, pool)| {
            b.iter(|| {
                let mut acc = 0u64;
                for s in pool.iter() {
                    acc ^= problem.lower_bound_against(black_box(s), cutoff);
                }
                acc
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("qap_pooled", &label),
        &(&problem, &pool),
        |b, (problem, pool)| {
            b.iter(|| {
                problem.lower_bound_batch(black_box(pool), cutoff, &mut out);
                out.iter().fold(0u64, |a, &x| a ^ x)
            })
        },
    );

    group.finish();
}

fn bench_explorer(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_solve");
    group.sample_size(10);

    // End-to-end: the same full optimality proof, pooled vs scalar.
    let instance = generate(9, 4, 873654221);
    let (_, ub) = neh(&instance);
    let problem = FlowshopProblem::new(instance, BoundMode::default());
    let interval = problem.shape().root_range();
    for (label, pooled) in [("pooled", true), ("scalar", false)] {
        group.bench_with_input(
            BenchmarkId::new(label, "9x4"),
            &(&problem, &interval),
            |b, (problem, interval)| {
                b.iter(|| {
                    let mut explorer =
                        IntervalExplorer::with_pooling(*problem, interval, Some(ub + 1), pooled);
                    explorer.run(u64::MAX);
                    assert!(explorer.is_exhausted());
                    explorer.stats().nodes_bounded
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_kernels, bench_explorer);
criterion_main!(benches);
