//! Bounding-operator benchmarks: the one-machine bound vs the Johnson
//! two-machine bound at Ta056 size (50×20) — the cost/strength
//! trade-off at the heart of B&B engineering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_flowshop::bounds::{one_machine_bound, JobSet, JohnsonBound, PairSelection};
use gridbnb_flowshop::makespan::{makespan, push_job};
use gridbnb_flowshop::taillard::{generate, ta056};
use std::hint::black_box;

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds");
    for (label, instance) in [("20x5", generate(20, 5, 873654221)), ("50x20", ta056())] {
        // A quarter-scheduled state.
        let prefix_len = instance.jobs() / 4;
        let mut heads = vec![0u64; instance.machines()];
        let mut remaining = JobSet::full(instance.jobs());
        for j in 0..prefix_len {
            push_job(&instance, &mut heads, j);
            remaining = remaining.without(j);
        }
        group.bench_with_input(
            BenchmarkId::new("one_machine", label),
            &(&instance, &heads, remaining),
            |b, (inst, heads, remaining)| {
                b.iter(|| one_machine_bound(black_box(inst), black_box(heads), *remaining))
            },
        );
        for (sel_label, sel) in [
            ("johnson_all", PairSelection::All),
            ("johnson_adjacent", PairSelection::AdjacentPlusEnds),
        ] {
            let jb = JohnsonBound::new(&instance, &sel);
            group.bench_with_input(
                BenchmarkId::new(sel_label, label),
                &(&instance, &heads, remaining),
                |b, (inst, heads, remaining)| {
                    b.iter(|| jb.bound(black_box(inst), black_box(heads), *remaining))
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new("makespan_full", label),
            &instance,
            |b, inst| {
                let schedule: Vec<usize> = (0..inst.jobs()).collect();
                b.iter(|| makespan(black_box(inst), black_box(&schedule)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
