//! Coordinator scalability: request-handling cost as `INTERVALS` grows —
//! the farmer must stay cheap for the paper's 1.7 % claim to hold at
//! 130 k allocations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_core::{Coordinator, CoordinatorConfig, Interval, Request, UBig, WorkerId};
use std::hint::black_box;

/// Builds a coordinator with ~`n` live intervals held by `n` workers.
fn coordinator_with(n: u64) -> Coordinator {
    let root = Interval::new(UBig::zero(), UBig::factorial(50));
    let mut c = Coordinator::new(
        root,
        CoordinatorConfig {
            duplication_threshold: UBig::one(),
            ..CoordinatorConfig::default()
        },
    );
    for w in 0..n {
        let _ = c.handle(
            Request::Join {
                worker: WorkerId(w),
                power: 50 + w % 100,
            },
            w,
        );
    }
    c
}

fn bench_coordinator(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordinator");
    for n in [16u64, 128, 1024, 8192] {
        let base = coordinator_with(n);
        group.bench_with_input(BenchmarkId::new("join_assign", n), &base, |b, base| {
            // Selection scans all entries: this is the farmer's most
            // expensive operation.
            b.iter_batched(
                || base.clone(),
                |mut coord| {
                    black_box(coord.handle(
                        Request::Join {
                            worker: WorkerId(u64::MAX),
                            power: 333,
                        },
                        99_999,
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("update", n), &base, |b, base| {
            let interval = base.entries()[base.entries().len() / 2].interval.clone();
            let worker = base.entries()[base.entries().len() / 2].holders[0].worker;
            b.iter_batched(
                || base.clone(),
                |mut coord| {
                    black_box(coord.handle(
                        Request::Update {
                            worker,
                            interval: interval.clone(),
                        },
                        99_999,
                    ))
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    // Checkpoint encoding at scale.
    let big = coordinator_with(4096);
    group.bench_function("encode_checkpoint_4096", |b| {
        b.iter(|| {
            let intervals: Vec<Interval> =
                big.entries().iter().map(|e| e.interval.clone()).collect();
            black_box(gridbnb_core::checkpoint::encode_intervals(&intervals))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coordinator);
criterion_main!(benches);
