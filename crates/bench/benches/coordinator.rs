//! Coordinator scalability: request-handling cost as `INTERVALS` grows —
//! the farmer must stay cheap for the paper's 1.7 % claim to hold at
//! 130 k allocations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_core::{Coordinator, CoordinatorConfig, Interval, Request, UBig, WorkerId};
use std::hint::black_box;

/// Builds a coordinator with ~`n` live intervals held by `n` workers.
fn coordinator_with(n: u64) -> Coordinator {
    let root = Interval::new(UBig::zero(), UBig::factorial(50));
    let mut c = Coordinator::new(
        root,
        CoordinatorConfig {
            duplication_threshold: UBig::one(),
            ..CoordinatorConfig::default()
        },
    );
    for w in 0..n {
        let _ = c.handle(
            Request::Join {
                worker: WorkerId(w),
                power: 50 + w % 100,
            },
            w,
        );
    }
    c
}

fn bench_coordinator(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordinator");
    for n in [16u64, 128, 1024, 8192] {
        let base = coordinator_with(n);
        // Each routine call performs 64 operations (divide the reported
        // time by 64 for per-request cost): batching amortizes the
        // entry-vector growth the way a live farmer does, and returning
        // the coordinator keeps the clone's teardown out of the timing.
        group.bench_with_input(BenchmarkId::new("join_assign_x64", n), &base, |b, base| {
            // The selection operator (the seed rescanned all entries on
            // every request here).
            b.iter_batched(
                || base.clone(),
                |mut coord| {
                    for j in 0..64u64 {
                        black_box(coord.handle(
                            Request::Join {
                                worker: WorkerId(u64::MAX - j),
                                power: 333,
                            },
                            99_999 + j,
                        ));
                    }
                    coord
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("update_x64", n), &base, |b, base| {
            let interval = base.entries()[base.entries().len() / 2].interval.clone();
            let worker = base.entries()[base.entries().len() / 2].holders[0].worker;
            b.iter_batched(
                || base.clone(),
                |mut coord| {
                    for j in 0..64u64 {
                        // Each update reports real progress (begin
                        // advances), exercising the shrink + re-index
                        // path, not just the heartbeat refresh.
                        black_box(coord.handle(
                            Request::Update {
                                worker,
                                interval: Interval::new(
                                    interval.begin().add(&UBig::from(j + 1)),
                                    interval.end().clone(),
                                ),
                            },
                            99_999 + j,
                        ));
                    }
                    coord
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    // Checkpoint encoding at scale.
    let big = coordinator_with(4096);
    group.bench_function("encode_checkpoint_4096", |b| {
        b.iter(|| {
            let intervals: Vec<Interval> =
                big.entries().iter().map(|e| e.interval.clone()).collect();
            black_box(gridbnb_core::checkpoint::encode_intervals(&intervals))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coordinator);
criterion_main!(benches);
