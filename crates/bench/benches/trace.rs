//! Replicable-mode overhead: full W=8 S=4 flowshop resolutions, default
//! policy vs threaded replicable mode with trace recording.
//!
//! Replicable mode swaps the position-based steal heuristics for
//! ordered rules and records every handout, journal delta, steal and
//! cutoff into the run-trace — all inside the shard critical sections,
//! so the price shows up directly in contact throughput. CI gates the
//! ratio: the replicable+trace run must keep **≥ 0.7×** the default
//! configuration's throughput on the same workload (the threaded
//! variant is benched — the deterministic driver is single-threaded by
//! design and not a throughput configuration).

use criterion::{criterion_group, criterion_main, Criterion};
use gridbnb_core::runtime::{run, RuntimeConfig};
use gridbnb_core::UBig;
use gridbnb_flowshop::bounds::PairSelection;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem};
use std::hint::black_box;

const WORKERS: usize = 8;
const SHARDS: usize = 4;

fn problem() -> FlowshopProblem {
    FlowshopProblem::new(generate(10, 5, 301), BoundMode::Johnson(PairSelection::All))
}

fn base_config() -> RuntimeConfig {
    let mut config = RuntimeConfig::new(WORKERS).with_shards(SHARDS);
    config.poll_nodes = 1_000;
    config.coordinator.duplication_threshold = UBig::from(64u64);
    config.coordinator.holder_timeout_ns = 50_000_000;
    config
}

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    let problem = problem();

    group.bench_function("default_w8s4", |b| {
        let config = base_config();
        b.iter(|| black_box(run(&problem, &config)))
    });

    group.bench_function("replicable_trace_w8s4", |b| {
        let config = base_config().with_replicable_threads(2007);
        b.iter(|| black_box(run(&problem, &config)))
    });

    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
