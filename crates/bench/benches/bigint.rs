//! Microbenchmarks of the big-integer substrate at the sizes the
//! interval coding actually uses (Ta056 node numbers: ≤ 50! ≈ 2²¹⁵).

use criterion::{criterion_group, criterion_main, Criterion};
use gridbnb_bigint::UBig;
use std::hint::black_box;
use std::str::FromStr;

fn bench_bigint(c: &mut Criterion) {
    let a = UBig::factorial(50);
    let b = UBig::factorial(49).mul_u64(17);
    let small = UBig::factorial(20);

    let mut group = c.benchmark_group("bigint");
    group.bench_function("add_50fact", |bench| {
        bench.iter(|| black_box(&a) + black_box(&b))
    });
    group.bench_function("sub_50fact", |bench| {
        bench.iter(|| black_box(&a).checked_sub(black_box(&b)).unwrap())
    });
    group.bench_function("mul_u64", |bench| {
        bench.iter(|| black_box(&b).mul_u64(black_box(12345)))
    });
    group.bench_function("div_rem_u64", |bench| {
        bench.iter(|| black_box(&a).div_rem_u64(black_box(1_000_003)))
    });
    group.bench_function("mul_full", |bench| {
        bench.iter(|| black_box(&small) * black_box(&small))
    });
    group.bench_function("div_rem_full", |bench| {
        bench.iter(|| black_box(&a).div_rem(black_box(&small)))
    });
    group.bench_function("mul_div_floor", |bench| {
        bench.iter(|| black_box(&a).mul_div_floor(black_box(100), black_box(350)))
    });
    group.bench_function("cmp", |bench| {
        bench.iter(|| black_box(&a).cmp(black_box(&b)))
    });
    group.bench_function("factorial_50", |bench| {
        bench.iter(|| UBig::factorial(black_box(50)))
    });
    group.bench_function("to_string_50fact", |bench| {
        bench.iter(|| black_box(&a).to_string())
    });
    let s = a.to_string();
    group.bench_function("parse_50fact", |bench| {
        bench.iter(|| UBig::from_str(black_box(&s)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_bigint);
criterion_main!(benches);
