//! Sharded-router throughput on the 8192-interval workload.
//!
//! Three architectures serve the same aggregate contact load (4 client
//! threads, 1024 progress updates each):
//!
//! * `farmer_channel_update_x1024_threads4/1` — the pre-sharding
//!   architecture: one coordinator behind a farmer thread, every
//!   contact a blocking channel round-trip (what `runtime.rs` does at
//!   `shards = 1`);
//! * `router_update_x1024_threads4/1` — a one-shard [`ShardRouter`]
//!   contacted directly (lock-per-contact, no funnel);
//! * `router_update_x1024_threads4/4` — four shards, each client thread
//!   homed on its own shard, so contacts don't share a lock at all.
//!
//! The headline claim CI gates on: the S=4 router must beat the
//! funneled farmer by ≥ 2× aggregate throughput (~3.4× on the 1-core
//! build box, more on real hardware). The S=4/S=1 router pair isolates
//! the lock-spreading win: ~1.4× on one core from contention relief
//! alone, scaling with cores once shard locks stop sharing them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_core::{
    Coordinator, CoordinatorConfig, Interval, Request, Response, ShardRouter, UBig, WorkerId,
};
use std::hint::black_box;
use std::sync::mpsc::{channel, Sender};

const WORKERS: u64 = 8192;
const THREADS: usize = 4;
const OPS_PER_THREAD: u64 = 1024;

fn root() -> Interval {
    Interval::new(UBig::zero(), UBig::factorial(50))
}

fn config() -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::one(),
        ..CoordinatorConfig::default()
    }
}

/// A router with ~8192 live intervals held by 8192 workers.
fn router_with(shards: usize) -> ShardRouter {
    let router = ShardRouter::new(root(), shards, config()).expect("valid config");
    for w in 0..WORKERS {
        let _ = router.handle(
            Request::Join {
                worker: WorkerId(w),
                power: 50 + w % 100,
            },
            w,
        );
    }
    router
}

/// One benched client: `(worker, its current interval copy)` — each
/// update advances the begin, exercising the shrink + re-index path.
type Client = (WorkerId, Interval);

/// Picks `THREADS` distinct joined workers, thread `t` homed on shard
/// `t % S` (so at S=4 the four client threads hit four distinct locks,
/// and at S=1 four distinct holders contend on the one lock), and
/// probes each one's interval copy with a heartbeat-only update.
fn clients_of(router: &ShardRouter) -> Vec<Client> {
    let mut chosen: Vec<WorkerId> = Vec::with_capacity(THREADS);
    for t in 0..THREADS {
        let home = (t % router.shard_count()) as u32;
        let worker = (0..WORKERS)
            .map(WorkerId)
            .find(|&w| router.route(w).0 == home && !chosen.contains(&w))
            .expect("a worker homed on every shard");
        chosen.push(worker);
    }
    chosen
        .into_iter()
        .enumerate()
        .map(|(t, worker)| {
            let copy = match router.handle(
                Request::Update {
                    worker,
                    interval: root(),
                },
                WORKERS + t as u64,
            ) {
                Response::UpdateAck { interval, .. } => interval,
                other => panic!("probe failed: {other:?}"),
            };
            (worker, copy)
        })
        .collect()
}

/// 4 threads × 1024 progressing updates straight into the router.
fn drive_router(router: &ShardRouter, clients: &[Client]) {
    std::thread::scope(|scope| {
        for (worker, copy) in clients {
            scope.spawn(move || {
                for j in 0..OPS_PER_THREAD {
                    let reported =
                        Interval::new(copy.begin().add(&UBig::from(j + 1)), copy.end().clone());
                    black_box(router.handle(
                        Request::Update {
                            worker: *worker,
                            interval: reported,
                        },
                        1_000_000 + j,
                    ));
                }
            });
        }
    });
}

/// The same aggregate load through the pre-sharding funnel: one farmer
/// thread owns the coordinator, clients block on a reply channel per
/// contact.
fn drive_funnel(coordinator: &mut Coordinator, clients: &[Client]) {
    type FunnelEnvelope = (Request, Sender<Response>);
    let (req_tx, req_rx) = channel::<FunnelEnvelope>();
    std::thread::scope(|scope| {
        let coordinator = &mut *coordinator;
        scope.spawn(move || {
            let mut now = 1_000_000u64;
            while let Ok((request, reply)) = req_rx.recv() {
                now += 1;
                let _ = reply.send(coordinator.handle(request, now));
            }
        });
        for (worker, copy) in clients {
            let req_tx = req_tx.clone();
            scope.spawn(move || {
                let (reply_tx, reply_rx) = channel::<Response>();
                for j in 0..OPS_PER_THREAD {
                    let reported =
                        Interval::new(copy.begin().add(&UBig::from(j + 1)), copy.end().clone());
                    let request = Request::Update {
                        worker: *worker,
                        interval: reported,
                    };
                    req_tx.send((request, reply_tx.clone())).unwrap();
                    black_box(reply_rx.recv().unwrap());
                }
            });
        }
        drop(req_tx);
    });
}

fn bench_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard");
    group.sample_size(10);

    for shards in [1usize, 4] {
        let base = router_with(shards);
        let clients = clients_of(&base);
        // Single-threaded routing overhead vs the bare coordinator's
        // join bench: the router adds one hash + one uncontended lock.
        group.bench_with_input(
            BenchmarkId::new("router_join_x64", shards),
            &base,
            |b, base| {
                b.iter_batched(
                    || base.clone(),
                    |router| {
                        for j in 0..64u64 {
                            black_box(router.handle(
                                Request::Join {
                                    worker: WorkerId(u64::MAX - j),
                                    power: 333,
                                },
                                999_999 + j,
                            ));
                        }
                        router
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
        // Aggregate concurrent update throughput (the CI-gated id).
        group.bench_with_input(
            BenchmarkId::new("router_update_x1024_threads4", shards),
            &(&base, &clients),
            |b, (base, clients)| {
                b.iter_batched(
                    || (*base).clone(),
                    |router| {
                        drive_router(&router, clients);
                        router
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }

    // The pre-sharding architecture under the identical load.
    let funnel_base = router_with(1);
    let funnel_clients = clients_of(&funnel_base);
    let coordinator_base = Coordinator::new(root(), config());
    let coordinator_base = {
        let mut coordinator = coordinator_base;
        for w in 0..WORKERS {
            let _ = coordinator.handle(
                Request::Join {
                    worker: WorkerId(w),
                    power: 50 + w % 100,
                },
                w,
            );
        }
        coordinator
    };
    group.bench_with_input(
        BenchmarkId::new("farmer_channel_update_x1024_threads4", 1usize),
        &(&coordinator_base, &funnel_clients),
        |b, (base, clients)| {
            b.iter_batched(
                || (*base).clone(),
                |mut coordinator| {
                    drive_funnel(&mut coordinator, clients);
                    coordinator
                },
                criterion::BatchSize::SmallInput,
            )
        },
    );
    group.finish();
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
