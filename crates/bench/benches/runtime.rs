//! Thread-runtime benchmarks: end-to-end parallel resolution and the
//! speedup over worker counts (the laptop-scale analogue of the paper's
//! grid scalability).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_core::runtime::{run, RuntimeConfig};
use gridbnb_core::UBig;
use gridbnb_engine::toy::FullEnumeration;
use gridbnb_flowshop::bounds::PairSelection;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem};
use std::hint::black_box;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);

    // Fixed exhaustive workload (109 600 nodes): pure scaling shape.
    let enumeration = FullEnumeration::new(8);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("enumerate_8", workers),
            &workers,
            |b, &workers| {
                let mut config = RuntimeConfig::new(workers);
                config.poll_nodes = 4_000;
                config.coordinator.duplication_threshold = UBig::from(256u64);
                b.iter(|| black_box(run(&enumeration, &config)))
            },
        );
    }

    // A real bound-driven flowshop resolution.
    let problem = FlowshopProblem::new(generate(10, 5, 77), BoundMode::Johnson(PairSelection::All));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("flowshop_10x5", workers),
            &workers,
            |b, &workers| {
                let config = RuntimeConfig::new(workers);
                b.iter(|| black_box(run(&problem, &config)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
