//! QAP campaign benches: bound-evaluation micro-costs, the greedy
//! upper-bound pipeline, and full sequential resolutions under each
//! bound tier on Nugent-style grid instances.
//!
//! The headline pair CI gates on (`BENCH_qap.json`): on the 3×3 grid,
//! the Gilmore–Lawler solve must finish at least as fast as the screen
//! solve — the LAP machinery is ~50× costlier per node, so this only
//! holds because GL prunes the tree much harder, which is exactly the
//! claim worth pinning. The gate compares the screen/GL time ratio
//! (hardware divides out) against the checked-in baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gridbnb_engine::solve;
use gridbnb_qap::bounds::{gilmore_lawler_bound, screen_bound};
use gridbnb_qap::greedy::{greedy_upper_bound, GreedyParams};
use gridbnb_qap::{Bound, QapInstance, QapProblem};
use std::hint::black_box;

fn bench_qap(c: &mut Criterion) {
    let mut group = c.benchmark_group("qap");
    group.sample_size(10);

    // Bound evaluation at the root of the flagship 3×4 instance.
    let nug12 = QapInstance::nugent_style(3, 4, 2007);
    group.bench_with_input(
        BenchmarkId::new("screen_bound_root", 12),
        &nug12,
        |b, inst| b.iter(|| black_box(screen_bound(inst, &[], 0, 0))),
    );
    group.bench_with_input(BenchmarkId::new("gl_bound_root", 12), &nug12, |b, inst| {
        b.iter(|| black_box(gilmore_lawler_bound(inst, &[], 0, 0)))
    });
    group.bench_with_input(BenchmarkId::new("greedy_ub", 12), &nug12, |b, inst| {
        b.iter(|| black_box(greedy_upper_bound(inst, &GreedyParams::default())))
    });

    // Full sequential resolutions on the 3×3 grid under each tier —
    // same optimum, very different trees (the CI-gated pair).
    let nug9 = QapInstance::nugent_style(3, 3, 7);
    let (_, ub) = greedy_upper_bound(&nug9, &GreedyParams::default());
    for (label, bound) in [
        ("solve_screen", Bound::Screen),
        ("solve_gl", Bound::GilmoreLawler),
        ("solve_tiered", Bound::Tiered),
    ] {
        let problem = QapProblem::new(nug9.clone(), bound);
        group.bench_with_input(BenchmarkId::new(label, 9), &problem, |b, problem| {
            b.iter(|| black_box(solve(problem, Some(ub + 1))))
        });
    }

    // The flagship resolution end-to-end (GL tiers only: the screen
    // alone would take minutes here).
    let (_, ub12) = greedy_upper_bound(&nug12, &GreedyParams::default());
    for (label, bound) in [
        ("solve_gl", Bound::GilmoreLawler),
        ("solve_tiered", Bound::Tiered),
    ] {
        let problem12 = QapProblem::new(nug12.clone(), bound);
        group.bench_with_input(BenchmarkId::new(label, 12), &problem12, |b, problem| {
            b.iter(|| black_box(solve(problem, Some(ub12 + 1))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qap);
criterion_main!(benches);
