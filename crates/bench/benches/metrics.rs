//! The cost of being observed: the registry's hot-path primitives
//! against the raw atomic they wrap, plus the scrape-side operations a
//! live server pays per metrics query.
//!
//! Hot path (per recording site, ×1024 per iteration):
//!
//! * `atomic_add_x1024` — a bare relaxed `AtomicU64::fetch_add`, the
//!   floor any shared counter pays;
//! * `counter_inc_x1024` — the same add through a registered
//!   [`Counter`] handle (one `Arc` deref on top of the atomic);
//! * `histogram_observe_x1024` — a [`Histogram`] observation: linear
//!   bucket scan (9 latency bounds) plus three relaxed atomics.
//!
//! Scrape path (per query, against a 100-series registry shaped like a
//! live server's):
//!
//! * `snapshot_100_series` — consistent read of every cell;
//! * `render_text_100_series` — full Prometheus-style exposition.
//!
//! Honest finding, pinned by the checked-in `BENCH_metrics.json` and
//! gated in CI: a counter inc is at parity with the bare atomic
//! (~6.8 ns either way on the 1-core build box — the handle holds its
//! cell directly, so there is no name lookup after registration), and
//! a histogram observation is ~3.4× the atomic (~23 ns) — cheap
//! enough to leave every instrumentation site on unconditionally,
//! which is exactly what the runtime does. The scrape side is four
//! orders of magnitude dearer (~240 µs to render 100 series), which
//! is why it only runs when a `gridbnb_net::query_metrics` frame
//! arrives, never on the recording path.

use criterion::{criterion_group, criterion_main, Criterion};
use gridbnb_metrics::{latency_buckets_ns, MetricsRegistry};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

const OPS: u64 = 1024;

/// A registry shaped like a mid-campaign server's: 100 series across
/// counters, gauges, and bucketed histograms, several label sets each.
fn loaded_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for shard in 0..20 {
        let label = shard.to_string();
        let labels = [("shard", label.as_str())];
        registry
            .counter("gbnb_bench_contacts_total", &labels)
            .add(shard + 1);
        registry.gauge("gbnb_bench_live_intervals", &labels).set(64);
        let h = registry.histogram("gbnb_bench_service_ns", &labels, &latency_buckets_ns());
        for k in 0..12 {
            h.observe(1 << (k + 8));
        }
    }
    registry
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(10);

    let raw = AtomicU64::new(0);
    group.bench_function("atomic_add_x1024", |b| {
        b.iter(|| {
            // Discard each result, as `Counter::inc` does, so the two
            // loops compile to the same shape and the ratio is honest.
            for _ in 0..OPS {
                raw.fetch_add(1, Ordering::Relaxed);
            }
            black_box(raw.load(Ordering::Relaxed))
        })
    });

    let registry = MetricsRegistry::new();
    let counter = registry.counter("gbnb_bench_ops_total", &[]);
    group.bench_function("counter_inc_x1024", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                counter.inc();
            }
            black_box(counter.get())
        })
    });

    let histogram = registry.histogram("gbnb_bench_lat_ns", &[], &latency_buckets_ns());
    group.bench_function("histogram_observe_x1024", |b| {
        b.iter(|| {
            for i in 0..OPS {
                // Cycle the observations across the bucket range so the
                // linear scan pays its average depth, not its best case.
                histogram.observe(black_box(1u64 << (8 + (i % 16))));
            }
        })
    });

    let loaded = loaded_registry();
    group.bench_function("snapshot_100_series", |b| {
        b.iter(|| black_box(loaded.snapshot()))
    });
    group.bench_function("render_text_100_series", |b| {
        b.iter(|| black_box(loaded.render_text()))
    });

    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
