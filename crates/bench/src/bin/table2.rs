//! Regenerates **Table 2** — "The execution statistics": runs the
//! discrete-event simulation of the Ta056 campaign on the paper's pool
//! and prints the same rows next to the paper's values.
//!
//! The workload is scaled down (default 2·10⁹ node visits vs the real
//! 6.5·10¹²; override with `GRIDBNB_NODES`), and the pool by
//! `GRIDBNB_SCALE` (default 10). Absolute numbers scale accordingly;
//! the *shape* — worker exploitation near 100 %, farmer load in low
//! percent, redundancy below 1 % — is the reproduction target.
//!
//! ```sh
//! cargo run --release -p gridbnb-bench --bin table2
//! GRIDBNB_SCALE=1 GRIDBNB_NODES=5e10 cargo run --release -p gridbnb-bench --bin table2
//! ```

use gridbnb_bench::{human_cpu, human_duration, nodes_from_env, pct, scale_from_env, ta056_sim};
use gridbnb_grid::simulate;

fn main() {
    let scale = scale_from_env();
    let nodes = nodes_from_env();
    let (config, workload) = ta056_sim(scale, nodes, 2006);
    eprintln!(
        "simulating {} processors, {:.1e} node visits ...",
        config.pool.total_processors(),
        nodes
    );
    let report = simulate(&config, &workload);
    assert!(report.completed, "simulation hit the safety cap");

    println!("Table 2: The execution statistics");
    println!(
        "(simulated pool 1/{scale} of the paper's, workload {:.1e} of 6.5e12 nodes)",
        nodes
    );
    println!("{:-<72}", "");
    println!("{:<34} {:>16} {:>18}", "", "measured (sim)", "paper");
    println!("{:-<72}", "");
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "Running wall clock time",
            human_duration(report.wall_s),
            "25 days",
        ),
        ("Total cpu time", human_cpu(report.cpu_s), "22 years"),
        (
            "Average number of workers",
            format!("{:.0}", report.avg_workers),
            "328",
        ),
        (
            "Maximum number of workers",
            report.max_workers.to_string(),
            "1,195",
        ),
        (
            "Worker CPU exploitation",
            pct(report.worker_exploitation),
            "97%",
        ),
        (
            "Coordinator CPU exploitation",
            pct(report.farmer_exploitation),
            "1.7%",
        ),
        (
            "Checkpoint operations",
            (report.checkpoint_ops + report.farmer_checkpoints).to_string(),
            "4,094,176",
        ),
        (
            "Work allocations",
            report.work_allocations.to_string(),
            "129,958",
        ),
        (
            "Explored nodes",
            format!("{:.4e}", report.explored_nodes),
            "6.50874e+12",
        ),
        ("Redundant nodes", pct(report.redundant_ratio), "0.39%"),
    ];
    for (label, measured, paper) in rows {
        println!("{label:<34} {measured:>16} {paper:>18}");
    }
    println!("{:-<72}", "");
    println!(
        "shape checks: worker >> farmer exploitation: {} ; redundancy < 1%: {}",
        report.worker_exploitation > 10.0 * report.farmer_exploitation,
        report.redundant_ratio < 0.01,
    );
}
