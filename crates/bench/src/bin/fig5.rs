//! Regenerates **Figure 5** — "An example with B&B processes and a
//! coordinator": three worker processes exploring intervals while the
//! coordinator's INTERVALS set tracks the copies, captured live from
//! the real coordinator.
//!
//! ```sh
//! cargo run -p gridbnb-bench --bin fig5
//! ```

use gridbnb_core::{Coordinator, CoordinatorConfig, Interval, Request, Response, UBig, WorkerId};

fn show(coordinator: &Coordinator, caption: &str) {
    println!("\n{caption}");
    println!("  SOLUTION = {:?}", coordinator.solution().map(|s| s.cost));
    println!("  INTERVALS (cardinality {}):", coordinator.cardinality());
    for entry in coordinator.entries() {
        let holders: Vec<String> = entry.holders.iter().map(|h| h.worker.to_string()).collect();
        let holders = if holders.is_empty() {
            "unassigned".to_string()
        } else {
            holders.join("+")
        };
        println!("    {:<24} held by {}", entry.interval.to_string(), holders);
    }
}

fn main() {
    println!("Figure 5: three B&B processes and a coordinator (8-job tree, 40320 leaves)");
    let root = Interval::new(UBig::zero(), UBig::factorial(8));
    let mut c = Coordinator::new(
        root,
        CoordinatorConfig {
            duplication_threshold: UBig::from(64u64),
            ..CoordinatorConfig::default()
        },
    );
    show(&c, "initially: the root range, unassigned");

    for (w, power) in [(1u64, 100u64), (2, 100), (3, 50)] {
        let r = c.handle(
            Request::Join {
                worker: WorkerId(w),
                power,
            },
            w,
        );
        if let Response::Work { interval, .. } = r {
            println!("\nworker w{w} (power {power}) joins and receives {interval}");
        }
        show(&c, "after the join:");
    }

    // The workers progress; w2 finishes its interval and asks again —
    // leaving, like the figure, three explored-in-progress intervals and
    // one waiting for a process.
    for (w, a) in [(1u64, 9_000u64), (3, 16_000)] {
        let copy_end = c
            .entries()
            .iter()
            .find(|e| e.holders.iter().any(|h| h.worker == WorkerId(w)))
            .map(|e| e.interval.end().clone())
            .unwrap();
        c.handle(
            Request::Update {
                worker: WorkerId(w),
                interval: Interval::new(UBig::from(a), copy_end),
            },
            10 + w,
        );
    }
    show(&c, "after two progress updates (begins advanced):");

    c.handle(
        Request::Leave {
            worker: WorkerId(2),
        },
        20,
    );
    show(
        &c,
        "after w2's host is reclaimed (its interval waits for a process):",
    );

    let r = c.handle(
        Request::ReportSolution {
            worker: WorkerId(1),
            solution: gridbnb_core::Solution::new(618, vec![0; 8]),
        },
        21,
    );
    if let Response::SolutionAck { cutoff } = r {
        println!("\nw1 reports a solution of cost 618; global cutoff is now {cutoff:?}");
    }
    show(
        &c,
        "final state (cf. Figure 5: 3 intervals being explored, 1 waiting):",
    );
}
