//! Regenerates **Figure 7** — "The evolution of the number of available
//! processors": runs the campaign simulation and plots the online-host
//! time series (CSV on stdout after the plot, for external tooling).
//!
//! ```sh
//! cargo run --release -p gridbnb-bench --bin fig7
//! ```

use gridbnb_bench::{nodes_from_env, scale_from_env, ta056_sim};
use gridbnb_grid::simulate;

fn main() {
    let scale = scale_from_env();
    let (config, workload) = ta056_sim(scale, nodes_from_env(), 2006);
    eprintln!(
        "simulating {} processors ...",
        config.pool.total_processors()
    );
    let report = simulate(&config, &workload);

    println!("Figure 7: the evolution of the number of available processors");
    println!("(pool scaled 1/{scale}; diurnal cycle stealing on campus clusters)\n");
    let max = report
        .samples
        .iter()
        .map(|s| s.online)
        .max()
        .unwrap_or(1)
        .max(1);
    let bins = 40usize;
    for chunk in report
        .samples
        .chunks(report.samples.len().div_ceil(bins).max(1))
    {
        let t = chunk[0].t_s / 3_600.0;
        let online = chunk.iter().map(|s| s.online).sum::<usize>() / chunk.len();
        let bar = "█".repeat(online * 48 / max);
        println!("{t:>8.1} h │{bar:<48}│ {online}");
    }
    println!(
        "\npeak {} hosts, average {:.0} (paper: peak 1,195 / average 328 on the full pool)",
        report.max_workers, report.avg_workers
    );

    println!("\n# CSV: t_seconds,online,exploited");
    for s in &report.samples {
        println!("{:.0},{},{}", s.t_s, s.online, s.exploited);
    }
}
