//! Regenerates **Figures 1–4** — node weights, numbers, ranges, and the
//! fold/unfold correspondence, on the small permutation trees the paper
//! illustrates.
//!
//! ```sh
//! cargo run -p gridbnb-bench --bin figs_coding
//! ```

use gridbnb_coding::{fold, unfold, NodePath, TreeShape};

fn main() {
    let shape = TreeShape::permutation(3);

    println!("Figure 1: weight of a node (permutation tree over 3 elements)");
    for depth in 0..=shape.leaf_depth() {
        println!(
            "  depth {depth}: weight {} = {}!",
            shape.weight_at(depth),
            shape.leaf_depth() - depth
        );
    }

    println!("\nFigure 2: node numbers (DFS order == number order)");
    print_tree(&shape, &NodePath::root(), 0);

    println!("\nFigure 3: node ranges [number, number+weight)");
    for rank in 0..3 {
        let child = NodePath::root().child(&shape, rank);
        println!("  node {}: range {}", child, child.range(&shape));
        for r2 in 0..2 {
            let g = child.child(&shape, r2);
            println!("    node {}: range {}", g, g.range(&shape));
        }
    }

    println!("\nFigure 4: fold / unfold between an active list and an interval");
    let frontier = vec![
        NodePath::from_ranks(vec![0, 1, 0]), // leaf number 1
        NodePath::from_ranks(vec![1]),       // subtree [2,4)
        NodePath::from_ranks(vec![2]),       // subtree [4,6)
    ];
    let names: Vec<String> = frontier.iter().map(|n| n.to_string()).collect();
    let interval = fold(&shape, &frontier).expect("DFS frontier");
    println!("  active list {names:?}");
    println!(
        "  fold   -> interval {interval} ({} bytes on the wire)",
        interval.byte_len()
    );
    let recovered = unfold(&shape, &interval);
    let rec_names: Vec<String> = recovered.iter().map(|n| n.to_string()).collect();
    println!("  unfold -> active list {rec_names:?}");
    assert_eq!(recovered, frontier, "unfold inverts fold");

    println!("\nsame operators at Ta056 scale (50! ≈ 3.04e64):");
    let big = TreeShape::permutation(50);
    let third = big.total_leaves().div_rem_u64(3).0;
    let interval = gridbnb_coding::Interval::new(third.clone(), third.mul_u64(2));
    let cover = unfold(&big, &interval);
    println!(
        "  interval {} bytes <-> minimal active list of {} nodes",
        interval.byte_len(),
        cover.len()
    );
    assert_eq!(fold(&big, &cover).unwrap(), interval);
}

fn print_tree(shape: &TreeShape, node: &NodePath, indent: usize) {
    println!(
        "{:indent$}node {}: number {}",
        "",
        node,
        node.number(shape),
        indent = indent
    );
    if !node.is_leaf(shape) {
        for rank in 0..shape.arity_at(node.depth()) {
            print_tree(shape, &node.child(shape, rank), indent + 2);
        }
    }
}
