//! Regenerates **Figure 6** — "The experimental nation-wide grid": the
//! topology of the 9 clusters and the latency classes of the
//! interconnects.
//!
//! ```sh
//! cargo run -p gridbnb-bench --bin fig6
//! ```

use gridbnb_grid::{paper_pool, LatencyModel};

fn main() {
    let pool = paper_pool();
    let latency = LatencyModel::default();
    println!("Figure 6: the experimental nation-wide grid\n");
    println!("                 RENATER 2.5 Gbit national backbone");
    println!("   ┌─────────┬─────────┬────┴────┬─────────┬─────────┐");
    let g5k: Vec<&str> = pool
        .clusters
        .iter()
        .filter(|c| c.site == "Grid5000")
        .map(|c| c.name)
        .collect();
    println!("   {}", g5k.join("   "));
    println!("                         │");
    println!("                  Lille campus (farmer)");
    println!("   ┌─────────────────────┼─────────────────────┐");
    let campus: Vec<&str> = pool
        .clusters
        .iter()
        .filter(|c| c.site == "Lille1")
        .map(|c| c.name)
        .collect();
    println!("   {}", campus.join("        "));

    println!("\ncluster inventory and farmer-path latency:");
    println!("{:-<78}", "");
    println!(
        "{:<16} {:<10} {:<11} {:>6} {:>10} {:>14}",
        "cluster", "site", "class", "procs", "GHz total", "latency to farmer"
    );
    println!("{:-<78}", "");
    for (i, c) in pool.clusters.iter().enumerate() {
        println!(
            "{:<16} {:<10} {:<11} {:>6} {:>10.0} {:>11.1} ms",
            c.name,
            c.site,
            format!("{:?}", c.kind),
            c.processors(),
            c.total_ghz(),
            latency.to_farmer_ns(&pool, i) as f64 / 1e6,
        );
    }
    println!("{:-<78}", "");
    println!(
        "{:<16} {:<10} {:<11} {:>6} {:>10.0}",
        "total",
        "",
        "",
        pool.total_processors(),
        pool.total_ghz()
    );
}
