//! Regenerates **Table 1** — "The computational pool": the 1889
//! processors of the 9-cluster experimental grid.
//!
//! ```sh
//! cargo run -p gridbnb-bench --bin table1
//! ```

use gridbnb_grid::paper_pool;

fn main() {
    let pool = paper_pool();
    println!("Table 1: The computational pool");
    println!("{:-<56}", "");
    println!(
        "{:<10} {:>6}  {:<22} {:>6}",
        "CPU", "(GHz)", "Domain", "No."
    );
    println!("{:-<56}", "");
    for cluster in &pool.clusters {
        let domain = if cluster.site == "Grid5000" {
            format!("{}(Grid5000)", cluster.name)
        } else {
            format!("{}({})", cluster.name, cluster.site)
        };
        for (k, group) in cluster.groups.iter().enumerate() {
            let label = if k == cluster.groups.len() / 2 {
                &domain
            } else {
                ""
            };
            let count = if cluster.site == "Grid5000" {
                format!("2x{}", group.processors / 2)
            } else {
                group.processors.to_string()
            };
            println!(
                "{:<10} {:>6.2}  {:<22} {:>6}",
                group.model, group.ghz, label, count
            );
        }
        println!("{:-<56}", "");
    }
    println!(
        "{:<10} {:>6}  {:<22} {:>6}",
        "Total",
        "",
        "",
        pool.total_processors()
    );
    println!();
    println!(
        "aggregate power: {:.0} GHz over {} administrative domains",
        pool.total_ghz(),
        pool.clusters.len()
    );
    assert_eq!(pool.total_processors(), 1889, "paper total");
}
