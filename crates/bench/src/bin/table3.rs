//! Regenerates **Table 3** — "The comparison of the most known
//! resolutions": the historical ranking of grid-scale exact
//! resolutions, with our simulated campaign appended for context.
//!
//! ```sh
//! cargo run --release -p gridbnb-bench --bin table3
//! ```

use gridbnb_bench::{human_cpu, nodes_from_env, scale_from_env, ta056_sim};
use gridbnb_grid::simulate;

struct Row {
    order: &'static str,
    problem: &'static str,
    instance: &'static str,
    description: &'static str,
    power: &'static str,
}

fn main() {
    // The paper's historical data (Table 3).
    let rows = [
        Row {
            order: "1",
            problem: "TSP",
            instance: "Sw24978",
            description: "24,978 towns of Sweden",
            power: "84 years/Intel Xeon 2.8 GHz",
        },
        Row {
            order: "2",
            problem: "Flow-Shop",
            instance: "Ta056",
            description: "50 jobs on 20 machines",
            power: "22 years",
        },
        Row {
            order: "3",
            problem: "TSP",
            instance: "D15112",
            description: "15,112 towns of Germany",
            power: "22 years/Compaq Alpha 500 MHz",
        },
        Row {
            order: "4",
            problem: "QAP",
            instance: "Nug30",
            description: "",
            power: "7 years/HP-C3000 400MHz",
        },
        Row {
            order: "5",
            problem: "TSP",
            instance: "Usa13509",
            description: "13,509 towns of USA",
            power: "4 years",
        },
    ];
    println!("Table 3: The comparison of the most known resolutions");
    println!("{:-<100}", "");
    println!(
        "{:<6} {:<10} {:<10} {:<26} {:<40}",
        "Order", "Problem", "Instance", "Description", "Computation power"
    );
    println!("{:-<100}", "");
    for r in &rows {
        println!(
            "{:<6} {:<10} {:<10} {:<26} {:<40}",
            r.order, r.problem, r.instance, r.description, r.power
        );
    }
    println!("{:-<100}", "");

    // Our own (simulated, scaled) campaign for context.
    let scale = scale_from_env();
    let (config, workload) = ta056_sim(scale, nodes_from_env(), 3);
    eprintln!("running the scaled simulated campaign for the comparison row ...");
    let report = simulate(&config, &workload);
    println!(
        "{:<6} {:<10} {:<10} {:<26} {:<40}",
        "(sim)",
        "Flow-Shop",
        "Ta056*",
        format!("1/{scale} pool, scaled workload"),
        human_cpu(report.cpu_s),
    );
    println!("\n* this reproduction's discrete-event simulation, not a physical resolution.");
}
