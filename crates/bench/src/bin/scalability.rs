//! Scalability ablation (supports the paper's §5.3 efficiency claim and
//! its conclusion on the farmer-bottleneck limit): sweeps the pool size
//! and reports worker/farmer exploitation. The paper's headline numbers
//! — 97 % worker, 1.7 % farmer — put the farmer bottleneck far above
//! 1900 processors; the sweep locates it.
//!
//! ```sh
//! cargo run --release -p gridbnb-bench --bin scalability
//! ```

use gridbnb_bench::ta056_sim;
use gridbnb_grid::{simulate, VolatilityModel};

fn main() {
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "procs", "wall(h)", "worker CPU%", "farmer CPU%", "allocations", "checkpoints"
    );
    // Scale divisors chosen to land near 10/50/100/200/500/1000/1889 procs.
    for scale in [189, 38, 19, 9, 4, 2, 1] {
        let (mut config, workload) = ta056_sim(scale, 4e8, 7);
        // Stable hosts isolate the pure protocol overhead from churn.
        config.volatility = VolatilityModel {
            participation: 1.0,
            rampup_s: 300.0,
            ..VolatilityModel::default()
        };
        let report = simulate(&config, &workload);
        println!(
            "{:>6} {:>8.2} {:>11.1}% {:>11.2}% {:>12} {:>12}",
            config.pool.total_processors(),
            report.wall_s / 3600.0,
            report.worker_exploitation * 100.0,
            report.farmer_exploitation * 100.0,
            report.work_allocations,
            report.checkpoint_ops,
        );
    }
    println!("\npaper reference point: ~1900 procs, 97% worker / 1.7% farmer.");
    println!("worker% falls and farmer% rises as the pool outgrows the workload —");
    println!("the farmer-bottleneck limit the paper's P2P future work addresses.");
}
