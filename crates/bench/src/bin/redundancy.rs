//! Duplication-threshold ablation (paper §4.2 and the Table 2
//! "Redundant nodes < 0.4 %" row): sweeps the duplication threshold and
//! reports the redundancy/allocation trade-off. Small thresholds mean
//! more splitting (fine-grained, no redundancy but more coordination);
//! large thresholds duplicate aggressively (robust against stragglers
//! and failures, at the price of redundant exploration).
//!
//! ```sh
//! cargo run --release -p gridbnb-bench --bin redundancy
//! ```

use gridbnb_bench::ta056_sim;
use gridbnb_bigint::UBig;
use gridbnb_grid::simulate;

fn main() {
    println!(
        "{:>22} {:>10} {:>12} {:>13} {:>12}",
        "threshold (50!/x)", "wall(h)", "redundant%", "duplications", "allocations"
    );
    for denom in [100u64, 10_000, 1_000_000, 100_000_000, 10_000_000_000] {
        let (mut config, workload) = ta056_sim(40, 3e9, 11);
        config.coordinator.duplication_threshold =
            UBig::factorial(50).div_rem_u64(denom).0.max(UBig::one());
        let report = simulate(&config, &workload);
        println!(
            "{:>22} {:>10.2} {:>11.3}% {:>13} {:>12}",
            format!("50!/{denom}"),
            report.wall_s / 3600.0,
            report.redundant_ratio * 100.0,
            report.coordinator_stats.duplications,
            report.work_allocations,
        );
    }
    println!("\npaper operating point: redundancy 0.39 % — large thresholds");
    println!("duplicate more (robustness), small ones split more (coordination).");
}
