//! Shared harness utilities for the table/figure regenerators.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the index). They share the simulation
//! presets defined here so that `table2`, `fig7`, `scalability` and
//! `redundancy` are views of the same experimental setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gridbnb_bigint::UBig;
use gridbnb_core::CoordinatorConfig;
use gridbnb_grid::{paper_pool, SimConfig, WorkloadModel};

/// Scale divisor for simulated pools, configurable via the
/// `GRIDBNB_SCALE` environment variable (default 10: ~190 processors;
/// use 1 for the full 1889-processor pool — slower but closest to the
/// paper).
pub fn scale_from_env() -> usize {
    std::env::var("GRIDBNB_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(10)
}

/// Synthetic node visits for the Table 2 workload, configurable via
/// `GRIDBNB_NODES` (default 2·10¹⁰; the paper's run visited 6.5·10¹²).
pub fn nodes_from_env() -> f64 {
    std::env::var("GRIDBNB_NODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &f64| n > 0.0)
        .unwrap_or(2e10)
}

/// The standard Ta056-shaped simulation: the paper's pool (scaled),
/// an irregular workload over the 50! interval, 30-minute farmer
/// checkpoints, and the duplication threshold at one ten-millionth of
/// the space.
pub fn ta056_sim(scale: usize, total_nodes: f64, seed: u64) -> (SimConfig, WorkloadModel) {
    let pool = paper_pool().scaled_down(scale);
    let workload = WorkloadModel::irregular(UBig::factorial(50), total_nodes, 1024, 2.5, seed);
    let mut config = SimConfig::new(pool);
    config.seed = seed;
    config.coordinator = CoordinatorConfig {
        duplication_threshold: UBig::factorial(50).div_rem_u64(10_000_000).0,
        holder_timeout_ns: 15 * 60 * 1_000_000_000,
        initial_upper_bound: Some(3680),
    };
    config.sample_period_s = 1_800.0;
    // The paper's pool was shared infrastructure: of 1889 listed
    // processors, the run averaged 328. Participation below 1 plus the
    // campus churn reproduces that occupancy profile.
    config.volatility.participation = 0.65;
    (config, workload)
}

/// Renders a ratio as a percent string like `97.3 %`.
pub fn pct(x: f64) -> String {
    format!("{:.2} %", x * 100.0)
}

/// Renders seconds as a human duration (`25.3 days`, `4.1 h`, …).
pub fn human_duration(seconds: f64) -> String {
    if seconds >= 2.0 * 86_400.0 {
        format!("{:.1} days", seconds / 86_400.0)
    } else if seconds >= 2.0 * 3_600.0 {
        format!("{:.1} h", seconds / 3_600.0)
    } else if seconds >= 120.0 {
        format!("{:.1} min", seconds / 60.0)
    } else {
        format!("{seconds:.1} s")
    }
}

/// Renders seconds of cumulative CPU as years when large.
pub fn human_cpu(seconds: f64) -> String {
    let years = seconds / (365.25 * 86_400.0);
    if years >= 0.1 {
        format!("{years:.2} years")
    } else {
        human_duration(seconds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.973), "97.30 %");
        assert!(human_duration(3.0 * 86_400.0).contains("days"));
        assert!(human_duration(3.0 * 3_600.0).contains("h"));
        assert!(human_duration(300.0).contains("min"));
        assert!(human_duration(10.0).contains("s"));
        assert!(human_cpu(22.0 * 365.25 * 86_400.0).contains("years"));
    }

    #[test]
    fn presets_have_paper_knobs() {
        let (config, workload) = ta056_sim(40, 1e8, 1);
        assert_eq!(config.farmer_checkpoint_period_s, 30.0 * 60.0);
        assert_eq!(config.coordinator.initial_upper_bound, Some(3680));
        assert_eq!(*workload.root_length(), UBig::factorial(50));
    }
}
