//! Crash-and-restart end-to-end: a durable [`NetServer`] killed in the
//! middle of a live TCP campaign, restarted on the same storage
//! backend, must recover exactly the interval mass the killed process
//! was holding — zero lost, zero invented — and a rejoining fleet must
//! finish the optimality proof to the same optimum the sequential
//! engine computes. Exercised on flowshop (directory-per-shard backend)
//! and QAP (flat-file backend).

use gridbnb_core::runtime::{ChaosConfig, CrashPlan, DurabilityPolicy, RuntimeConfig};
use gridbnb_core::{
    CoordinatorConfig, FileBackend, Problem, ShardDirBackend, StorageBackend, UBig,
};
use gridbnb_engine::solve;
use gridbnb_flowshop::bounds::PairSelection;
use gridbnb_flowshop::{taillard, BoundMode, FlowshopProblem};
use gridbnb_net::{
    query_metrics, query_status, run_workers_over_socket, ClientMode, ClientOptions, NetServer,
    ServerConfig, ServerHandle, ServerReport,
};
use gridbnb_qap::greedy::{greedy_upper_bound, GreedyParams};
use gridbnb_qap::{Bound, QapInstance, QapProblem};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn flowshop9() -> FlowshopProblem {
    FlowshopProblem::new(
        taillard::generate(9, 5, 20_060_707),
        BoundMode::Johnson(PairSelection::All),
    )
}

fn campaign_config(workers: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(workers);
    config.poll_nodes = 1_000;
    config
}

/// A fresh scratch directory under the system temp dir, unique per
/// test-process and tag.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridbnb-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_server<P: Problem>(
    problem: &P,
    config: ServerConfig,
) -> (SocketAddr, ServerHandle, JoinHandle<ServerReport>) {
    let root = problem.shape().root_range();
    let server = NetServer::bind("127.0.0.1:0", root, config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle, thread)
}

/// Runs the full kill/restart cycle for `problem` on `backend`:
///
/// 1. A durable server starts a campaign; fleet A crashes itself early
///    and the server is stopped mid-flight (its WAL tail is the crash
///    image — a stopped, non-terminated server must NOT compact).
/// 2. A second server on the *same* backend recovers, and its
///    [`RecoveryStats::recovered_length`] must equal the killed
///    server's `remaining` exactly.
/// 3. Fleet B finishes the proof to `expected`.
fn kill_and_restart<P: Problem>(
    problem: &P,
    backend: Arc<dyn StorageBackend>,
    coordinator: CoordinatorConfig,
    expected: u64,
) {
    let durable = |shards: usize| ServerConfig {
        shards,
        coordinator: coordinator.clone(),
        durability: Some(DurabilityPolicy {
            backend: Arc::clone(&backend),
            compact_every: Duration::from_millis(20),
        }),
        ..ServerConfig::default()
    };

    // Phase 1: fresh durable campaign, fleet A crashes almost at once.
    let (addr, handle, server) = spawn_server(problem, durable(2));
    let mut config_a = campaign_config(2);
    config_a.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 0,
                after_nodes: 300,
                rejoin: false,
            },
            CrashPlan {
                worker_index: 1,
                after_nodes: 300,
                rejoin: false,
            },
        ],
    });
    let reports_a = run_workers_over_socket(
        problem,
        addr,
        &config_a,
        0,
        ClientMode::PerConnection,
        &ClientOptions::default(),
    )
    .expect("fleet A");
    assert!(
        reports_a.iter().any(|r| r.crashes > 0),
        "fleet A must actually crash"
    );
    let mid = query_status(addr, &ClientOptions::default()).expect("status");
    assert!(!mid.terminated, "the campaign must still be in flight");

    // The live durable server exposes its WAL families over the same
    // TCP port as everything else.
    let scrape = query_metrics(addr, &ClientOptions::default()).expect("scrape");
    for family in [
        "gbnb_wal_appends_total",
        "gbnb_wal_append_bytes_total",
        "gbnb_wal_generation",
    ] {
        assert!(scrape.contains(family), "live scrape is missing {family}");
    }

    // Kill the server mid-campaign.
    handle.stop();
    let killed = server.join().expect("killed server thread");
    assert!(!killed.terminated, "stop() must not require termination");
    assert!(
        killed.remaining > UBig::zero(),
        "the killed server must leave unexplored work behind"
    );
    assert!(
        killed.recovery.is_none(),
        "phase 1 started on an empty backend"
    );

    // Phase 2: restart on the same backend. Note the shard count in the
    // config is different on purpose — the recovered log is
    // authoritative about sharding.
    let (addr, _handle, server) = spawn_server(problem, durable(4));
    let reports_b = run_workers_over_socket(
        problem,
        addr,
        &campaign_config(4),
        1_000,
        ClientMode::Multiplexed,
        &ClientOptions::default(),
    )
    .expect("fleet B");
    assert!(reports_b.iter().all(|r| r.transport_failure.is_none()));

    let restarted = server.join().expect("restarted server thread");
    let recovery = restarted
        .recovery
        .expect("a restart on a populated backend must report recovery");
    assert_eq!(
        recovery.recovered_length, killed.remaining,
        "recovered interval mass must match the killed server exactly"
    );
    assert!(restarted.terminated, "fleet B must finish the tree");
    assert_eq!(
        restarted.proven_optimum,
        Some(expected),
        "the resumed campaign must prove the same optimum"
    );
}

/// Flowshop campaign over a directory-per-shard backend.
#[test]
fn killed_flowshop_server_resumes_from_sharded_dirs() {
    let problem = flowshop9();
    let expected = solve(&problem, None).best_cost.expect("finite optimum");
    let dir = scratch_dir("flowshop");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let backend: Arc<dyn StorageBackend> =
        Arc::new(ShardDirBackend::new(&dir).expect("shard-dir backend"));
    kill_and_restart(&problem, backend, CoordinatorConfig::default(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// QAP campaign (heuristic-seeded, like the paper's nugent runs) over a
/// flat-file backend.
#[test]
fn killed_qap_server_resumes_from_flat_files() {
    let instance = QapInstance::nugent_style(3, 3, 2007);
    let (_, ub) = greedy_upper_bound(&instance, &GreedyParams::default());
    let problem = QapProblem::new(instance, Bound::GilmoreLawler);
    let expected = solve(&problem, Some(ub + 1)).best_cost.expect("optimum");
    let coordinator = CoordinatorConfig {
        initial_upper_bound: Some(ub + 1),
        ..CoordinatorConfig::default()
    };
    let dir = scratch_dir("qap");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let backend: Arc<dyn StorageBackend> = Arc::new(FileBackend::new(&dir).expect("file backend"));
    kill_and_restart(&problem, backend, coordinator, expected);
    let _ = std::fs::remove_dir_all(&dir);
}
