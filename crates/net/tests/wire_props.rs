//! Property tests pinning the wire codec: every protocol variant
//! round-trips exactly through frame bytes (including ta056-scale big
//! integers and *empty* intervals), and no corruption of a valid frame
//! — bit flips, truncation, hostile lengths — can make the decoder
//! panic or over-allocate.

use gridbnb_core::{
    Interval, ProtocolError, Request, Response, Solution, TransportError, UBig, WorkerId,
};
use gridbnb_net::wire::{
    self, frame_request_bundle, frame_response_bundle, frame_status, parse_request_bundle,
    parse_response_bundle, parse_status, read_frame, write_frame, RunStatus, HEADER_LEN,
};
use proptest::prelude::*;

/// Symbolic request: (tag, worker, power/cost, interval endpoints,
/// rank seed, factorial scale).
type ReqStep = (u8, u8, u16, (u64, u64), u8, u8);
/// Symbolic response: (tag, interval endpoints, cutoff option seed,
/// rank seed, factorial scale).
type RespStep = (u8, (u64, u64), u16, u8, u8);

/// An interval whose endpoints are offset from `scale!` — exercises the
/// multi-limb decimal path the campaign actually runs at (50! ≈ 3·10⁶⁴)
/// as well as tiny and *empty* intervals (a == b).
fn interval_of((a, b): (u64, u64), scale: u8) -> Interval {
    let base = UBig::factorial(u32::from(scale % 51));
    Interval::new(&base + &UBig::from(a.min(b)), &base + &UBig::from(a.max(b)))
}

fn solution_of(cost: u16, rank_seed: u8) -> Solution {
    let ranks: Vec<u64> = (0..u64::from(rank_seed % 12))
        .map(|i| i * 7 + u64::from(rank_seed))
        .collect();
    Solution::new(u64::from(cost), ranks)
}

fn request_of((tag, worker, power, endpoints, rank_seed, scale): ReqStep) -> Request {
    let worker = WorkerId(u64::from(worker));
    match tag % 6 {
        0 => Request::Join {
            worker,
            power: u64::from(power),
        },
        1 => Request::RequestWork {
            worker,
            power: u64::from(power),
        },
        2 => Request::Update {
            worker,
            interval: interval_of(endpoints, scale),
        },
        3 => Request::ReportSolution {
            worker,
            solution: solution_of(power, rank_seed),
        },
        4 => Request::UpdateAndReport {
            worker,
            interval: interval_of(endpoints, scale),
            solution: (rank_seed % 2 == 0).then(|| solution_of(power, rank_seed)),
        },
        _ => Request::Leave { worker },
    }
}

fn response_of((tag, endpoints, cutoff, _rank_seed, scale): RespStep) -> Response {
    let cutoff_opt = (cutoff % 3 != 0).then_some(u64::from(cutoff));
    match tag % 6 {
        0 => Response::Work {
            interval: interval_of(endpoints, scale),
            cutoff: cutoff_opt,
        },
        1 => Response::UpdateAck {
            interval: interval_of(endpoints, scale),
            cutoff: cutoff_opt,
        },
        2 => Response::SolutionAck { cutoff: cutoff_opt },
        3 => Response::Terminate,
        4 => Response::Retry,
        _ => Response::LeaveAck,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Any request bundle — every variant, mixed, empty intervals, 50!-
    /// scale endpoints — survives encode → byte stream → decode intact.
    #[test]
    fn request_bundles_round_trip(
        steps in proptest::collection::vec(
            (0u8..6, 0u8..20, 1u16..5000, (0u64..5000, 0u64..5000), 0u8..255, 0u8..255),
            0..12,
        ),
        seq in 0u64..u64::MAX,
    ) {
        let requests: Vec<Request> = steps.into_iter().map(request_of).collect();
        let frame = frame_request_bundle(seq, &requests);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        let back = read_frame(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(back.seq, seq);
        prop_assert_eq!(parse_request_bundle(&back).unwrap(), requests);
    }

    /// Same for response bundles.
    #[test]
    fn response_bundles_round_trip(
        steps in proptest::collection::vec(
            (0u8..6, (0u64..5000, 0u64..5000), 0u16..5000, 0u8..255, 0u8..255),
            0..12,
        ),
        seq in 0u64..u64::MAX,
    ) {
        let responses: Vec<Response> = steps.into_iter().map(response_of).collect();
        let frame = frame_response_bundle(seq, &responses);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        let back = read_frame(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(parse_response_bundle(&back).unwrap(), responses);
    }

    /// And for status frames.
    #[test]
    fn status_round_trips(
        terminated in 0u8..2,
        cutoff in 0u16..5000,
        rank_seed in 0u8..255,
        counters in (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX),
    ) {
        let status = RunStatus {
            terminated: terminated == 1,
            cutoff: (cutoff % 3 != 0).then_some(u64::from(cutoff)),
            solution: (rank_seed % 2 == 0).then(|| solution_of(cutoff, rank_seed)),
            cardinality: counters.0,
            contacts: counters.1,
            steals: counters.2,
        };
        let frame = frame_status(7, &status);
        prop_assert_eq!(parse_status(&frame).unwrap(), status);
    }

    /// Corrupting one byte of a valid frame never panics the decoder
    /// and never silently passes truncation: header corruption is a
    /// typed protocol or I/O error; payload corruption either errors or
    /// decodes to *some* value (flipping a digit of a decimal endpoint
    /// legitimately yields a different interval) — but never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        steps in proptest::collection::vec(
            (0u8..6, 0u8..20, 1u16..5000, (0u64..5000, 0u64..5000), 0u8..255, 0u8..255),
            1..6,
        ),
        position_seed in 0u64..u64::MAX,
        xor in 1u8..255,
    ) {
        let requests: Vec<Request> = steps.into_iter().map(request_of).collect();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame_request_bundle(3, &requests)).unwrap();
        let position = (position_seed % bytes.len() as u64) as usize;
        bytes[position] ^= xor;
        // Must return — Ok or Err — without panicking.
        if let Ok(frame) = read_frame(&mut bytes.as_slice()) {
            let _ = parse_request_bundle(&frame);
        }
    }

    /// Truncating a valid frame anywhere is always detected: either a
    /// clean `Closed` (cut at the very first byte) or a hard error —
    /// never a successful decode of a shorter bundle.
    #[test]
    fn truncation_is_always_detected(
        steps in proptest::collection::vec(
            (0u8..6, 0u8..20, 1u16..5000, (0u64..5000, 0u64..5000), 0u8..255, 0u8..255),
            1..6,
        ),
        cut_seed in 0u64..u64::MAX,
    ) {
        let requests: Vec<Request> = steps.into_iter().map(request_of).collect();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame_request_bundle(3, &requests)).unwrap();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        match read_frame(&mut bytes[..cut].as_ref()) {
            Err(TransportError::Closed) => prop_assert_eq!(cut, 0, "Closed only at a frame boundary"),
            Err(_) => {}
            Ok(frame) => prop_assert!(
                false,
                "truncation at {cut}/{} decoded a frame of {} payload bytes",
                bytes.len(),
                frame.payload.len()
            ),
        }
    }
}

/// A hostile declared length must be rejected before any allocation —
/// the header says 4 GiB-ish, the decoder answers `Oversized` without
/// trying to reserve it.
#[test]
fn hostile_payload_length_is_rejected_unallocated() {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &wire::frame_query(1)).unwrap();
    bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        read_frame(&mut bytes.as_slice()),
        Err(TransportError::Protocol(ProtocolError::Oversized { .. }))
    ));
}

/// A solution whose rank count claims more entries than the payload
/// could hold is rejected before the allocation, not after an OOM.
#[test]
fn hostile_rank_count_is_rejected() {
    let solution = Solution::new(9, vec![1, 2, 3]);
    let frame = frame_request_bundle(
        1,
        &[Request::ReportSolution {
            worker: WorkerId(1),
            solution,
        }],
    );
    let mut payload = frame.payload.clone();
    // The rank count sits after: count u32 | tag u8 | worker u64 | cost
    // u64 — patch it to a number the 3-rank payload cannot contain.
    let count_at = 4 + 1 + 8 + 8;
    payload[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let hostile = wire::Frame { payload, ..frame };
    assert!(parse_request_bundle(&hostile).is_err());
}

/// The frame header is exactly the documented 20 bytes — a wire-format
/// freeze, so independently-built peers agree.
#[test]
fn header_layout_is_frozen() {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &wire::frame_query(0x0102_0304_0506_0708)).unwrap();
    assert_eq!(bytes.len(), HEADER_LEN);
    assert_eq!(&bytes[0..4], b"GBNB");
    assert_eq!(bytes[4], wire::VERSION);
    assert_eq!(bytes[5], wire::kind::QUERY);
    assert_eq!(&bytes[6..8], &[0, 0]);
    assert_eq!(bytes[8..16], 0x0102_0304_0506_0708u64.to_le_bytes());
    assert_eq!(&bytes[16..20], &[0, 0, 0, 0]);
}
