//! End-to-end exactness over real TCP: flowshop and QAP campaigns
//! resolved to proven optimality through a loopback [`NetServer`], in
//! both client modes, at one and four shards, with mid-run worker
//! crashes and rejoining fleets — plus the server's resilience to a
//! peer that speaks garbage.

use gridbnb_core::runtime::{ChaosConfig, CrashPlan, RuntimeConfig};
use gridbnb_core::{CoordinatorConfig, GatewayPolicy, Interval, Problem, UBig};
use gridbnb_engine::solve;
use gridbnb_flowshop::bounds::PairSelection;
use gridbnb_flowshop::{taillard, BoundMode, FlowshopProblem};
use gridbnb_net::{
    query_metrics, query_status, run_workers_over_socket, ClientMode, ClientOptions, NetServer,
    ServerConfig, ServerReport,
};
use gridbnb_qap::greedy::{greedy_upper_bound, GreedyParams};
use gridbnb_qap::{Bound, QapInstance, QapProblem};
use std::net::SocketAddr;
use std::thread::JoinHandle;

fn flowshop9() -> FlowshopProblem {
    FlowshopProblem::new(
        taillard::generate(9, 5, 20_060_707),
        BoundMode::Johnson(PairSelection::All),
    )
}

/// Binds a loopback server for `problem`'s root range and spawns its
/// serve loop.
fn spawn_server<P: Problem>(
    problem: &P,
    config: ServerConfig,
) -> (SocketAddr, JoinHandle<ServerReport>) {
    let root = problem.shape().root_range();
    let server = NetServer::bind("127.0.0.1:0", root, config).expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn campaign_config(workers: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(workers);
    config.poll_nodes = 1_000;
    config
}

/// The core exactness matrix: a 9-job flowshop instance solved through
/// real sockets at S ∈ {1, 4}, in both client modes, W = 8 — every cell
/// must prove the same optimum the sequential engine computes.
#[test]
fn flowshop_exact_over_tcp_across_shards_and_modes() {
    let problem = flowshop9();
    let expected = solve(&problem, None).best_cost.expect("finite optimum");

    for shards in [1usize, 4] {
        for mode in [ClientMode::PerConnection, ClientMode::Multiplexed] {
            let (addr, server) = spawn_server(&problem, ServerConfig::new(shards));
            let reports = run_workers_over_socket(
                &problem,
                addr,
                &campaign_config(8),
                0,
                mode,
                &ClientOptions::default(),
            )
            .expect("client fleet");
            assert_eq!(reports.len(), 8);
            for (index, report) in reports.iter().enumerate() {
                assert!(
                    report.transport_failure.is_none(),
                    "worker {index} failed: {:?} (shards={shards}, mode={mode:?})",
                    report.transport_failure
                );
            }
            let report = server.join().expect("server thread");
            assert!(report.terminated, "shards={shards} mode={mode:?}");
            assert_eq!(
                report.proven_optimum,
                Some(expected),
                "shards={shards} mode={mode:?}"
            );
            assert_eq!(report.protocol_errors, 0);
            // Every worker request was answered through the socket.
            assert!(report.requests >= 8);
        }
    }
}

/// Same exactness with the server-side aggregation tier on: handler
/// threads submit through a shared gateway, so many connections' bursts
/// fold into shared coordinator bundles.
#[test]
fn flowshop_exact_over_tcp_with_server_side_aggregation() {
    let problem = flowshop9();
    let expected = solve(&problem, None).best_cost.expect("finite optimum");
    let config = ServerConfig {
        shards: 4,
        aggregate: Some(GatewayPolicy::new(8, 2_000_000)), // 2 ms deadline
        ..ServerConfig::default()
    };
    let (addr, server) = spawn_server(&problem, config);
    let reports = run_workers_over_socket(
        &problem,
        addr,
        &campaign_config(8),
        0,
        ClientMode::PerConnection,
        &ClientOptions::default(),
    )
    .expect("client fleet");
    assert!(reports.iter().all(|r| r.transport_failure.is_none()));
    let report = server.join().expect("server thread");
    assert_eq!(report.proven_optimum, Some(expected));
    let gateway = report.gateway.expect("aggregation stats");
    assert!(gateway.flushes > 0);
}

/// The observability acceptance path: while a campaign runs behind an
/// *adaptive* aggregation tier, a separate connection scrapes the
/// server's full registry over the same TCP port. Every scrape must be
/// a non-empty, well-formed exposition, and the final one must carry
/// all the layer families — router, shards, gateway (with its fan-in
/// gauge), sockets — without disturbing the campaign's exactness.
#[test]
fn metrics_scrape_over_tcp_mid_campaign() {
    let problem = flowshop9();
    let expected = solve(&problem, None).best_cost.expect("finite optimum");
    let config = ServerConfig {
        shards: 2,
        aggregate: Some(GatewayPolicy::adaptive(2, 16, 2_000_000)),
        ..ServerConfig::default()
    };
    let (addr, server) = spawn_server(&problem, config);

    // One scrape before the fleet joins: the families are registered at
    // serve() start, so even an idle server answers with a catalogue.
    let options = ClientOptions::default();
    let idle = query_metrics(addr, &options).expect("idle scrape");
    assert!(idle.contains("gbnb_router_contacts_total"));

    let fleet = std::thread::spawn(move || {
        let problem = flowshop9();
        run_workers_over_socket(
            &problem,
            addr,
            &campaign_config(8),
            0,
            ClientMode::PerConnection,
            &ClientOptions::default(),
        )
        .expect("client fleet")
    });
    let mut mid_scrapes = 0u64;
    let mut last = idle;
    while !fleet.is_finished() {
        // Scrapes racing the drain may be refused — only successful
        // ones count, and the pre-join scrape guarantees coverage.
        if let Ok(text) = query_metrics(addr, &options) {
            assert!(!text.is_empty(), "mid-campaign scrape came back empty");
            mid_scrapes += 1;
            last = text;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let reports = fleet.join().expect("fleet thread");
    assert!(reports.iter().all(|r| r.transport_failure.is_none()));
    let report = server.join().expect("server thread");
    assert!(report.terminated);
    assert_eq!(report.proven_optimum, Some(expected));

    assert!(mid_scrapes > 0, "no scrape landed while the campaign ran");
    for family in [
        "gbnb_router_contacts_total",
        "gbnb_shard_contacts_total",
        "gbnb_coordinator_update_ns",
        "gbnb_gateway_fan_in",
        "gbnb_net_frames_in_total",
        "gbnb_net_connections_total",
    ] {
        assert!(last.contains(family), "scrape is missing {family}");
    }
    // Well-formed exposition: metadata lines for every family, and the
    // scraper's own traffic is visible in it.
    assert!(last.lines().any(|l| l.starts_with("# TYPE")));
    assert!(last.contains("{kind=\"metrics_query\"}"));
}

/// QAP through the same socket stack: a 3×3 Nugent-style instance,
/// heuristic-seeded like the paper's campaign, proven optimal through a
/// 4-shard server over one multiplexed connection.
#[test]
fn qap_campaign_exact_over_tcp() {
    let instance = QapInstance::nugent_style(3, 3, 2007);
    let (_, ub) = greedy_upper_bound(&instance, &GreedyParams::default());
    let problem = QapProblem::new(instance, Bound::GilmoreLawler);
    let expected = solve(&problem, Some(ub + 1)).best_cost.expect("optimum");

    let config = ServerConfig {
        shards: 4,
        coordinator: CoordinatorConfig {
            initial_upper_bound: Some(ub + 1),
            ..CoordinatorConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, server) = spawn_server(&problem, config);
    let reports = run_workers_over_socket(
        &problem,
        addr,
        &campaign_config(8),
        0,
        ClientMode::Multiplexed,
        &ClientOptions::default(),
    )
    .expect("client fleet");
    assert!(reports.iter().all(|r| r.transport_failure.is_none()));
    let report = server.join().expect("server thread");
    assert_eq!(report.proven_optimum, Some(expected));
}

/// Fault tolerance over real sockets: a first fleet crashes mid-run
/// (connections drop with intervals checked out), the server's expiry
/// supervision reclaims their work, and a second fleet joining later —
/// fresh connections, non-overlapping worker ids — finishes the proof.
#[test]
fn worker_disconnect_and_rejoin_through_real_sockets() {
    let problem = flowshop9();
    let expected = solve(&problem, None).best_cost.expect("finite optimum");

    let config = ServerConfig {
        shards: 2,
        coordinator: CoordinatorConfig {
            // Crashed holders expire fast so the test stays quick.
            holder_timeout_ns: 50_000_000, // 50 ms
            ..CoordinatorConfig::default()
        },
        ..ServerConfig::default()
    };
    let (addr, server) = spawn_server(&problem, config);

    // Fleet A: two workers, both scripted to crash almost immediately,
    // holding checked-out intervals as their sockets drop.
    let mut config_a = campaign_config(2);
    config_a.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 0,
                after_nodes: 500,
                rejoin: false,
            },
            CrashPlan {
                worker_index: 1,
                after_nodes: 500,
                rejoin: false,
            },
        ],
    });
    let reports_a = run_workers_over_socket(
        &problem,
        addr,
        &config_a,
        0,
        ClientMode::PerConnection,
        &ClientOptions::default(),
    )
    .expect("fleet A");
    assert!(
        reports_a.iter().any(|r| r.crashes > 0),
        "fleet A must actually crash"
    );

    // The run is not over: the server still holds (or will reclaim)
    // fleet A's intervals.
    let mid = query_status(addr, &ClientOptions::default()).expect("status");
    assert!(!mid.terminated, "fleet A must not finish the tree");

    // Fleet B: four fresh workers under a disjoint id range finish the
    // proof — the crashed holders' intervals come back via expiry.
    let reports_b = run_workers_over_socket(
        &problem,
        addr,
        &campaign_config(4),
        1_000,
        ClientMode::Multiplexed,
        &ClientOptions::default(),
    )
    .expect("fleet B");
    assert!(reports_b.iter().all(|r| r.transport_failure.is_none()));

    let report = server.join().expect("server thread");
    assert_eq!(report.proven_optimum, Some(expected));
    // 2 per-connection sockets + 1 status probe + 1 multiplexed socket.
    assert!(report.connections >= 4);
}

/// A hostile peer cannot take the server down: garbage bytes close that
/// one connection (counted as a protocol error) while a concurrent
/// well-behaved fleet still proves the optimum.
#[test]
fn garbage_frames_close_one_connection_not_the_server() {
    let problem = flowshop9();
    let expected = solve(&problem, None).best_cost.expect("finite optimum");
    let (addr, server) = spawn_server(&problem, ServerConfig::new(1));

    // Garbage first: 64 bytes of noise on a raw socket.
    {
        use std::io::Write as _;
        let mut stream = std::net::TcpStream::connect(addr).expect("connect raw");
        stream.write_all(&[0xAB; 64]).expect("write garbage");
        // The server closes on us; reading reaches EOF.
        use std::io::Read as _;
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }

    let reports = run_workers_over_socket(
        &problem,
        addr,
        &campaign_config(4),
        0,
        ClientMode::Multiplexed,
        &ClientOptions::default(),
    )
    .expect("fleet after garbage");
    assert!(reports.iter().all(|r| r.transport_failure.is_none()));
    let report = server.join().expect("server thread");
    assert_eq!(report.proven_optimum, Some(expected));
    assert!(report.protocol_errors >= 1, "the garbage was noticed");
}

/// `ServerHandle::stop` winds a quiet server down without any client
/// ever connecting — drain must not require termination.
#[test]
fn stop_drains_an_idle_server() {
    let problem = flowshop9();
    let root = problem.shape().root_range();
    let server = NetServer::bind(
        "127.0.0.1:0",
        root,
        ServerConfig {
            drain_on_termination: false,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve"));
    handle.stop();
    let report = thread.join().expect("server thread");
    assert!(!report.terminated);
    assert_eq!(report.connections, 0);
}

/// The server refuses invalid configuration through the same
/// [`gridbnb_core::ConfigError`] path as the in-process runtime: an
/// aggregation delay at or above the holder timeout cannot start.
#[test]
fn server_rejects_gateway_delay_at_or_above_holder_timeout() {
    let root = Interval::new(UBig::zero(), UBig::from(1000u64));
    let config = ServerConfig {
        coordinator: CoordinatorConfig {
            holder_timeout_ns: 1_000,
            ..CoordinatorConfig::default()
        },
        aggregate: Some(GatewayPolicy::new(4, 1_000)),
        ..ServerConfig::default()
    };
    let error = NetServer::bind("127.0.0.1:0", root, config)
        .err()
        .expect("must not bind");
    assert!(
        error
            .to_string()
            .contains("gateway.max_delay_ns must stay below"),
        "got: {error}"
    );
}
