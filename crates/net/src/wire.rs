//! Length-prefixed binary framing for the coordinator protocol.
//!
//! Every message on a socket is one *frame*:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "GBNB"
//!      4     1  version (currently 1)
//!      5     1  kind (request bundle / response bundle / query / status)
//!      6     2  flags, little endian (reserved, must be 0)
//!      8     8  sequence number, little endian
//!     16     4  payload length, little endian (≤ 16 MiB)
//!     20     —  payload
//! ```
//!
//! The sequence number is chosen by the requester and echoed verbatim
//! by the responder, so many in-flight contacts can share one socket
//! (see `MuxClient`) and a response is matched to its request without
//! any ordering assumption.
//!
//! Payload scalars are little-endian fixed-width integers. The two
//! big-integer-bearing types reuse the checkpoint codec's decimal text
//! (length-prefixed): an interval is exactly the `begin end` line a
//! checkpoint file would hold, via
//! [`gridbnb_core::checkpoint::encode_interval_line`] — one codec for
//! disk and wire, and exact `UBig` round trips at ta056 scale for free.
//! Unlike the checkpoint *file* loaders, the wire decoder preserves
//! empty intervals: an [`Response::UpdateAck`] whose intersection came
//! back empty must survive the trip.
//!
//! Decoding is total: every malformed input maps to a
//! [`ProtocolError`], never a panic — a hostile or corrupt peer can at
//! worst get its connection closed.

use gridbnb_core::checkpoint::{decode_interval_line, encode_interval_line};
use gridbnb_core::{ProtocolError, Request, Response, Solution, TransportError, WorkerId};
use std::io::{self, BufRead, Read, Write};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"GBNB";
/// The one wire version this build speaks.
pub const VERSION: u8 = 1;
/// Bytes before the payload.
pub const HEADER_LEN: usize = 20;
/// Hard payload cap: a frame longer than this is rejected before any
/// allocation, so a corrupt length field cannot balloon memory.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame kinds (the header's `kind` byte).
pub mod kind {
    /// A bundle of worker [`gridbnb_core::Request`]s.
    pub const REQUEST_BUNDLE: u8 = 1;
    /// A bundle of coordinator [`gridbnb_core::Response`]s, one per
    /// request of the frame it echoes.
    pub const RESPONSE_BUNDLE: u8 = 2;
    /// Asks the server for its [`super::RunStatus`].
    pub const QUERY: u8 = 3;
    /// Answers a [`QUERY`].
    pub const STATUS: u8 = 4;
    /// Asks the server for a full metrics scrape.
    pub const METRICS_QUERY: u8 = 5;
    /// Answers a [`METRICS_QUERY`] with the registry's Prometheus-style
    /// text exposition (UTF-8 payload).
    pub const METRICS_TEXT: u8 = 6;
}

/// One decoded frame: validated header plus raw payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Frame kind (see [`kind`]).
    pub kind: u8,
    /// Reserved flag bits (always 0 in version 1).
    pub flags: u16,
    /// Requester-chosen sequence number, echoed by responses.
    pub seq: u64,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

/// The status a server reports for a [`kind::QUERY`] frame: the
/// observable end state of a resolution campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct RunStatus {
    /// `true` iff `INTERVALS` is empty everywhere — the paper's
    /// implicit termination: the best solution is the proven optimum.
    pub terminated: bool,
    /// Current global cutoff (best known cost).
    pub cutoff: Option<u64>,
    /// Best solution found so far.
    pub solution: Option<Solution>,
    /// Interval count still outstanding across shards.
    pub cardinality: u64,
    /// Router contacts served so far.
    pub contacts: u64,
    /// Cross-shard steals so far.
    pub steals: u64,
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

fn encode_header(out: &mut Vec<u8>, kind: u8, flags: u16, seq: u64, payload_len: u32) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&payload_len.to_le_bytes());
}

/// Validates a 20-byte header, returning `(kind, flags, seq,
/// payload_len)`.
fn decode_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u16, u64, u32), ProtocolError> {
    if header[0..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&header[0..4]);
        return Err(ProtocolError::BadMagic { got });
    }
    if header[4] != VERSION {
        return Err(ProtocolError::UnsupportedVersion {
            got: header[4],
            want: VERSION,
        });
    }
    let k = header[5];
    if !(kind::REQUEST_BUNDLE..=kind::METRICS_TEXT).contains(&k) {
        return Err(ProtocolError::UnknownKind(k));
    }
    let flags = u16::from_le_bytes([header[6], header[7]]);
    let seq = u64::from_le_bytes(header[8..16].try_into().expect("8 header bytes"));
    let len = u32::from_le_bytes(header[16..20].try_into().expect("4 header bytes"));
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized {
            len: len as u64,
            max: MAX_PAYLOAD as u64,
        });
    }
    Ok((k, flags, seq, len))
}

/// Writes one frame. The caller flushes (frames are usually batched
/// into one syscall behind a `BufWriter`).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    debug_assert!(
        frame.payload.len() <= MAX_PAYLOAD as usize,
        "oversized frame"
    );
    let mut header = Vec::with_capacity(HEADER_LEN);
    encode_header(
        &mut header,
        frame.kind,
        frame.flags,
        frame.seq,
        frame.payload.len() as u32,
    );
    w.write_all(&header)?;
    w.write_all(&frame.payload)
}

/// Reads one frame, blocking. A peer that closes the socket *between*
/// frames yields [`TransportError::Closed`] (orderly teardown); one
/// that closes mid-frame yields an I/O error (truncation is never
/// silent). A socket read timeout surfaces as
/// [`TransportError::Timeout`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, TransportError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte decides Closed vs truncated: EOF here is a clean
    // hang-up, EOF anywhere later is a cut-off frame.
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(TransportError::Closed),
            Ok(0) => {
                return Err(TransportError::Io(
                    "connection closed mid-frame-header".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let (kind, flags, seq, len) = decode_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| match e.kind() {
        io::ErrorKind::UnexpectedEof => {
            TransportError::Io("connection closed mid-frame-payload".into())
        }
        _ => TransportError::from(e),
    })?;
    Ok(Frame {
        kind,
        flags,
        seq,
        payload,
    })
}

/// Drains every *complete* frame already sitting in `reader`'s buffer,
/// without ever blocking on the socket — the server's multiplexing win:
/// frames that arrived back-to-back from many workers on one connection
/// are folded into a single coordinator bundle (one lock per touched
/// shard) instead of one contact each.
pub fn drain_buffered_frames<R: Read>(
    reader: &mut io::BufReader<R>,
) -> Result<Vec<Frame>, TransportError> {
    let mut frames = Vec::new();
    loop {
        let buf = reader.buffer();
        if buf.len() < HEADER_LEN {
            return Ok(frames);
        }
        let header: [u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("checked length");
        let (kind, flags, seq, len) = decode_header(&header)?;
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Ok(frames);
        }
        frames.push(Frame {
            kind,
            flags,
            seq,
            payload: buf[HEADER_LEN..total].to_vec(),
        });
        reader.consume(total);
    }
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProtocolError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| {
                ProtocolError::BadPayload(format!("truncated payload reading {what}"))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProtocolError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(
            self.bytes(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(
            self.bytes(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn finish(self, what: &str) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::BadPayload(format!(
                "{} trailing bytes after {what}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_interval(out: &mut Vec<u8>, interval: &gridbnb_core::Interval) {
    let line = encode_interval_line(interval);
    out.extend_from_slice(&(line.len() as u32).to_le_bytes());
    out.extend_from_slice(line.as_bytes());
}

fn get_interval(r: &mut Reader<'_>) -> Result<gridbnb_core::Interval, ProtocolError> {
    let len = r.u32("interval length")? as usize;
    let bytes = r.bytes(len, "interval text")?;
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ProtocolError::BadPayload("interval text is not UTF-8".into()))?;
    decode_interval_line(text)
        .map_err(|e| ProtocolError::BadPayload(format!("bad interval {text:?}: {e}")))
}

fn put_solution(out: &mut Vec<u8>, solution: &Solution) {
    out.extend_from_slice(&solution.cost.to_le_bytes());
    out.extend_from_slice(&(solution.leaf_ranks.len() as u32).to_le_bytes());
    for r in &solution.leaf_ranks {
        out.extend_from_slice(&r.to_le_bytes());
    }
}

fn get_solution(r: &mut Reader<'_>) -> Result<Solution, ProtocolError> {
    let cost = r.u64("solution cost")?;
    let count = r.u32("solution rank count")? as usize;
    // Bound the allocation by what the payload could actually hold.
    if count > r.buf.len() / 8 {
        return Err(ProtocolError::BadPayload(format!(
            "solution claims {count} ranks in a {}-byte payload",
            r.buf.len()
        )));
    }
    let mut ranks = Vec::with_capacity(count);
    for _ in 0..count {
        ranks.push(r.u64("solution rank")?);
    }
    Ok(Solution::new(cost, ranks))
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_le_bytes());
        }
        None => out.push(0),
    }
}

fn get_opt_u64(r: &mut Reader<'_>, what: &str) -> Result<Option<u64>, ProtocolError> {
    match r.u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.u64(what)?)),
        tag => Err(ProtocolError::BadPayload(format!(
            "bad option tag {tag} for {what}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

const REQ_JOIN: u8 = 1;
const REQ_REQUEST_WORK: u8 = 2;
const REQ_UPDATE: u8 = 3;
const REQ_REPORT_SOLUTION: u8 = 4;
const REQ_UPDATE_AND_REPORT: u8 = 5;
const REQ_LEAVE: u8 = 6;

fn put_request(out: &mut Vec<u8>, request: &Request) {
    match request {
        Request::Join { worker, power } => {
            out.push(REQ_JOIN);
            out.extend_from_slice(&worker.0.to_le_bytes());
            out.extend_from_slice(&power.to_le_bytes());
        }
        Request::RequestWork { worker, power } => {
            out.push(REQ_REQUEST_WORK);
            out.extend_from_slice(&worker.0.to_le_bytes());
            out.extend_from_slice(&power.to_le_bytes());
        }
        Request::Update { worker, interval } => {
            out.push(REQ_UPDATE);
            out.extend_from_slice(&worker.0.to_le_bytes());
            put_interval(out, interval);
        }
        Request::ReportSolution { worker, solution } => {
            out.push(REQ_REPORT_SOLUTION);
            out.extend_from_slice(&worker.0.to_le_bytes());
            put_solution(out, solution);
        }
        Request::UpdateAndReport {
            worker,
            interval,
            solution,
        } => {
            out.push(REQ_UPDATE_AND_REPORT);
            out.extend_from_slice(&worker.0.to_le_bytes());
            put_interval(out, interval);
            match solution {
                Some(s) => {
                    out.push(1);
                    put_solution(out, s);
                }
                None => out.push(0),
            }
        }
        Request::Leave { worker } => {
            out.push(REQ_LEAVE);
            out.extend_from_slice(&worker.0.to_le_bytes());
        }
    }
}

fn get_request(r: &mut Reader<'_>) -> Result<Request, ProtocolError> {
    let tag = r.u8("request tag")?;
    let worker = WorkerId(r.u64("worker id")?);
    Ok(match tag {
        REQ_JOIN => Request::Join {
            worker,
            power: r.u64("power")?,
        },
        REQ_REQUEST_WORK => Request::RequestWork {
            worker,
            power: r.u64("power")?,
        },
        REQ_UPDATE => Request::Update {
            worker,
            interval: get_interval(r)?,
        },
        REQ_REPORT_SOLUTION => Request::ReportSolution {
            worker,
            solution: get_solution(r)?,
        },
        REQ_UPDATE_AND_REPORT => {
            let interval = get_interval(r)?;
            let solution = match r.u8("solution option tag")? {
                0 => None,
                1 => Some(get_solution(r)?),
                tag => {
                    return Err(ProtocolError::BadPayload(format!(
                        "bad solution option tag {tag}"
                    )))
                }
            };
            Request::UpdateAndReport {
                worker,
                interval,
                solution,
            }
        }
        REQ_LEAVE => Request::Leave { worker },
        tag => {
            return Err(ProtocolError::BadPayload(format!(
                "unknown request tag {tag}"
            )))
        }
    })
}

/// Encodes a request bundle frame.
pub fn frame_request_bundle(seq: u64, requests: &[Request]) -> Frame {
    let mut payload = Vec::with_capacity(16 + requests.len() * 32);
    payload.extend_from_slice(&(requests.len() as u32).to_le_bytes());
    for request in requests {
        put_request(&mut payload, request);
    }
    Frame {
        kind: kind::REQUEST_BUNDLE,
        flags: 0,
        seq,
        payload,
    }
}

/// Decodes a request bundle frame's payload.
pub fn parse_request_bundle(frame: &Frame) -> Result<Vec<Request>, ProtocolError> {
    if frame.kind != kind::REQUEST_BUNDLE {
        return Err(ProtocolError::UnknownKind(frame.kind));
    }
    let mut r = Reader::new(&frame.payload);
    let count = r.u32("request count")? as usize;
    let mut requests = Vec::with_capacity(count.min(frame.payload.len()));
    for _ in 0..count {
        requests.push(get_request(&mut r)?);
    }
    r.finish("request bundle")?;
    Ok(requests)
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

const RESP_WORK: u8 = 1;
const RESP_UPDATE_ACK: u8 = 2;
const RESP_SOLUTION_ACK: u8 = 3;
const RESP_TERMINATE: u8 = 4;
const RESP_RETRY: u8 = 5;
const RESP_LEAVE_ACK: u8 = 6;

fn put_response(out: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Work { interval, cutoff } => {
            out.push(RESP_WORK);
            put_interval(out, interval);
            put_opt_u64(out, *cutoff);
        }
        Response::UpdateAck { interval, cutoff } => {
            out.push(RESP_UPDATE_ACK);
            put_interval(out, interval);
            put_opt_u64(out, *cutoff);
        }
        Response::SolutionAck { cutoff } => {
            out.push(RESP_SOLUTION_ACK);
            put_opt_u64(out, *cutoff);
        }
        Response::Terminate => out.push(RESP_TERMINATE),
        Response::Retry => out.push(RESP_RETRY),
        Response::LeaveAck => out.push(RESP_LEAVE_ACK),
    }
}

fn get_response(r: &mut Reader<'_>) -> Result<Response, ProtocolError> {
    Ok(match r.u8("response tag")? {
        RESP_WORK => Response::Work {
            interval: get_interval(r)?,
            cutoff: get_opt_u64(r, "work cutoff")?,
        },
        RESP_UPDATE_ACK => Response::UpdateAck {
            interval: get_interval(r)?,
            cutoff: get_opt_u64(r, "update cutoff")?,
        },
        RESP_SOLUTION_ACK => Response::SolutionAck {
            cutoff: get_opt_u64(r, "solution cutoff")?,
        },
        RESP_TERMINATE => Response::Terminate,
        RESP_RETRY => Response::Retry,
        RESP_LEAVE_ACK => Response::LeaveAck,
        tag => {
            return Err(ProtocolError::BadPayload(format!(
                "unknown response tag {tag}"
            )))
        }
    })
}

/// Encodes a response bundle frame echoing `seq`.
pub fn frame_response_bundle(seq: u64, responses: &[Response]) -> Frame {
    let mut payload = Vec::with_capacity(16 + responses.len() * 32);
    payload.extend_from_slice(&(responses.len() as u32).to_le_bytes());
    for response in responses {
        put_response(&mut payload, response);
    }
    Frame {
        kind: kind::RESPONSE_BUNDLE,
        flags: 0,
        seq,
        payload,
    }
}

/// Decodes a response bundle frame's payload.
pub fn parse_response_bundle(frame: &Frame) -> Result<Vec<Response>, ProtocolError> {
    if frame.kind != kind::RESPONSE_BUNDLE {
        return Err(ProtocolError::UnknownKind(frame.kind));
    }
    let mut r = Reader::new(&frame.payload);
    let count = r.u32("response count")? as usize;
    let mut responses = Vec::with_capacity(count.min(frame.payload.len()));
    for _ in 0..count {
        responses.push(get_response(&mut r)?);
    }
    r.finish("response bundle")?;
    Ok(responses)
}

// ---------------------------------------------------------------------
// Query / status
// ---------------------------------------------------------------------

/// Encodes a status query frame (empty payload).
pub fn frame_query(seq: u64) -> Frame {
    Frame {
        kind: kind::QUERY,
        flags: 0,
        seq,
        payload: Vec::new(),
    }
}

/// Encodes a status frame echoing `seq`.
pub fn frame_status(seq: u64, status: &RunStatus) -> Frame {
    let mut payload = Vec::with_capacity(64);
    payload.push(u8::from(status.terminated));
    put_opt_u64(&mut payload, status.cutoff);
    match &status.solution {
        Some(s) => {
            payload.push(1);
            put_solution(&mut payload, s);
        }
        None => payload.push(0),
    }
    payload.extend_from_slice(&status.cardinality.to_le_bytes());
    payload.extend_from_slice(&status.contacts.to_le_bytes());
    payload.extend_from_slice(&status.steals.to_le_bytes());
    Frame {
        kind: kind::STATUS,
        flags: 0,
        seq,
        payload,
    }
}

/// Decodes a status frame's payload.
pub fn parse_status(frame: &Frame) -> Result<RunStatus, ProtocolError> {
    if frame.kind != kind::STATUS {
        return Err(ProtocolError::UnknownKind(frame.kind));
    }
    let mut r = Reader::new(&frame.payload);
    let terminated = match r.u8("terminated flag")? {
        0 => false,
        1 => true,
        tag => {
            return Err(ProtocolError::BadPayload(format!(
                "bad terminated flag {tag}"
            )))
        }
    };
    let cutoff = get_opt_u64(&mut r, "status cutoff")?;
    let solution = match r.u8("status solution tag")? {
        0 => None,
        1 => Some(get_solution(&mut r)?),
        tag => {
            return Err(ProtocolError::BadPayload(format!(
                "bad solution option tag {tag}"
            )))
        }
    };
    let cardinality = r.u64("cardinality")?;
    let contacts = r.u64("contacts")?;
    let steals = r.u64("steals")?;
    r.finish("status")?;
    Ok(RunStatus {
        terminated,
        cutoff,
        solution,
        cardinality,
        contacts,
        steals,
    })
}

// ---------------------------------------------------------------------
// Metrics query / text
// ---------------------------------------------------------------------

/// Encodes a metrics query frame (empty payload).
pub fn frame_metrics_query(seq: u64) -> Frame {
    Frame {
        kind: kind::METRICS_QUERY,
        flags: 0,
        seq,
        payload: Vec::new(),
    }
}

/// Encodes a metrics text frame echoing `seq`. The payload is the
/// registry's text exposition verbatim — the one wire message whose
/// schema is "whatever series the server registered", so a scraper
/// needs no redeploy when the server grows a new counter.
pub fn frame_metrics_text(seq: u64, text: &str) -> Frame {
    Frame {
        kind: kind::METRICS_TEXT,
        flags: 0,
        seq,
        payload: text.as_bytes().to_vec(),
    }
}

/// Decodes a metrics text frame's payload.
pub fn parse_metrics_text(frame: &Frame) -> Result<String, ProtocolError> {
    if frame.kind != kind::METRICS_TEXT {
        return Err(ProtocolError::UnknownKind(frame.kind));
    }
    String::from_utf8(frame.payload.clone())
        .map_err(|_| ProtocolError::BadPayload("metrics text is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbnb_core::{Interval, UBig};

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(UBig::from(a), UBig::from(b))
    }

    #[test]
    fn frame_round_trips_through_a_byte_stream() {
        let frame = frame_request_bundle(
            7,
            &[Request::Join {
                worker: WorkerId(3),
                power: 1400,
            }],
        );
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        let back = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(
            parse_request_bundle(&back).unwrap(),
            vec![Request::Join {
                worker: WorkerId(3),
                power: 1400
            }]
        );
    }

    #[test]
    fn clean_eof_is_closed_truncation_is_io() {
        assert!(matches!(
            read_frame(&mut [].as_slice()),
            Err(TransportError::Closed)
        ));
        let frame = frame_query(1);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        bytes.pop();
        bytes.pop();
        // Mid-header truncation (query has no payload).
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(TransportError::Io(_))
        ));
    }

    #[test]
    fn bad_magic_version_kind_and_oversize_are_rejected() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame_query(1)).unwrap();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(TransportError::Protocol(ProtocolError::BadMagic { .. }))
        ));
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(TransportError::Protocol(
                ProtocolError::UnsupportedVersion { got: 9, .. }
            ))
        ));
        let mut bad = bytes.clone();
        bad[5] = 200;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(TransportError::Protocol(ProtocolError::UnknownKind(200)))
        ));
        let mut bad = bytes;
        bad[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(TransportError::Protocol(ProtocolError::Oversized { .. }))
        ));
    }

    #[test]
    fn empty_interval_survives_the_wire() {
        let ack = Response::UpdateAck {
            interval: iv(5, 5),
            cutoff: Some(9),
        };
        let frame = frame_response_bundle(2, std::slice::from_ref(&ack));
        assert_eq!(parse_response_bundle(&frame).unwrap(), vec![ack]);
    }

    #[test]
    fn status_round_trips() {
        let status = RunStatus {
            terminated: true,
            cutoff: Some(3679),
            solution: Some(Solution::new(3679, vec![4, 1, 0, 2])),
            cardinality: 0,
            contacts: 812,
            steals: 17,
        };
        let frame = frame_status(5, &status);
        assert_eq!(parse_status(&frame).unwrap(), status);
    }

    #[test]
    fn metrics_text_round_trips_through_a_byte_stream() {
        let text = "# TYPE gbnb_router_contacts_total counter\ngbnb_router_contacts_total 41\n";
        let frame = frame_metrics_text(9, text);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        let back = read_frame(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.kind, kind::METRICS_TEXT);
        assert_eq!(parse_metrics_text(&back).unwrap(), text);
        assert!(matches!(
            parse_metrics_text(&frame_query(1)),
            Err(ProtocolError::UnknownKind(_))
        ));
    }

    #[test]
    fn drain_pulls_only_complete_buffered_frames() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame_query(1)).unwrap();
        write_frame(&mut bytes, &frame_query(2)).unwrap();
        let partial = frame_request_bundle(
            3,
            &[Request::Leave {
                worker: WorkerId(1),
            }],
        );
        let mut tail = Vec::new();
        write_frame(&mut tail, &partial).unwrap();
        bytes.extend_from_slice(&tail[..tail.len() - 3]);
        let mut reader = io::BufReader::new(bytes.as_slice());
        let first = read_frame(&mut reader).unwrap();
        assert_eq!(first.seq, 1);
        let drained = drain_buffered_frames(&mut reader).unwrap();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].seq, 2);
    }
}
