//! Client-side transports: the socket implementations of
//! [`gridbnb_core::Transport`], and helpers to run a whole worker fleet
//! against a remote coordinator.
//!
//! Two wiring modes, same protocol:
//!
//! * **Per-connection** ([`SocketTransport`]) — one TCP connection per
//!   worker, one frame in flight at a time. Simple, and the baseline
//!   the bench compares against.
//! * **Multiplexed** ([`MuxClient`]) — one TCP connection shared by
//!   every worker on the host. Contacts are pipelined: each carries its
//!   own sequence number, a writer thread drains the outbox in
//!   single-flush bursts, and one reader thread routes response frames
//!   back to their waiting workers by sequence number. Bursts of
//!   contacts arrive back-to-back at the server, which folds them into
//!   one coordinator bundle — W workers cost one socket, ~one syscall
//!   pair, and ~one shard lock per burst instead of W of each.

use crate::wire::{
    self, frame_metrics_query, frame_query, frame_request_bundle, parse_metrics_text,
    parse_response_bundle, parse_status, read_frame, write_frame, RunStatus,
};
use gridbnb_core::runtime::{run_workers, RuntimeConfig, WorkerReport};
use gridbnb_core::{Problem, ProtocolError, Request, Response, Transport, TransportError};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Socket knobs shared by both client modes.
#[derive(Clone, Copy, Debug)]
pub struct ClientOptions {
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// How long one contact may wait for its response bundle before it
    /// counts as [`TransportError::Timeout`] (transient — the worker
    /// loop's retry policy takes it from there).
    pub reply_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Buffer sizing for the multiplexed connection: a whole fleet's burst
/// (W frames of a few hundred bytes) should cross in one syscall pair.
const BURST_BUFFER: usize = 64 * 1024;

/// How many scheduler slices the mux writer donates while gathering a
/// burst before it flushes what it has. Bounded so a lone contact on an
/// otherwise idle connection is only a few `yield_now` calls slower.
const GATHER_YIELDS: usize = 3;

fn connect_stream(addr: SocketAddr, options: &ClientOptions) -> Result<TcpStream, TransportError> {
    let stream = TcpStream::connect_timeout(&addr, options.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(options.write_timeout))?;
    Ok(stream)
}

// ---------------------------------------------------------------------
// Per-connection transport
// ---------------------------------------------------------------------

struct SocketConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    seq: u64,
}

/// One worker, one TCP connection, one contact in flight at a time.
pub struct SocketTransport {
    conn: Mutex<SocketConn>,
}

impl SocketTransport {
    /// Connects to a [`crate::NetServer`] at `addr`.
    pub fn connect(addr: SocketAddr, options: &ClientOptions) -> Result<Self, TransportError> {
        let stream = connect_stream(addr, options)?;
        stream.set_read_timeout(Some(options.reply_timeout))?;
        let reader = BufReader::new(stream.try_clone().map_err(TransportError::from)?);
        Ok(SocketTransport {
            conn: Mutex::new(SocketConn {
                reader,
                writer: BufWriter::new(stream),
                seq: 0,
            }),
        })
    }
}

impl Transport for SocketTransport {
    fn contact(&self, requests: Vec<Request>) -> Result<Vec<Response>, TransportError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let mut conn = self.conn.lock().expect("poisoned socket transport");
        conn.seq += 1;
        let seq = conn.seq;
        write_frame(&mut conn.writer, &frame_request_bundle(seq, &requests))?;
        conn.writer.flush()?;
        let frame = read_frame(&mut conn.reader)?;
        if frame.seq != seq {
            return Err(ProtocolError::BadPayload(format!(
                "response for seq {} while awaiting seq {seq}",
                frame.seq
            ))
            .into());
        }
        Ok(parse_response_bundle(&frame)?)
    }
}

// ---------------------------------------------------------------------
// Multiplexed transport
// ---------------------------------------------------------------------

type ReplySlot = crossbeam::channel::Sender<Result<wire::Frame, TransportError>>;

/// One encoded frame bound for the shared socket, or the end-of-life
/// sentinel that retires the writer thread.
enum WriterJob {
    Frame(Vec<u8>),
    Shutdown,
}

struct MuxShared {
    /// Contacts enqueue encoded frames here; the writer thread drains
    /// the queue in bursts — everything queued while the previous write
    /// was in flight goes out in **one** write + flush, so W concurrent
    /// workers cost ~one syscall pair per burst instead of one each.
    /// (The lock guards an in-memory enqueue only, never a syscall.)
    outbox: Mutex<crossbeam::channel::Sender<WriterJob>>,
    pending: Mutex<HashMap<u64, ReplySlot>>,
    seq: AtomicU64,
    /// Set when the connection died; every later contact fails fast
    /// with a clone of the fatal error instead of touching the socket.
    dead: Mutex<Option<TransportError>>,
    closing: AtomicBool,
    reply_timeout: Duration,
}

impl MuxShared {
    /// Marks the connection dead and fails every parked contact.
    fn poison(&self, error: TransportError) {
        {
            let mut dead = self.dead.lock().expect("poisoned mux state");
            if dead.is_none() {
                *dead = Some(error.clone());
            }
        }
        let pending = std::mem::take(&mut *self.pending.lock().expect("poisoned mux state"));
        for (_, slot) in pending {
            let _ = slot.send(Err(error.clone()));
        }
    }
}

/// One shared TCP connection multiplexing any number of workers'
/// contacts. Create once per host, hand each worker a
/// [`MuxClient::transport`], and [`MuxClient::close`] when the fleet is
/// done.
pub struct MuxClient {
    shared: Arc<MuxShared>,
    stream: TcpStream,
    reader: Option<std::thread::JoinHandle<()>>,
    writer: Option<std::thread::JoinHandle<()>>,
}

impl MuxClient {
    /// Connects the shared socket and starts the two I/O threads: a
    /// writer draining the outbox in single-flush bursts, and a reader
    /// routing response frames to waiting contacts by sequence number.
    pub fn connect(addr: SocketAddr, options: &ClientOptions) -> Result<Self, TransportError> {
        let stream = connect_stream(addr, options)?;
        // The reader polls in short timeouts so `close` is observed
        // even on an idle connection.
        stream.set_read_timeout(Some(Duration::from_millis(20)))?;
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<WriterJob>();
        let shared = Arc::new(MuxShared {
            outbox: Mutex::new(job_tx),
            pending: Mutex::new(HashMap::new()),
            seq: AtomicU64::new(0),
            dead: Mutex::new(None),
            closing: AtomicBool::new(false),
            reply_timeout: options.reply_timeout,
        });
        let writer_shared = Arc::clone(&shared);
        let writer_stream = stream.try_clone()?;
        let writer = std::thread::spawn(move || {
            let mut out = BufWriter::with_capacity(BURST_BUFFER, writer_stream);
            loop {
                // Block for the first frame of a burst, then sweep in
                // everything that queued behind it before flushing once.
                // When the queue runs dry mid-burst, yield a few slices
                // first: on a loaded box the workers that are about to
                // enqueue are runnable but not yet scheduled, and giving
                // them the core grows the burst — turning W flush
                // syscalls into one.
                let first = match job_rx.recv() {
                    Ok(WriterJob::Frame(bytes)) => bytes,
                    Ok(WriterJob::Shutdown) | Err(_) => return,
                };
                let mut retiring = false;
                let burst = (|| -> std::io::Result<()> {
                    out.write_all(&first)?;
                    let mut yields = 0;
                    loop {
                        match job_rx.try_recv() {
                            Ok(WriterJob::Frame(bytes)) => out.write_all(&bytes)?,
                            Ok(WriterJob::Shutdown) => {
                                retiring = true;
                                break;
                            }
                            Err(_) if yields < GATHER_YIELDS => {
                                yields += 1;
                                std::thread::yield_now();
                            }
                            Err(_) => break,
                        }
                    }
                    out.flush()
                })();
                if let Err(e) = burst {
                    writer_shared.poison(e.into());
                    return;
                }
                if retiring {
                    return;
                }
            }
        });
        let reader_shared = Arc::clone(&shared);
        let reader_stream = stream.try_clone()?;
        let reader = std::thread::spawn(move || {
            let mut reader = BufReader::with_capacity(BURST_BUFFER, reader_stream);
            loop {
                match read_frame(&mut reader) {
                    Ok(frame) => {
                        let slot = reader_shared
                            .pending
                            .lock()
                            .expect("poisoned mux state")
                            .remove(&frame.seq);
                        // An absent slot is a contact that timed out and
                        // went away; the response is dropped.
                        if let Some(slot) = slot {
                            let _ = slot.send(Ok(frame));
                        }
                    }
                    Err(TransportError::Timeout) => {
                        if reader_shared.closing.load(Ordering::Acquire) {
                            reader_shared.poison(TransportError::Closed);
                            return;
                        }
                    }
                    Err(e) => {
                        reader_shared.poison(e);
                        return;
                    }
                }
            }
        });
        Ok(MuxClient {
            shared,
            stream,
            reader: Some(reader),
            writer: Some(writer),
        })
    }

    /// A [`Transport`] handle sharing this connection. Handles stay
    /// valid until [`MuxClient::close`]; contacts after that fail with
    /// [`TransportError::Closed`].
    pub fn transport(&self) -> MuxTransport {
        MuxTransport {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Shuts the connection down and joins the reader thread. Parked
    /// contacts fail with [`TransportError::Closed`].
    pub fn close(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.closing.store(true, Ordering::Release);
        let _ = self
            .shared
            .outbox
            .lock()
            .expect("poisoned mux state")
            .send(WriterJob::Shutdown);
        if let Some(writer) = self.writer.take() {
            let _ = writer.join();
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        self.shared.poison(TransportError::Closed);
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A worker's handle onto a [`MuxClient`] connection.
pub struct MuxTransport {
    shared: Arc<MuxShared>,
}

impl Transport for MuxTransport {
    fn contact(&self, requests: Vec<Request>) -> Result<Vec<Response>, TransportError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        if let Some(error) = self.shared.dead.lock().expect("poisoned mux state").clone() {
            return Err(error);
        }
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let (tx, rx) = crossbeam::channel::unbounded();
        self.shared
            .pending
            .lock()
            .expect("poisoned mux state")
            .insert(seq, tx);
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame_request_bundle(seq, &requests))
            .expect("infallible Vec write");
        let enqueued = self
            .shared
            .outbox
            .lock()
            .expect("poisoned mux state")
            .send(WriterJob::Frame(bytes));
        if enqueued.is_err() {
            // The writer thread is gone; report why if the poison
            // recorded it, otherwise this is an orderly close.
            self.shared
                .pending
                .lock()
                .expect("poisoned mux state")
                .remove(&seq);
            let dead = self.shared.dead.lock().expect("poisoned mux state").clone();
            return Err(dead.unwrap_or(TransportError::Closed));
        }
        match rx.recv_timeout(self.shared.reply_timeout) {
            Ok(Ok(frame)) => Ok(parse_response_bundle(&frame)?),
            Ok(Err(e)) => Err(e),
            Err(_) => {
                // Timed out: withdraw so a late response is dropped
                // instead of leaking a slot.
                self.shared
                    .pending
                    .lock()
                    .expect("poisoned mux state")
                    .remove(&seq);
                Err(TransportError::Timeout)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fleet helpers
// ---------------------------------------------------------------------

/// How a worker fleet shares sockets to the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientMode {
    /// One TCP connection per worker.
    PerConnection,
    /// One TCP connection for the whole fleet (a [`MuxClient`]).
    Multiplexed,
}

/// Runs `config.workers` workers against the [`crate::NetServer`] at
/// `addr` and returns their reports — the socket counterpart of
/// [`gridbnb_core::runtime::run`], with the coordinator on the far side
/// of real TCP. Connections are established up front so a dead server
/// fails fast; `id_base` keeps several client processes collision-free
/// on one server.
pub fn run_workers_over_socket<P: Problem>(
    problem: &P,
    addr: SocketAddr,
    config: &RuntimeConfig,
    id_base: u64,
    mode: ClientMode,
    options: &ClientOptions,
) -> Result<Vec<WorkerReport>, TransportError> {
    match mode {
        ClientMode::PerConnection => {
            let sockets: Vec<Mutex<Option<SocketTransport>>> = (0..config.workers)
                .map(|_| SocketTransport::connect(addr, options).map(|t| Mutex::new(Some(t))))
                .collect::<Result<_, _>>()?;
            Ok(run_workers(problem, config, id_base, |index| {
                sockets[index]
                    .lock()
                    .expect("poisoned connection slot")
                    .take()
                    .expect("one pre-opened connection per worker")
            }))
        }
        ClientMode::Multiplexed => {
            let mux = MuxClient::connect(addr, options)?;
            let reports = run_workers(problem, config, id_base, |_| mux.transport());
            mux.close();
            Ok(reports)
        }
    }
}

/// One-shot status query: connect, ask, disconnect. How an observer —
/// or a finished client fleet — reads the proven optimum off a server.
pub fn query_status(
    addr: SocketAddr,
    options: &ClientOptions,
) -> Result<RunStatus, TransportError> {
    let stream = connect_stream(addr, options)?;
    stream.set_read_timeout(Some(options.reply_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &frame_query(1))?;
    writer.flush()?;
    let frame = read_frame(&mut reader)?;
    if frame.seq != 1 {
        return Err(ProtocolError::BadPayload(format!(
            "status reply for seq {} while awaiting seq 1",
            frame.seq
        ))
        .into());
    }
    Ok(parse_status(&frame)?)
}

/// One-shot metrics scrape: connect, ask, disconnect. Returns the
/// server registry's Prometheus-style text exposition — every layer's
/// series (coordinator operators, shards, gateway, sockets) in one
/// read, scrapeable mid-campaign without disturbing the workers.
pub fn query_metrics(addr: SocketAddr, options: &ClientOptions) -> Result<String, TransportError> {
    let stream = connect_stream(addr, options)?;
    stream.set_read_timeout(Some(options.reply_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &frame_metrics_query(1))?;
    writer.flush()?;
    let frame = read_frame(&mut reader)?;
    if frame.seq != 1 {
        return Err(ProtocolError::BadPayload(format!(
            "metrics reply for seq {} while awaiting seq 1",
            frame.seq
        ))
        .into());
    }
    Ok(parse_metrics_text(&frame)?)
}
