//! The network service layer: the coordinator protocol of
//! `gridbnb-core` served over real TCP sockets.
//!
//! The paper's deployment is inherently networked — workers on grid
//! nodes contact the farmer over the wire, pull-model, through
//! firewalls. The in-process runtime reproduces the *protocol*; this
//! crate reproduces the *deployment shape*:
//!
//! * [`wire`] — a versioned, length-prefixed binary frame codec for
//!   request/response bundles. Big integers ride as the checkpoint
//!   codec's decimal text, so disk and wire share one exact format.
//! * [`NetServer`] — a `std::net::TcpListener` front for a
//!   [`gridbnb_core::ShardRouter`] (optionally behind a
//!   [`gridbnb_core::ContactGateway`]): handler thread pool, read/write
//!   timeouts, holder-expiry supervision, graceful drain on implicit
//!   termination.
//! * [`SocketTransport`] / [`MuxClient`] — the client side, both
//!   implementing [`gridbnb_core::Transport`], so the unchanged worker
//!   loop (`gridbnb_core::runtime::run_workers`) drives a remote
//!   coordinator exactly as it drives an in-process one. Per-connection
//!   mode gives every worker a socket; multiplexed mode pipelines a
//!   whole fleet over one socket, which the server folds into shared
//!   coordinator bundles.
//!
//! Everything is hand-rolled on `std::net` blocking I/O and threads —
//! no async runtime, matching the workspace's no-external-dependency
//! rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{
    query_metrics, query_status, run_workers_over_socket, ClientMode, ClientOptions, MuxClient,
    MuxTransport, SocketTransport,
};
pub use server::{NetServer, RecoveryStats, ServerConfig, ServerError, ServerHandle, ServerReport};
pub use wire::{Frame, RunStatus};
