//! The socket server: a [`gridbnb_core::ShardRouter`] (optionally
//! fronted by a [`gridbnb_core::ContactGateway`]) served over real TCP.
//!
//! ```text
//!              ┌────────────────────── NetServer ──────────────────────┐
//!   workers ──►│ acceptor ─► handler pool ─► [gateway] ─► ShardRouter  │
//!   (sockets)  │     ▲            │                            ▲       │
//!              │     └── poke ────┘        supervisor: expiry, flush   │
//!              └───────────────────────────────────────────────────────┘
//! ```
//!
//! * **Acceptor** — the thread calling [`NetServer::serve`] accepts
//!   connections (non-blocking, so shutdown and drain conditions are
//!   observed promptly) and queues them for a fixed pool of handler
//!   threads. A connection beyond the pool size waits its turn in the
//!   queue; nothing is refused.
//! * **Handlers** — one connection at a time per handler: read a frame,
//!   serve it, write the reply. A connection may carry one worker
//!   (per-connection mode) or many (a `MuxClient`); the server does not
//!   care. What it *does* exploit: after the first blocking read, every
//!   complete frame already buffered on the connection is drained and
//!   folded into the same coordinator bundle — one
//!   [`gridbnb_core::ShardRouter::handle_bundle`] call (one lock per
//!   touched shard) for a burst of frames, which is where multiplexed
//!   clients beat per-connection ones.
//! * **Supervisor** — mirrors the in-process runtime's housekeeping:
//!   expire stale holders (crash recovery for vanished connections) and
//!   drive the gateway's deadline flush.
//! * **Drain** — with [`ServerConfig::drain_on_termination`] set (the
//!   default: one resolution campaign per server, like the paper's
//!   runs), `serve` returns once the router terminates and the last
//!   connection closes; [`ServerHandle::stop`] forces the same wind-down
//!   early. In-flight frames are answered before their connections
//!   close.
//!
//! Misbehaving peers never take the server down: a malformed frame
//! closes that one connection and bumps
//! [`ServerReport::protocol_errors`].

use crate::wire::{self, drain_buffered_frames, read_frame, write_frame, Frame, RunStatus};
use gridbnb_core::runtime::DurabilityPolicy;
use gridbnb_core::{
    ConfigError, ContactGateway, CoordinatorConfig, CoordinatorStats, GatewayPolicy, GatewayStats,
    Interval, Request, ShardRouter, TransportError, UBig, WalError, WalStore,
};
use gridbnb_metrics::{latency_buckets_ns, Counter, Histogram, MetricsRegistry};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Socket buffer sizing for burst traffic: large enough that a
/// multiplexed client's whole burst (W frames of a few hundred bytes)
/// crosses in one read fill and one write flush.
const BURST_BUFFER: usize = 64 * 1024;

/// How a [`NetServer`] is shaped: the coordinator it hosts and the
/// socket behavior in front of it.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Coordinator shards behind the router (≥ 1).
    pub shards: usize,
    /// Per-shard coordinator policy.
    pub coordinator: CoordinatorConfig,
    /// Cross-connection aggregation: when set, handler threads submit
    /// through a shared [`ContactGateway`] instead of calling the
    /// router directly, merging many connections' bundles per flush.
    pub aggregate: Option<GatewayPolicy>,
    /// Handler pool size — the number of connections served
    /// concurrently (more wait in the accept queue). Must cover the
    /// expected connection count in per-connection mode, where every
    /// handler parks on its socket between contacts.
    pub handler_threads: usize,
    /// Socket read timeout per blocking read. This is also the
    /// handler's shutdown poll tick: a quiet connection notices a drain
    /// within one timeout.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// When `true`, [`NetServer::serve`] returns after the router
    /// terminates and every connection has closed — one resolution
    /// campaign per server. When `false` the server keeps listening
    /// until [`ServerHandle::stop`].
    pub drain_on_termination: bool,
    /// Durable coordinator state (see
    /// [`gridbnb_core::runtime::DurabilityPolicy`]). At startup the
    /// server recovers any campaign committed on the backend — a killed
    /// server restarted on the same backend resumes exactly where its
    /// log ends, holders cleared, and the rejoining fleet finishes the
    /// proof. Mid-log corruption refuses to serve
    /// ([`ServerError::Durability`]); only a torn final record is
    /// repaired silently. When the backend is empty a fresh log epoch is
    /// opened. The recovered log's shard count overrides
    /// [`ServerConfig::shards`].
    pub durability: Option<DurabilityPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            coordinator: CoordinatorConfig::default(),
            aggregate: None,
            handler_threads: 128,
            read_timeout: Duration::from_millis(20),
            write_timeout: Duration::from_secs(5),
            drain_on_termination: true,
            durability: None,
        }
    }
}

impl ServerConfig {
    /// A config with `shards` coordinator shards and defaults elsewhere.
    pub fn new(shards: usize) -> Self {
        ServerConfig {
            shards,
            ..ServerConfig::default()
        }
    }

    /// Checks the config the same way the in-process runtime checks
    /// its own: shard count, coordinator policy, and the gateway delay
    /// against the holder timeout — a socket server can no more start
    /// with `max_delay ≥ holder_timeout` than a thread runtime can.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if let Some(policy) = &self.aggregate {
            policy.validate_against(&self.coordinator)?;
        }
        self.coordinator.validate()
    }
}

/// Why a server could not start or finish.
#[derive(Debug)]
pub enum ServerError {
    /// The configuration failed [`ServerConfig::validate`].
    Config(ConfigError),
    /// Binding or operating the listener failed.
    Io(io::Error),
    /// The durable log could not be opened or recovered — including
    /// mid-log corruption, which the server refuses to serve past (a
    /// torn *final* record is repaired by truncation instead).
    Durability(WalError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Config(e) => write!(f, "invalid server config: {e}"),
            ServerError::Io(e) => write!(f, "server I/O error: {e}"),
            ServerError::Durability(e) => write!(f, "durable log unusable: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> Self {
        ServerError::Durability(e)
    }
}

impl From<ConfigError> for ServerError {
    fn from(e: ConfigError) -> Self {
        ServerError::Config(e)
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// What a finished [`NetServer::serve`] observed.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Best solution when the server wound down.
    pub solution: Option<gridbnb_core::Solution>,
    /// The solution's cost iff the router terminated (then the whole
    /// tree is explored and the best solution is proven optimal).
    pub proven_optimum: Option<u64>,
    /// Whether the router reached implicit termination.
    pub terminated: bool,
    /// Connections accepted.
    pub connections: u64,
    /// Request-bundle frames served.
    pub frames: u64,
    /// Coordinator bundles those frames were folded into (≤ `frames`;
    /// the gap is the multiplexing win).
    pub bundles: u64,
    /// Frames served piggy-backed on another frame's bundle
    /// (`frames − bundles`, counted directly).
    pub batched_frames: u64,
    /// Worker requests inside all served frames.
    pub requests: u64,
    /// Status queries answered.
    pub queries: u64,
    /// Connections dropped for violating the protocol.
    pub protocol_errors: u64,
    /// Router contacts (bundle deliveries, post-aggregation).
    pub router_contacts: u64,
    /// Cross-shard steals.
    pub steals: u64,
    /// Aggregate coordinator counters.
    pub coordinator_stats: CoordinatorStats,
    /// Gateway counters, when aggregation was on.
    pub gateway: Option<GatewayStats>,
    /// Σ unexplored interval length when the server wound down: zero
    /// after a terminated campaign, and — for a server stopped mid-run —
    /// exactly what a restart on the same durable backend must recover.
    pub remaining: UBig,
    /// Set when startup recovered a campaign from a durable log.
    pub recovery: Option<RecoveryStats>,
    /// Wall time from bind to drain.
    pub wall: Duration,
}

/// What WAL recovery replayed when a server started on a backend that
/// already held a committed campaign.
#[derive(Clone, Debug)]
pub struct RecoveryStats {
    /// Complete log records replayed on top of the committed snapshot.
    pub replayed_records: u64,
    /// Operations inside those records.
    pub replayed_ops: u64,
    /// Torn final records repaired by truncation (a crash mid-append).
    pub torn_truncations: u64,
    /// Σ unexplored interval length at the recovery point — compare
    /// against the killed server's [`ServerReport::remaining`] to prove
    /// zero lost work.
    pub recovered_length: UBig,
}

/// Counters shared between acceptor and handlers.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    frames: AtomicU64,
    bundles: AtomicU64,
    batched_frames: AtomicU64,
    requests: AtomicU64,
    queries: AtomicU64,
    protocol_errors: AtomicU64,
}

/// The service layer's series, registered on the router's registry so
/// one scrape covers the whole server — coordinator, shards, gateway
/// and sockets. Answered over the wire by [`wire::kind::METRICS_QUERY`].
struct NetMetrics {
    /// `gbnb_net_connections_total` — connections accepted.
    connections: Counter,
    /// `gbnb_net_frames_in_total{kind=...}` — frames received, by kind.
    frames_in_bundle: Counter,
    frames_in_query: Counter,
    frames_in_metrics: Counter,
    /// `gbnb_net_frames_out_total` — reply frames written.
    frames_out: Counter,
    /// `gbnb_net_decode_errors_total` — connections dropped for
    /// protocol violations.
    decode_errors: Counter,
    /// `gbnb_net_service_ns{kind=...}` — time to serve one burst's
    /// coordinator bundle / status snapshot / metrics render.
    service_bundle_ns: Histogram,
    service_query_ns: Histogram,
    service_metrics_ns: Histogram,
}

impl NetMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        let buckets = latency_buckets_ns();
        NetMetrics {
            connections: registry.counter("gbnb_net_connections_total", &[]),
            frames_in_bundle: registry
                .counter("gbnb_net_frames_in_total", &[("kind", "request_bundle")]),
            frames_in_query: registry.counter("gbnb_net_frames_in_total", &[("kind", "query")]),
            frames_in_metrics: registry
                .counter("gbnb_net_frames_in_total", &[("kind", "metrics_query")]),
            frames_out: registry.counter("gbnb_net_frames_out_total", &[]),
            decode_errors: registry.counter("gbnb_net_decode_errors_total", &[]),
            service_bundle_ns: registry.histogram(
                "gbnb_net_service_ns",
                &[("kind", "bundle")],
                &buckets,
            ),
            service_query_ns: registry.histogram(
                "gbnb_net_service_ns",
                &[("kind", "query")],
                &buckets,
            ),
            service_metrics_ns: registry.histogram(
                "gbnb_net_service_ns",
                &[("kind", "metrics")],
                &buckets,
            ),
        }
    }
}

/// A clonable remote control for a running server: its address and the
/// stop switch.
#[derive(Clone, Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The bound address (with the OS-chosen port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to wind down: stop accepting, answer in-flight
    /// frames, close connections, return from `serve`.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
    }
}

/// A bound-but-not-yet-serving coordinator server. Construction
/// validates the config and binds the listener; [`NetServer::serve`]
/// blocks the calling thread until drain (spawn it where concurrent
/// clients are needed).
pub struct NetServer {
    listener: TcpListener,
    addr: SocketAddr,
    root: Interval,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl NetServer {
    /// Validates `config`, binds `addr` (use port 0 for an OS-chosen
    /// loopback port) and returns the idle server.
    pub fn bind(
        addr: impl ToSocketAddrs,
        root: Interval,
        config: ServerConfig,
    ) -> Result<NetServer, ServerError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(NetServer {
            listener,
            addr,
            root,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle usable from other threads while `serve` runs.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.addr,
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// Runs the server to completion: accept, serve, supervise, drain.
    ///
    /// With [`ServerConfig::durability`] set, startup first recovers any
    /// campaign committed on the backend (snapshot + log tails, exact
    /// pre-crash interval sets) and serves the resumed state; a fresh
    /// backend opens a new log epoch instead.
    pub fn serve(self) -> Result<ServerReport, ServerError> {
        let started = Instant::now();
        let durability = self.config.durability.clone();
        let mut recovery = None;
        let router = match &durability {
            Some(policy) => {
                if WalStore::exists(policy.backend.as_ref()).map_err(ServerError::Io)? {
                    let (wal, state) = WalStore::recover(Arc::clone(&policy.backend))?;
                    recovery = Some(RecoveryStats {
                        replayed_records: state.replayed_records,
                        replayed_ops: state.replayed_ops,
                        torn_truncations: state.torn_truncations,
                        recovered_length: state.total_length(),
                    });
                    // The log is authoritative about sharding: restoring
                    // into a different shard count would break per-shard
                    // segment replay on the *next* recovery.
                    ShardRouter::restore(
                        self.root.clone(),
                        state.shard_intervals,
                        state.solution,
                        self.config.coordinator.clone(),
                    )?
                    .with_wal(Arc::new(wal))
                } else {
                    let router = ShardRouter::new(
                        self.root.clone(),
                        self.config.shards,
                        self.config.coordinator.clone(),
                    )?;
                    let (intervals, solution) = router.snapshot();
                    let wal = WalStore::create(
                        Arc::clone(&policy.backend),
                        &intervals,
                        solution.as_ref(),
                    )?;
                    router.with_wal(Arc::new(wal))
                }
            }
            None => ShardRouter::new(
                self.root.clone(),
                self.config.shards,
                self.config.coordinator.clone(),
            )?,
        };
        let gateway_tier = self
            .config
            .aggregate
            .map(|policy| ContactGateway::new(&router, policy));
        let net_metrics = NetMetrics::register(router.metrics());
        let counters = Counters::default();
        let live = AtomicUsize::new(0);
        let supervising = AtomicBool::new(true);
        // The accept queue: a single mpsc receiver shared by the pool
        // behind a mutex (the std-backed channel shim has no
        // multi-consumer receiver; contention here is one lock per
        // *connection*, not per frame).
        let (conn_tx, conn_rx) = crossbeam::channel::unbounded::<TcpStream>();
        let conn_rx = std::sync::Mutex::new(conn_rx);
        self.listener.set_nonblocking(true)?;

        crossbeam::thread::scope(|scope| -> Result<(), ServerError> {
            let router = &router;
            let counters = &counters;
            let live = &live;
            let config = &self.config;
            let shutdown = self.shutdown.as_ref();
            let gateway = gateway_tier.as_ref();
            let conn_rx = &conn_rx;
            let supervising = &supervising;
            let net_metrics = &net_metrics;
            for _ in 0..config.handler_threads.max(1) {
                scope.spawn(move |_| loop {
                    let next = conn_rx.lock().expect("poisoned accept queue").recv();
                    let Ok(stream) = next else { break };
                    serve_connection(
                        stream,
                        router,
                        gateway,
                        config,
                        counters,
                        net_metrics,
                        shutdown,
                        started,
                    );
                    live.fetch_sub(1, Ordering::AcqRel);
                });
            }

            // Supervisor: the same housekeeping the in-process runtime
            // runs — holder expiry recovers intervals from vanished
            // connections, the deadline flush keeps gateway submitters
            // live below the fan-in.
            let durability = durability.as_ref();
            scope.spawn(move |_| {
                let mut tick = gateway
                    .map(|g| {
                        Duration::from_nanos(g.policy().max_delay_ns / 2)
                            .max(Duration::from_millis(1))
                    })
                    .unwrap_or(Duration::from_millis(5))
                    .min(Duration::from_millis(5));
                if let Some(policy) = durability {
                    tick = tick.min(policy.compact_every);
                }
                let mut last_compaction = Instant::now();
                while supervising.load(Ordering::Acquire) {
                    std::thread::sleep(tick);
                    let now_ns = started.elapsed().as_nanos() as u64;
                    if let Some(gateway) = gateway {
                        gateway.flush_stale(now_ns);
                    }
                    router.expire_stale_holders(now_ns);
                    if let Some(policy) = durability {
                        if last_compaction.elapsed() >= policy.compact_every {
                            // A failed compaction leaves the previous
                            // manifest committed; the store counts it on
                            // `gbnb_wal_compaction_failures_total`.
                            let _ = router.compact_wal();
                            last_compaction = Instant::now();
                        }
                    }
                }
                if let Some(gateway) = gateway {
                    gateway.flush_now(started.elapsed().as_nanos() as u64);
                }
            });

            // Acceptor (this thread). Non-blocking so stop/drain are
            // observed within one poll tick even with no traffic.
            loop {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                if config.drain_on_termination
                    && router.is_terminated()
                    && live.load(Ordering::Acquire) == 0
                {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        net_metrics.connections.inc();
                        live.fetch_add(1, Ordering::AcqRel);
                        if conn_tx.send(stream).is_err() {
                            live.fetch_sub(1, Ordering::AcqRel);
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        supervising.store(false, Ordering::Release);
                        return Err(ServerError::Io(e));
                    }
                }
            }
            // Wind-down: no new connections; handlers notice the flag
            // within one read timeout and close their connections.
            shutdown.store(true, Ordering::Release);
            drop(conn_tx);
            supervising.store(false, Ordering::Release);
            Ok(())
        })
        .expect("server scope panicked")?;

        // A *terminated* campaign gets one last compaction after every
        // handler is gone: the backend ends up holding the terminal
        // snapshot and no segments, so a restart replays nothing. A
        // server merely stopped mid-campaign skips this — its log tail
        // is the crash image a restart must replay.
        if durability.is_some() && router.is_terminated() {
            let _ = router.compact_wal();
        }
        let terminated = router.is_terminated();
        let solution = router.solution();
        Ok(ServerReport {
            proven_optimum: solution.as_ref().filter(|_| terminated).map(|s| s.cost),
            solution,
            terminated,
            connections: counters.connections.load(Ordering::Relaxed),
            frames: counters.frames.load(Ordering::Relaxed),
            bundles: counters.bundles.load(Ordering::Relaxed),
            batched_frames: counters.batched_frames.load(Ordering::Relaxed),
            requests: counters.requests.load(Ordering::Relaxed),
            queries: counters.queries.load(Ordering::Relaxed),
            protocol_errors: counters.protocol_errors.load(Ordering::Relaxed),
            router_contacts: router.contacts(),
            steals: router.steals(),
            coordinator_stats: router.stats(),
            gateway: gateway_tier.as_ref().map(|g| g.stats()),
            remaining: router.size(),
            recovery,
            wall: started.elapsed(),
        })
    }
}

/// Serves one connection until the peer hangs up, a protocol violation,
/// or server shutdown.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    router: &ShardRouter,
    gateway: Option<&ContactGateway<&ShardRouter>>,
    config: &ServerConfig,
    counters: &Counters,
    metrics: &NetMetrics,
    shutdown: &AtomicBool,
    started: Instant,
) {
    if stream.set_read_timeout(Some(config.read_timeout)).is_err()
        || stream
            .set_write_timeout(Some(config.write_timeout))
            .is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Wide buffers so a multiplexed burst (W frames back-to-back) fits
    // one fill on the way in and one flush on the way out.
    let mut reader = BufReader::with_capacity(BURST_BUFFER, read_half);
    let mut writer = BufWriter::with_capacity(BURST_BUFFER, stream);

    loop {
        let first = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(TransportError::Timeout) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(TransportError::Closed) => return,
            Err(TransportError::Io(_)) => return,
            Err(TransportError::Protocol(_)) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                metrics.decode_errors.inc();
                return;
            }
        };
        // Fold every complete frame already buffered into this service
        // round: one coordinator bundle for a burst of frames.
        let mut frames = vec![first];
        match drain_buffered_frames(&mut reader) {
            Ok(more) => frames.extend(more),
            Err(_) => {
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                metrics.decode_errors.inc();
                return;
            }
        }
        if serve_frames(
            frames,
            &mut writer,
            router,
            gateway,
            counters,
            metrics,
            started,
        )
        .is_err()
        {
            return;
        }
    }
}

/// Decodes, executes and answers one burst of frames. Any error — a
/// malformed frame, a dead socket, a torn-down gateway — ends the
/// connection.
fn serve_frames(
    frames: Vec<Frame>,
    writer: &mut BufWriter<TcpStream>,
    router: &ShardRouter,
    gateway: Option<&ContactGateway<&ShardRouter>>,
    counters: &Counters,
    metrics: &NetMetrics,
    started: Instant,
) -> Result<(), ()> {
    // (seq, request count) per request-bundle frame, for splitting the
    // combined response run back into per-frame reply frames.
    let mut slices: Vec<(u64, usize)> = Vec::with_capacity(frames.len());
    let mut combined: Vec<Request> = Vec::new();
    let mut replies: Vec<Frame> = Vec::new();

    for frame in &frames {
        match frame.kind {
            wire::kind::REQUEST_BUNDLE => {
                let requests = wire::parse_request_bundle(frame).map_err(|_| {
                    counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    metrics.decode_errors.inc();
                })?;
                counters.frames.fetch_add(1, Ordering::Relaxed);
                metrics.frames_in_bundle.inc();
                counters
                    .requests
                    .fetch_add(requests.len() as u64, Ordering::Relaxed);
                slices.push((frame.seq, requests.len()));
                combined.extend(requests);
            }
            wire::kind::QUERY => {
                counters.queries.fetch_add(1, Ordering::Relaxed);
                metrics.frames_in_query.inc();
                let t0 = Instant::now();
                let status = status_of(router);
                replies.push(wire::frame_status(frame.seq, &status));
                metrics
                    .service_query_ns
                    .observe(t0.elapsed().as_nanos() as u64);
            }
            wire::kind::METRICS_QUERY => {
                metrics.frames_in_metrics.inc();
                let t0 = Instant::now();
                // One scrape = the whole registry: router, shards,
                // coordinator operators, gateway and this net layer.
                let text = router.metrics().render_text();
                replies.push(wire::frame_metrics_text(frame.seq, &text));
                metrics
                    .service_metrics_ns
                    .observe(t0.elapsed().as_nanos() as u64);
            }
            _ => {
                // A response/status frame from a client is out of
                // contract.
                counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                metrics.decode_errors.inc();
                return Err(());
            }
        }
    }

    if !combined.is_empty() {
        counters.bundles.fetch_add(1, Ordering::Relaxed);
        counters
            .batched_frames
            .fetch_add(slices.len() as u64 - 1, Ordering::Relaxed);
        let now_ns = started.elapsed().as_nanos() as u64;
        let sent = combined.len();
        let t0 = Instant::now();
        let responses = match gateway {
            Some(gateway) => {
                let responses = gateway.submit(combined, now_ns);
                if responses.is_empty() && sent > 0 {
                    // Gateway torn down mid-submission (server drain).
                    return Err(());
                }
                responses
            }
            None => {
                let bundle = combined.into_iter().map(|r| router.envelope(r)).collect();
                router
                    .handle_bundle(bundle, now_ns)
                    .into_iter()
                    .map(|(_, response)| response)
                    .collect()
            }
        };
        metrics
            .service_bundle_ns
            .observe(t0.elapsed().as_nanos() as u64);
        debug_assert_eq!(responses.len(), sent, "one response per request");
        let mut responses = responses.into_iter();
        for (seq, count) in slices {
            let slice: Vec<_> = responses.by_ref().take(count).collect();
            replies.push(wire::frame_response_bundle(seq, &slice));
        }
    }

    metrics.frames_out.add(replies.len() as u64);
    for reply in &replies {
        write_frame(writer, reply).map_err(|_| ())?;
    }
    writer.flush().map_err(|_| ())
}

/// Snapshot of the router for a status reply.
fn status_of(router: &ShardRouter) -> RunStatus {
    let solution = router.solution();
    RunStatus {
        terminated: router.is_terminated(),
        cutoff: router.cutoff(),
        solution,
        cardinality: router.cardinality() as u64,
        contacts: router.contacts(),
        steals: router.steals(),
    }
}
