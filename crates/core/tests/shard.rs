//! Sharded-coordinator tests, including the multi-threaded stress tests
//! CI's `shard-stress` job runs under both serial and parallel test
//! threading: concurrent workers hammering a [`ShardRouter`] must
//! conserve work exactly, steal across shards when their own drains,
//! and only see `Terminate` at global termination.

use gridbnb_core::checkpoint::CheckpointStore;
use gridbnb_core::{
    ConfigError, Coordinator, CoordinatorConfig, Interval, IntervalSet, Request, Response,
    ShardRouter, Solution, UBig, WorkerId,
};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

fn iv(a: u64, b: u64) -> Interval {
    Interval::new(UBig::from(a), UBig::from(b))
}

fn config(threshold: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::from(threshold),
        holder_timeout_ns: 1_000_000_000,
        initial_upper_bound: Some(10_000),
    }
}

#[test]
fn zero_shards_is_rejected() {
    assert_eq!(
        ShardRouter::new(iv(0, 100), 0, config(1)).err(),
        Some(ConfigError::ZeroShards)
    );
    assert_eq!(
        ShardRouter::restore(iv(0, 100), Vec::new(), None, config(1)).err(),
        Some(ConfigError::ZeroShards)
    );
}

#[test]
fn invalid_coordinator_config_is_rejected_not_clamped() {
    let bad = CoordinatorConfig {
        duplication_threshold: UBig::zero(),
        ..CoordinatorConfig::default()
    };
    assert_eq!(
        ShardRouter::new(iv(0, 100), 4, bad).err(),
        Some(ConfigError::ZeroDuplicationThreshold)
    );
}

#[test]
fn shards_partition_the_root_exactly() {
    for shards in [1usize, 2, 3, 4, 7, 16] {
        let root = iv(10, 10 + 1000);
        let router = ShardRouter::new(root.clone(), shards, config(1)).unwrap();
        assert_eq!(router.shard_count(), shards);
        assert_eq!(router.size(), root.length());
        assert_eq!(router.cardinality(), shards.min(1000));
        router.check_invariants().unwrap();
        // The slices tile the root with no gap and no overlap.
        let (snapshot, _) = router.snapshot();
        let mut union = IntervalSet::new();
        for shard in snapshot {
            for interval in shard {
                union.insert(interval);
            }
        }
        assert_eq!(union.size(), root.length());
        assert!(union.covers(&root));
    }
}

#[test]
fn more_shards_than_numbers_leaves_excess_shards_empty() {
    let router = ShardRouter::new(iv(0, 3), 8, config(1)).unwrap();
    assert_eq!(router.size(), UBig::from(3u64));
    assert!(!router.is_terminated());
    router.check_invariants().unwrap();
    // An empty root is terminated from the start, whatever S is.
    let empty = ShardRouter::new(iv(5, 5), 4, config(1)).unwrap();
    assert!(empty.is_terminated());
    assert!(matches!(
        empty.handle(
            Request::Join {
                worker: WorkerId(0),
                power: 1
            },
            0
        ),
        Response::Terminate
    ));
}

#[test]
fn routing_is_stable_and_complete() {
    let router = ShardRouter::new(iv(0, 1000), 4, config(1)).unwrap();
    for w in 0..64 {
        let shard = router.route(WorkerId(w));
        assert_eq!(shard, router.route(WorkerId(w)), "routing must be stable");
        assert!((shard.0 as usize) < router.shard_count());
        let envelope = router.envelope(Request::Leave {
            worker: WorkerId(w),
        });
        assert_eq!(envelope.shard, shard);
    }
}

/// Drives `workers` ids against the router until global termination,
/// each worker fully exploring every interval it is handed; returns the
/// union of explored numbers and the per-worker handout count.
fn drain(router: &ShardRouter, workers: &[WorkerId]) -> (IntervalSet, u64) {
    let mut explored = IntervalSet::new();
    let mut handouts = 0u64;
    let mut live: Vec<bool> = workers.iter().map(|_| true).collect();
    let mut now = 0u64;
    while live.iter().any(|&l| l) {
        for (i, &worker) in workers.iter().enumerate() {
            if !live[i] {
                continue;
            }
            now += 1;
            let response = router.handle(Request::RequestWork { worker, power: 10 }, now);
            match response {
                Response::Work { interval, .. } => {
                    handouts += 1;
                    explored.insert(interval);
                }
                Response::Terminate => live[i] = false,
                // Endgame: the rest is in other holders' hands — they
                // complete it on their turn of the round-robin.
                Response::Retry => {}
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    (explored, handouts)
}

#[test]
fn draining_covers_the_root_exactly_across_shards() {
    for shards in [1usize, 2, 4, 5] {
        let root = iv(0, 10_000);
        let router = ShardRouter::new(root.clone(), shards, config(1)).unwrap();
        let workers: Vec<WorkerId> = (0..6).map(WorkerId).collect();
        let (explored, handouts) = drain(&router, &workers);
        assert!(router.is_terminated());
        assert_eq!(router.size(), UBig::zero());
        assert!(explored.covers(&root), "S={shards}: coverage gap");
        assert_eq!(explored.size(), root.length());
        assert!(handouts > 0);
        router.check_invariants().unwrap();
    }
}

#[test]
fn unserved_shards_are_emptied_by_stealing() {
    // Two workers, eight shards: at least six slices can only leave
    // their shard through the stealing path.
    let root = iv(0, 8_000);
    let router = ShardRouter::new(root.clone(), 8, config(1)).unwrap();
    let workers: Vec<WorkerId> = (0..2).map(WorkerId).collect();
    let served: HashSet<u32> = workers.iter().map(|&w| router.route(w).0).collect();
    let (explored, _) = drain(&router, &workers);
    assert!(router.is_terminated());
    assert!(explored.covers(&root));
    assert!(
        router.steals() >= (8 - served.len()) as u64,
        "expected ≥{} steals, saw {}",
        8 - served.len(),
        router.steals()
    );
    let stats = router.stats();
    assert_eq!(stats.steals_donated, stats.steals_adopted);
    assert_eq!(stats.steals_donated, router.steals());
}

#[test]
fn stealing_splits_a_held_interval_without_duplicating_it() {
    // One shard holds everything through one worker; a worker homed on
    // the other shard must receive the back half of the held interval.
    let root = iv(0, 1_000);
    let router = ShardRouter::new(root.clone(), 2, config(1)).unwrap();
    let (w0, w1) = distinct_home_workers(&router);
    let first = match router.handle(
        Request::Join {
            worker: w0,
            power: 10,
        },
        0,
    ) {
        Response::Work { interval, .. } => interval,
        other => panic!("expected work, got {other:?}"),
    };
    // w0 holds one slice in full; drain the *other* slice's shard by
    // letting w1 take and complete it, then ask again: the only work
    // left is w0's held interval on the other shard.
    let second = match router.handle(
        Request::Join {
            worker: w1,
            power: 10,
        },
        1,
    ) {
        Response::Work { interval, .. } => interval,
        other => panic!("expected work, got {other:?}"),
    };
    assert!(!first.overlaps(&second));
    let third = match router.handle(
        Request::RequestWork {
            worker: w1,
            power: 10,
        },
        2,
    ) {
        Response::Work { interval, .. } => interval,
        other => panic!("expected stolen work, got {other:?}"),
    };
    assert_eq!(router.steals(), 1, "third assignment must be a steal");
    assert!(
        !third.overlaps(&second),
        "stolen interval duplicates completed work"
    );
    assert!(
        first.contains_interval(&third),
        "steal must split the held interval"
    );
    assert!(third.length() < first.length());
    router.check_invariants().unwrap();
}

/// Two workers whose home shards differ (S=2 routing is a hash, so
/// scan).
fn distinct_home_workers(router: &ShardRouter) -> (WorkerId, WorkerId) {
    let w0 = WorkerId(0);
    let home = router.route(w0);
    let other = (1..64)
        .map(WorkerId)
        .find(|&w| router.route(w) != home)
        .expect("some worker must hash to the other shard");
    (w0, other)
}

#[test]
fn solution_reports_propagate_to_all_shards() {
    let router = ShardRouter::new(iv(0, 1_000), 4, config(1)).unwrap();
    let reporter = WorkerId(3);
    match router.handle(
        Request::ReportSolution {
            worker: reporter,
            solution: Solution::new(777, vec![1, 2, 3]),
        },
        0,
    ) {
        Response::SolutionAck { cutoff } => assert_eq!(cutoff, Some(777)),
        other => panic!("unexpected {other:?}"),
    }
    // Every shard hands out the merged cutoff, whichever worker asks.
    for w in 0..16 {
        match router.handle(
            Request::Join {
                worker: WorkerId(100 + w),
                power: 5,
            },
            1 + w,
        ) {
            Response::Work { cutoff, .. } => assert_eq!(cutoff, Some(777)),
            Response::Terminate => panic!("nothing should be terminated"),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(router.cutoff(), Some(777));
    assert_eq!(router.solution().map(|s| s.cost), Some(777));
    // A non-improving report does not regress anything.
    router.handle(
        Request::ReportSolution {
            worker: reporter,
            solution: Solution::new(900, vec![9]),
        },
        100,
    );
    assert_eq!(router.cutoff(), Some(777));
}

#[test]
fn expiry_sweeps_every_shard() {
    let router = ShardRouter::new(iv(0, 1_000), 4, config(1)).unwrap();
    for w in 0..8 {
        router.handle(
            Request::Join {
                worker: WorkerId(w),
                power: 5,
            },
            0,
        );
    }
    assert!(router.next_expiry_at().is_some());
    assert_eq!(router.expire_stale_holders(500), 0, "nobody stale yet");
    let expired = router.expire_stale_holders(2_000_000_000);
    assert_eq!(expired, 8, "all holders were stale");
    assert!(router.next_expiry_at().is_none());
    assert_eq!(router.size(), UBig::from(1_000u64), "expiry loses no work");
    router.check_invariants().unwrap();
}

#[test]
fn sharded_checkpoint_round_trips_through_the_store() {
    let dir = std::env::temp_dir().join(format!("gridbnb-shard-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::new(dir.join("intervals.txt"), dir.join("solution.txt"));

    let root = iv(0, 5_040);
    let router = ShardRouter::new(root.clone(), 3, config(8)).unwrap();
    for w in 0..5 {
        router.handle(
            Request::Join {
                worker: WorkerId(w),
                power: 10,
            },
            w,
        );
    }
    router.handle(
        Request::ReportSolution {
            worker: WorkerId(0),
            solution: Solution::new(42, vec![4, 2]),
        },
        9,
    );
    store.save_sharded(&router).unwrap();

    let (shards, solution) = store.load_sharded().unwrap();
    assert_eq!(shards.len(), 3);
    assert_eq!(solution.as_ref().map(|s| s.cost), Some(42));
    let restored = ShardRouter::restore(root.clone(), shards, solution, config(8)).unwrap();
    assert_eq!(restored.size(), router.size());
    assert_eq!(restored.cardinality(), router.cardinality());
    assert_eq!(restored.cutoff(), Some(42));
    restored.check_invariants().unwrap();

    // The same files also restore into a single merged coordinator —
    // the sharded format is a strict extension of the v1 format.
    let (flat, solution) = store.load().unwrap();
    let merged = Coordinator::restore(root, flat, solution, config(8));
    assert_eq!(merged.size(), router.size());
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Multi-threaded stress (the CI `shard-stress` target)
// ---------------------------------------------------------------------

/// `threads` workers drive the router concurrently to termination; each
/// returns the set of numbers it explored. The union must cover the
/// root exactly — no work lost to races between contacts, steals and
/// the termination count.
fn stress(shards: usize, threads: u64, root_len: u64) -> (ShardRouter, IntervalSet) {
    let root = iv(0, root_len);
    let router = ShardRouter::new(root.clone(), shards, config(1)).unwrap();
    let clock = AtomicU64::new(0);
    let mut explored = IntervalSet::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let router = &router;
            let clock = &clock;
            handles.push(scope.spawn(move || {
                let worker = WorkerId(t);
                let mut mine = IntervalSet::new();
                loop {
                    let now = clock.fetch_add(1, Ordering::Relaxed);
                    match router.handle(
                        Request::RequestWork {
                            worker,
                            power: 1 + t % 7,
                        },
                        now,
                    ) {
                        Response::Work { interval, .. } => {
                            // "Explore" the unit: split it into slices,
                            // reporting progress like a real worker so
                            // the coordinator copy shrinks under
                            // concurrent partitioning.
                            let mut live = interval;
                            while !live.is_empty() {
                                let step = live.length().div_rem_u64(3).0.max(UBig::one());
                                let reached = live.begin().add(&step);
                                mine.insert(Interval::new(live.begin().clone(), reached.clone()));
                                live.advance_begin(&reached);
                                if live.is_empty() {
                                    break;
                                }
                                let now = clock.fetch_add(1, Ordering::Relaxed);
                                match router.handle(
                                    Request::Update {
                                        worker,
                                        interval: live.clone(),
                                    },
                                    now,
                                ) {
                                    Response::UpdateAck { interval, .. } => {
                                        if interval.is_empty() {
                                            break;
                                        }
                                        live.retreat_end(interval.end());
                                    }
                                    other => panic!("unexpected update response {other:?}"),
                                }
                            }
                        }
                        Response::Terminate => break,
                        Response::Retry => std::thread::yield_now(),
                        other => panic!("unexpected work response {other:?}"),
                    }
                }
                mine
            }));
        }
        for h in handles {
            explored.union_with(&h.join().expect("stress worker panicked"));
        }
    });
    (router, explored)
}

#[test]
fn concurrent_drain_conserves_work_exactly() {
    for shards in [1usize, 2, 4] {
        let (router, explored) = stress(shards, 8, 50_000);
        assert!(router.is_terminated(), "S={shards}: did not terminate");
        assert_eq!(router.size(), UBig::zero());
        assert!(
            explored.covers(&iv(0, 50_000)),
            "S={shards}: concurrent run lost work"
        );
        router.check_invariants().unwrap();
    }
}

#[test]
fn concurrent_drain_with_more_shards_than_workers_steals() {
    let (router, explored) = stress(8, 3, 40_000);
    assert!(router.is_terminated());
    assert!(explored.covers(&iv(0, 40_000)));
    assert!(
        router.steals() > 0,
        "3 workers on 8 shards must steal to finish"
    );
}

#[test]
fn concurrent_termination_is_seen_by_every_worker() {
    // After a concurrent drain, any late request gets Terminate — the
    // non-empty count cannot under- or over-shoot.
    let (router, _) = stress(4, 6, 10_000);
    for w in 0..32 {
        assert!(matches!(
            router.handle(
                Request::RequestWork {
                    worker: WorkerId(w),
                    power: 3
                },
                u64::MAX - 1,
            ),
            Response::Terminate
        ));
    }
}
