//! End-to-end runtime tests: the threaded farmer–worker resolution must
//! always return the exact optimum — with many workers, heterogeneous
//! powers, crashes, rejoin, and checkpoint/restore.

use gridbnb_core::checkpoint::CheckpointStore;
use gridbnb_core::runtime::{
    run, run_with_coordinator, run_with_router, ChaosConfig, CheckpointPolicy, CrashPlan,
    RuntimeConfig,
};
use gridbnb_core::{Coordinator, CoordinatorConfig, UBig};
use gridbnb_engine::toy::FullEnumeration;
use gridbnb_engine::{solve, solve_interval};
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem, Problem};
use gridbnb_tsp::{TspInstance, TspProblem};
use std::time::Duration;

fn small_flowshop(seed: i64) -> FlowshopProblem {
    let instance = generate(9, 4, seed);
    FlowshopProblem::new(
        instance,
        BoundMode::Johnson(gridbnb_flowshop::bounds::PairSelection::All),
    )
}

fn fast_config(workers: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(workers);
    config.poll_nodes = 500;
    config.coordinator.duplication_threshold = UBig::from(32u64);
    config.coordinator.holder_timeout_ns = 20_000_000; // 20 ms
    config
}

#[test]
fn one_worker_matches_sequential() {
    let problem = small_flowshop(11);
    let sequential = solve(&problem, None);
    let report = run(&problem, &fast_config(1));
    assert_eq!(report.proven_optimum, sequential.best_cost);
    assert_eq!(report.solution.map(|s| s.cost), sequential.best_cost);
}

#[test]
fn many_workers_match_sequential() {
    let problem = small_flowshop(22);
    let expected = solve(&problem, None).best_cost;
    for workers in [2, 4, 8] {
        let report = run(&problem, &fast_config(workers));
        assert_eq!(
            report.proven_optimum, expected,
            "{workers} workers diverged"
        );
        // Under heavy test-host load (and with the combined
        // update-and-report contact shaving per-slice round-trips) one
        // worker may finish the tiny instance before the rest even
        // join, so only ≥ 1 is guaranteed — as in the sharded sibling.
        assert!(report.coordinator_stats.work_allocations >= 1);
    }
}

#[test]
fn pooling_toggle_is_exact_and_counted() {
    let problem = small_flowshop(55);
    let expected = solve(&problem, None).best_cost;
    let pooled = run(&problem, &fast_config(2));
    let scalar = run(&problem, &fast_config(2).with_pooling(false));
    assert_eq!(pooled.proven_optimum, expected);
    assert_eq!(scalar.proven_optimum, expected);
    // Pooled workers batch their bounds; scalar workers never do.
    assert!(pooled.total_bound_batches() > 0, "no pools were filled");
    assert_eq!(scalar.total_bound_batches(), 0);
    // Fill-time counting can only over-count relative to consumption.
    assert!(pooled.total_nodes_bounded() >= pooled.total_bound_calls());
    assert_eq!(scalar.total_nodes_bounded(), scalar.total_bound_calls());
    assert!(pooled.nodes_bounded_per_sec() > 0.0);
}

#[test]
fn heterogeneous_powers_still_exact() {
    let problem = small_flowshop(33);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(4);
    config.worker_powers = vec![20, 100, 350, 1000];
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
}

#[test]
fn initial_upper_bound_is_honored() {
    let problem = small_flowshop(44);
    let optimum = solve(&problem, None).best_cost.unwrap();
    // Exact-bound run: pure optimality proof, no solution produced.
    let config = fast_config(3).with_initial_upper_bound(optimum);
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, Some(optimum));
    assert!(report.solution.is_none());
    // Loose-bound run: the solution must be rediscovered.
    let config = fast_config(3).with_initial_upper_bound(optimum + 5);
    let report = run(&problem, &config);
    assert_eq!(report.solution.map(|s| s.cost), Some(optimum));
}

#[test]
fn crash_without_rejoin_preserves_exactness() {
    // FullEnumeration forces an exhaustive 109 600-node search so the
    // scripted crashes reliably fire mid-exploration.
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(4);
    config.poll_nodes = 200;
    config.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 0,
                after_nodes: 2_000,
                rejoin: false,
            },
            CrashPlan {
                worker_index: 2,
                after_nodes: 5_000,
                rejoin: false,
            },
        ],
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected, "crashes lost work");
    let crashes: u64 = report.workers.iter().map(|w| w.crashes).sum();
    assert_eq!(crashes, 2);
}

#[test]
fn crash_with_rejoin_preserves_exactness() {
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(3);
    config.poll_nodes = 200;
    config.chaos = Some(ChaosConfig {
        crashes: vec![CrashPlan {
            worker_index: 1,
            after_nodes: 1_000,
            rejoin: true,
        }],
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert!(report.workers[1].crashes == 1);
}

#[test]
fn all_workers_crash_then_rejoin_still_completes() {
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(3);
    config.poll_nodes = 200;
    config.chaos = Some(ChaosConfig {
        crashes: (0..3)
            .map(|i| CrashPlan {
                worker_index: i,
                after_nodes: 1_000 + 700 * i as u64,
                rejoin: true,
            })
            .collect(),
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    let crashes: u64 = report.workers.iter().map(|w| w.crashes).sum();
    assert_eq!(crashes, 3);
}

#[test]
fn coalescing_strictly_reduces_contacts() {
    // One worker, fixed workload: the exploration is deterministic, so
    // the per-slice contact count is too. Folding 8 slices per contact
    // must strictly cut worker contacts while the proof stays exact.
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(1);
    config.poll_nodes = 100;
    let per_slice = run(&problem, &config);
    let coalesced_config = config.clone().with_coalescing(8);
    let coalesced = run(&problem, &coalesced_config);
    assert_eq!(per_slice.proven_optimum, expected);
    assert_eq!(coalesced.proven_optimum, expected);
    assert!(
        coalesced.total_contacts() < per_slice.total_contacts(),
        "coalescing must reduce contacts: {} vs {}",
        coalesced.total_contacts(),
        per_slice.total_contacts()
    );
    // Sanity on the counters themselves: contacts include every unit
    // request and every checkpoint contact.
    assert!(per_slice.total_contacts() > per_slice.coordinator_stats.work_allocations);
}

#[test]
fn coalesced_sharded_runtime_stays_exact() {
    // Coalescing + combined update-and-report + work-request bundles
    // across the direct-shard transport: the proof must stay exact and
    // worker-side update counting must still match the coordinator's.
    let problem = small_flowshop(55);
    let expected = solve(&problem, None).best_cost;
    for shards in [1usize, 4] {
        let config = fast_config(4).with_shards(shards).with_coalescing(4);
        let report = run(&problem, &config);
        assert_eq!(
            report.proven_optimum, expected,
            "{shards} shards with coalescing diverged"
        );
        let updates: u64 = report.workers.iter().map(|w| w.checkpoint_ops).sum();
        assert_eq!(updates, report.coordinator_stats.updates);
    }
}

#[test]
fn coalesced_runtime_survives_crashes() {
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(4).with_shards(4).with_coalescing(6);
    config.poll_nodes = 200;
    config.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 0,
                after_nodes: 2_000,
                rejoin: true,
            },
            CrashPlan {
                worker_index: 2,
                after_nodes: 5_000,
                rejoin: false,
            },
        ],
    });
    let report = run(&problem, &config);
    assert_eq!(
        report.proven_optimum, expected,
        "coalesced crashes lost work"
    );
    let crashes: u64 = report.workers.iter().map(|w| w.crashes).sum();
    assert_eq!(crashes, 2);
}

#[test]
fn sharded_runtime_matches_sequential() {
    let problem = small_flowshop(55);
    let expected = solve(&problem, None).best_cost;
    for shards in [2usize, 4, 8] {
        let config = fast_config(4).with_shards(shards);
        let report = run(&problem, &config);
        assert_eq!(report.proven_optimum, expected, "{shards} shards diverged");
        // Under heavy test-host load one worker may finish the tiny
        // instance before the rest even join, so only ≥ 1 is guaranteed.
        assert!(report.coordinator_stats.work_allocations >= 1);
        // Stealing bookkeeping is symmetric: every donation is adopted.
        assert_eq!(
            report.coordinator_stats.steals_donated,
            report.coordinator_stats.steals_adopted
        );
        assert_eq!(report.coordinator_stats.steals_donated, report.steals);
    }
}

#[test]
fn sharded_runtime_with_more_shards_than_workers_steals_to_finish() {
    // One worker, eight shards: seven slices can only be reached through
    // the work-stealing path, and the run must still be exact.
    let problem = small_flowshop(66);
    let expected = solve(&problem, None).best_cost;
    let config = fast_config(1).with_shards(8);
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert!(
        report.steals >= 7,
        "expected ≥7 steals, saw {}",
        report.steals
    );
}

#[test]
fn sharded_runtime_survives_crashes() {
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(4).with_shards(4);
    config.poll_nodes = 200;
    config.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 0,
                after_nodes: 2_000,
                rejoin: true,
            },
            CrashPlan {
                worker_index: 2,
                after_nodes: 5_000,
                rejoin: false,
            },
        ],
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected, "sharded crashes lost work");
    let crashes: u64 = report.workers.iter().map(|w| w.crashes).sum();
    assert_eq!(crashes, 2);
}

#[test]
fn sharded_heterogeneous_powers_still_exact() {
    let problem = small_flowshop(77);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(4).with_shards(3);
    config.worker_powers = vec![20, 100, 350, 1000];
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
}

#[test]
fn sharded_checkpoint_written_and_restorable() {
    use gridbnb_core::ShardRouter;
    let dir = std::env::temp_dir().join(format!("gridbnb-rt-shckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::new(dir.join("intervals.txt"), dir.join("solution.txt"));

    let problem = small_flowshop(88);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(3).with_shards(3);
    config.checkpoint = Some(CheckpointPolicy {
        store: store.clone(),
        every: Duration::from_millis(5),
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert!(report.farmer_checkpoints >= 1);
    // The final checkpoint reflects termination and restores cleanly
    // into a fresh router.
    let (shards, solution) = store.load_sharded().unwrap();
    assert!(shards.iter().all(|s| s.is_empty()));
    assert_eq!(solution.as_ref().map(|s| s.cost), expected);
    let shape = problem.shape();
    let restored =
        ShardRouter::restore(shape.root_range(), shards, solution, config.coordinator).unwrap();
    assert!(restored.is_terminated());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coalesced_sharded_mid_run_checkpoint_restores_without_losing_intervals() {
    // The coalesce × checkpoint corner: a sharded checkpoint taken
    // mid-run, while workers hold units and their progress arrived
    // through coalesced bundles (UpdateAndReport, mixed-worker
    // groups), must restore into a router that (a) lost no interval
    // length and (b) resumes under coalescing to the globally exact
    // optimum. Driven deterministically: each worker's explored prefix
    // is solved sequentially and reported, so the checkpoint state plus
    // the reports is a faithful mid-run snapshot.
    use gridbnb_core::{Request, Response, ShardRouter, WorkerId};
    use gridbnb_engine::Solution;
    let dir = std::env::temp_dir().join(format!("gridbnb-rt-coalesce-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::new(dir.join("intervals.txt"), dir.join("solution.txt"));

    let problem = small_flowshop(123);
    let shape = problem.shape();
    let root = shape.root_range();
    let expected = solve(&problem, None).best_cost;
    let coordinator_config = CoordinatorConfig {
        duplication_threshold: UBig::from(32u64),
        holder_timeout_ns: 20_000_000,
        initial_upper_bound: None,
    };
    let router = ShardRouter::new(root.clone(), 4, coordinator_config.clone()).unwrap();
    let mut pending_report: Option<Solution> = None;
    for w in 0..3u64 {
        let worker = WorkerId(w);
        let live = match router.handle(Request::Join { worker, power: 100 }, w + 1) {
            Response::Work { interval, .. } => interval,
            other => panic!("join failed: {other:?}"),
        };
        // Explore the first third of the unit sequentially, then ship
        // the progress the way a coalescing worker would: a combined
        // UpdateAndReport bundle — for the last worker, a mixed-worker
        // bundle pairing its Update with the previous prefix's report.
        let cut = live.begin().add(&live.length().div_rem_u64(3).0);
        let (prefix, rest) = live.split_at(&cut);
        let prefix_best = solve_interval(&problem, &prefix, None).best;
        let bundle = if w < 2 {
            pending_report = prefix_best.clone();
            vec![router.envelope(Request::UpdateAndReport {
                worker,
                interval: rest.clone(),
                solution: prefix_best,
            })]
        } else {
            let mut bundle = Vec::new();
            if let Some(solution) = pending_report.take() {
                bundle.push(router.envelope(Request::ReportSolution {
                    worker: WorkerId(1),
                    solution,
                }));
            }
            bundle.push(router.envelope(Request::UpdateAndReport {
                worker,
                interval: rest.clone(),
                solution: prefix_best,
            }));
            bundle
        };
        for (_, response) in router.handle_bundle(bundle, w + 10) {
            assert!(!matches!(response, Response::Terminate));
        }
    }

    // Mid-run sharded save: holders attached, progress applied.
    store.save_sharded(&router).unwrap();
    let size_at_save = router.size();
    assert!(!size_at_save.is_zero(), "checkpoint must be mid-run");
    let (shards, solution) = store.load_sharded().unwrap();
    assert_eq!(shards.len(), 4);
    let restored = ShardRouter::restore(root, shards, solution, coordinator_config).unwrap();
    // No lost intervals: the restored unexplored length is exactly the
    // live router's (the snapshot is taken under the steal gate, so no
    // in-flight interval can be missed).
    assert_eq!(restored.size(), size_at_save);

    // Resume under coalescing + shards: the proof must complete to the
    // global optimum (explored prefixes are covered by the reported
    // solutions the checkpoint carried).
    let config = fast_config(4).with_shards(4).with_coalescing(4);
    let report = run_with_router(&problem, restored, &config);
    assert_eq!(report.proven_optimum, expected, "resumed proof diverged");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coalesced_sharded_checkpoint_files_written_and_restorable() {
    // End-to-end variant: a live coalesced + sharded run checkpointing
    // on a short period; the final file restores to the terminal state
    // with the proven solution.
    use gridbnb_core::ShardRouter;
    let dir = std::env::temp_dir().join(format!("gridbnb-rt-coalesce-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::new(dir.join("intervals.txt"), dir.join("solution.txt"));

    let problem = small_flowshop(88);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(3).with_shards(3).with_coalescing(4);
    config.checkpoint = Some(CheckpointPolicy {
        store: store.clone(),
        every: Duration::from_millis(5),
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert!(report.farmer_checkpoints >= 1);
    let (shards, solution) = store.load_sharded().unwrap();
    assert!(shards.iter().all(|s| s.is_empty()));
    assert_eq!(solution.as_ref().map(|s| s.cost), expected);
    let shape = problem.shape();
    let restored =
        ShardRouter::restore(shape.root_range(), shards, solution, config.coordinator).unwrap();
    assert!(restored.is_terminated());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gateway_sharded_runtime_stays_exact_and_routes_all_contacts() {
    // Gateway + coalescing + shards end-to-end: exact proof, every
    // worker contact routed through the gateway, and the router's
    // lock-acquiring contact count bounded by the submission count.
    let problem = small_flowshop(55);
    let expected = solve(&problem, None).best_cost;
    for shards in [1usize, 4] {
        let config = fast_config(4)
            .with_shards(shards)
            .with_coalescing(4)
            .with_gateway(6);
        let report = run(&problem, &config);
        assert_eq!(
            report.proven_optimum, expected,
            "{shards} shards with a gateway diverged"
        );
        let stats = report.gateway.expect("gateway stats");
        assert_eq!(stats.submissions, report.total_contacts());
        assert!(report.router_contacts > 0);
        let updates: u64 = report.workers.iter().map(|w| w.checkpoint_ops).sum();
        assert_eq!(updates, report.coordinator_stats.updates);
    }
}

#[test]
#[should_panic(expected = "gateway.max_delay_ns must stay below")]
fn gateway_delay_at_or_above_holder_timeout_fails_fast() {
    let problem = small_flowshop(11);
    let mut config = fast_config(2);
    config.gateway = Some(gridbnb_core::GatewayPolicy::new(
        4,
        config.coordinator.holder_timeout_ns,
    ));
    let _ = run(&problem, &config);
}

#[test]
#[should_panic(expected = "invalid coordinator config")]
fn invalid_config_fails_fast_instead_of_clamping() {
    let problem = small_flowshop(11);
    let mut config = fast_config(1);
    config.coordinator.duplication_threshold = UBig::zero();
    let _ = run(&problem, &config);
}

#[test]
#[should_panic(expected = "at least one shard")]
fn zero_shards_fails_fast() {
    let problem = small_flowshop(11);
    let config = fast_config(1).with_shards(0);
    let _ = run(&problem, &config);
}

#[test]
#[should_panic(expected = "worker_powers must not be empty")]
fn empty_worker_powers_fails_fast() {
    let problem = small_flowshop(11);
    let mut config = fast_config(2);
    config.worker_powers = Vec::new();
    let _ = run(&problem, &config);
}

#[test]
fn works_on_tsp_too() {
    let instance = TspInstance::random_euclidean(9, 123);
    let expected = instance.brute_optimum();
    let problem = TspProblem::new(instance);
    let report = run(&problem, &fast_config(4));
    assert_eq!(report.proven_optimum, Some(expected));
}

#[test]
fn checkpoint_files_written_and_restorable() {
    let dir = std::env::temp_dir().join(format!("gridbnb-rt-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = CheckpointStore::new(dir.join("intervals.txt"), dir.join("solution.txt"));

    let problem = small_flowshop(88);
    let expected = solve(&problem, None).best_cost;
    let mut config = fast_config(3);
    config.checkpoint = Some(CheckpointPolicy {
        store: store.clone(),
        every: Duration::from_millis(5),
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert!(report.farmer_checkpoints >= 1);
    // The final checkpoint reflects termination: no intervals left, and
    // the solution matches.
    let (intervals, solution) = store.load().unwrap();
    assert!(intervals.is_empty());
    assert_eq!(solution.map(|s| s.cost), expected);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_resumes_partial_run() {
    // Simulate a farmer failure mid-run: the left half was explored (its
    // best is in SOLUTION), only the right half remains in INTERVALS.
    let problem = small_flowshop(99);
    let shape = problem.shape();
    let total = shape.root_range();
    let cut = total.end().div_rem_u64(3).0;
    let (left, right) = total.split_at(&cut);
    let left_report = solve_interval(&problem, &left, None);

    let coordinator = Coordinator::restore(
        total.clone(),
        vec![right],
        left_report.best.clone(),
        CoordinatorConfig {
            duplication_threshold: UBig::from(32u64),
            holder_timeout_ns: 20_000_000,
            initial_upper_bound: None,
        },
    );
    let config = fast_config(4);
    let report = run_with_coordinator(&problem, coordinator, &config);
    let expected = solve(&problem, None).best_cost;
    assert_eq!(report.proven_optimum, expected);
}

#[test]
fn report_accounting_is_consistent() {
    let problem = small_flowshop(111);
    let report = run(&problem, &fast_config(4));
    // Redundancy is a fraction in [0, 1).
    let r = report.redundancy();
    assert!((0.0..1.0).contains(&r), "redundancy {r}");
    // Workers did some exploring and some checkpointing.
    assert!(report.total_explored() > 0);
    let updates: u64 = report.workers.iter().map(|w| w.checkpoint_ops).sum();
    assert_eq!(updates, report.coordinator_stats.updates);
    // Handouts are conserved: the units the workers saw are exactly the
    // allocations the coordinator counted. (Per-worker `units >= 1` is
    // NOT an invariant — on a tiny instance a late-joining worker can
    // legitimately drain zero units when the search finishes first, and
    // asserting it made this test flake roughly once per ten runs.)
    let units: u64 = report.workers.iter().map(|w| w.units).sum();
    assert_eq!(units, report.coordinator_stats.work_allocations);
    assert!(units >= 1, "somebody must have processed a unit");
    // Busy fractions are sane.
    assert!(report.worker_exploitation() > 0.0);
    assert!(report.worker_exploitation() <= 1.0 + 1e-9);
    assert!(report.farmer_exploitation() < 1.0);
}

#[test]
fn consumed_length_covers_root() {
    let problem = small_flowshop(222);
    let report = run(&problem, &fast_config(4));
    let mut consumed = UBig::zero();
    for w in &report.workers {
        consumed += &w.consumed;
    }
    assert!(
        consumed >= report.root_length,
        "explored length {consumed} must cover the root {}",
        report.root_length
    );
}
