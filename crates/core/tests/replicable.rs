//! Replicable-mode tests: same seed, same search.
//!
//! The headline property (after Archibald et al., *Replicable Parallel
//! Branch and Bound Search*): two deterministic replicable runs with
//! the same seed produce **byte-identical** run-traces, identical
//! per-shard counters, and identical node/steal totals — on flowshop
//! *and* QAP, across random seeds. The satellites pin the steal
//! counter's quiesce contract, trace-driven replay against live router
//! snapshots, and determinism under scripted crashes + holder expiry.

use gridbnb_core::runtime::{run, ChaosConfig, CrashPlan, RunReport, RuntimeConfig};
use gridbnb_core::{
    Interval, MetricsRegistry, Request, Response, RunTrace, ShardEnvelope, ShardId, ShardRouter,
    TraceMeta, TraceReplayer, UBig, WorkerId,
};
use gridbnb_engine::solve;
use gridbnb_engine::toy::FullEnumeration;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem, Problem};
use gridbnb_qap::{Bound, QapInstance, QapProblem};
use proptest::prelude::*;
use std::sync::Arc;

fn small_flowshop(seed: i64) -> FlowshopProblem {
    let instance = generate(9, 4, seed);
    FlowshopProblem::new(
        instance,
        BoundMode::Johnson(gridbnb_flowshop::bounds::PairSelection::All),
    )
}

fn small_qap(seed: u64) -> QapProblem {
    QapProblem::new(QapInstance::nugent_style(3, 3, seed), Bound::GilmoreLawler)
}

fn replicable_config(workers: usize, shards: usize, seed: u64) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(workers)
        .with_shards(shards)
        .with_replicable(seed);
    config.poll_nodes = 500;
    config.coordinator.duplication_threshold = UBig::from(32u64);
    config.coordinator.holder_timeout_ns = 20_000_000;
    config
}

/// Asserts the full cross-run equivalence contract between two
/// deterministic replicable reports: byte-identical traces, identical
/// per-shard counters, identical node and steal totals.
fn assert_equivalent(a: &RunReport, b: &RunReport) {
    let ta = a.trace.as_ref().expect("run a recorded no trace");
    let tb = b.trace.as_ref().expect("run b recorded no trace");
    assert_eq!(ta.encode(), tb.encode(), "traces are not byte-identical");
    assert!(
        gridbnb_core::diff_traces(&ta.events(), &tb.events()).is_none(),
        "diff_traces disagrees with byte equality"
    );
    assert_eq!(a.shard_stats, b.shard_stats, "per-shard counters diverge");
    assert_eq!(a.total_explored(), b.total_explored());
    assert_eq!(a.steals, b.steals);
    assert_eq!(a.steals, ta.steal_count(), "trace missed a steal");
    assert_eq!(a.proven_optimum, b.proven_optimum);
    assert_eq!(
        a.solution.as_ref().map(|s| s.cost),
        b.solution.as_ref().map(|s| s.cost)
    );
}

/// Replays a finished run's trace from the partitioned root and checks
/// it lands exactly on the final state: every shard drained, the best
/// solution equal to the report's.
fn replay_to_final<P: Problem>(problem: &P, report: &RunReport, shards: usize) {
    let trace = report.trace.as_ref().expect("no trace");
    let root = problem.shape().root_range();
    let mut replayer = TraceReplayer::new(&root, shards);
    replayer.replay(&trace.events()).expect("replay failed");
    replayer
        .verify_snapshot(&(vec![Vec::new(); shards], report.solution.clone()))
        .expect("replayed end state is not the drained final state");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline: flowshop, W=8 S=4, random seeds — two same-seed
    /// replicable runs are byte-identical and exact.
    #[test]
    fn flowshop_same_seed_runs_are_byte_identical(
        seed in any::<u64>(),
        instance_seed in 1i64..500,
    ) {
        let problem = small_flowshop(instance_seed);
        let expected = solve(&problem, None).best_cost;
        let config = replicable_config(8, 4, seed);
        let a = run(&problem, &config);
        let b = run(&problem, &config);
        prop_assert_eq!(a.proven_optimum, expected);
        assert_equivalent(&a, &b);
        replay_to_final(&problem, &a, 4);
    }

    /// Same contract on a different problem family: QAP under the
    /// Gilmore–Lawler bound.
    #[test]
    fn qap_same_seed_runs_are_byte_identical(
        seed in any::<u64>(),
        instance_seed in 1u64..500,
    ) {
        let problem = small_qap(instance_seed);
        let expected = solve(&problem, None).best_cost;
        let config = replicable_config(8, 4, seed);
        let a = run(&problem, &config);
        let b = run(&problem, &config);
        prop_assert_eq!(a.proven_optimum, expected);
        assert_equivalent(&a, &b);
        replay_to_final(&problem, &a, 4);
    }
}

/// Different seeds may legally search differently, but each must still
/// prove the same optimum.
#[test]
fn different_seeds_stay_exact() {
    let problem = small_flowshop(77);
    let expected = solve(&problem, None).best_cost;
    for seed in [0u64, 1, 42, u64::MAX] {
        let report = run(&problem, &replicable_config(8, 4, seed));
        assert_eq!(report.proven_optimum, expected, "seed {seed} diverged");
    }
}

/// Crash + holder-expiry determinism: the deterministic driver runs on
/// a logical clock, so scripted crashes and the resulting holder
/// expiries land on the same tick every run — same seed twice must
/// still be byte-identical, and still exact.
#[test]
fn crashes_and_expiry_are_deterministic() {
    // FullEnumeration forces an exhaustive 109 600-node search so the
    // scripted crashes reliably fire mid-exploration (a pruned flowshop
    // run can finish before a late worker ever reaches its trigger).
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = replicable_config(6, 3, 2007);
    config.poll_nodes = 200;
    config.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 2,
                after_nodes: 2_000,
                rejoin: false,
            },
            CrashPlan {
                worker_index: 4,
                after_nodes: 5_000,
                rejoin: true,
            },
        ],
    });
    let a = run(&problem, &config);
    let b = run(&problem, &config);
    assert_eq!(a.proven_optimum, expected);
    assert_equivalent(&a, &b);
    assert_eq!(a.workers[2].crashes, 1, "scripted crash did not fire");
    assert_eq!(a.workers[4].crashes, 1);
    replay_to_final(&problem, &a, 3);
}

/// The trace metrics agree with the trace itself when the run records
/// into an injected registry.
#[test]
fn trace_metrics_count_every_event() {
    let registry = MetricsRegistry::new();
    let problem = small_flowshop(13);
    let mut config = replicable_config(4, 2, 9);
    config.metrics = Some(registry.clone());
    let report = run(&problem, &config);
    let trace = report.trace.expect("no trace");
    assert_eq!(
        registry.snapshot().counter("gbnb_trace_events_total"),
        trace.len() as u64
    );
    assert!(!trace.is_empty(), "a full run must produce events");
}

fn iv(a: u64, b: u64) -> Interval {
    Interval::new(UBig::from(a), UBig::from(b))
}

/// Satellite: `ShardRouter::steals()` quiesces in-flight steals before
/// sampling, so the count a reader sees always matches the steal events
/// already published to the trace — pinned by forcing one steal per
/// round through a drained shard and comparing after every round, then
/// replaying the mid-run trace against a live snapshot.
#[test]
fn steal_counter_matches_trace_at_every_quiesce_point() {
    let config = gridbnb_core::CoordinatorConfig {
        duplication_threshold: UBig::from(1u64),
        holder_timeout_ns: 1_000_000_000,
        initial_upper_bound: Some(10_000),
    };
    // Shard 1 starts drained: every work request addressed to it must
    // steal from shard 0.
    let router = ShardRouter::restore(
        iv(0, 4096),
        vec![vec![iv(0, 4096)], Vec::new()],
        None,
        config,
    )
    .unwrap()
    .with_replicable(7);
    let trace = Arc::new(RunTrace::new(
        TraceMeta {
            seed: 7,
            workers: 1,
            shards: 2,
        },
        router.metrics(),
    ));
    let router = router.with_trace(trace.clone());

    // Worker 0 grabs (and keeps holding) shard 0's whole entry, so every
    // later steal must split it — the held back half halves each round
    // instead of the first steal draining shard 0 in one donation.
    let holder = router.handle_envelope(
        ShardEnvelope {
            shard: ShardId(0),
            request: Request::RequestWork {
                worker: WorkerId(0),
                power: 1,
            },
        },
        1,
    );
    assert!(matches!(holder, Response::Work { .. }));

    for (now, round) in (2u64..).zip(0..10) {
        let response = router.handle_envelope(
            ShardEnvelope {
                shard: ShardId(1),
                request: Request::RequestWork {
                    worker: WorkerId(1),
                    power: 1,
                },
            },
            now,
        );
        assert!(
            matches!(response, Response::Work { .. }),
            "round {round}: expected stolen work, got {response:?}"
        );
        assert_eq!(
            router.steals(),
            trace.steal_count(),
            "round {round}: sampled steal count disagrees with the trace"
        );
    }
    assert!(router.steals() >= 10, "each round must force a steal");

    // The mid-run trace replays from the restored starting state onto
    // exactly the router's live snapshot.
    let mut replayer = TraceReplayer::from_intervals(vec![vec![iv(0, 4096)], Vec::new()]);
    replayer.replay(&trace.events()).expect("mid-run replay");
    replayer
        .verify_snapshot(&router.snapshot())
        .expect("replayed state diverges from the live router");
}

/// Threaded replicable mode (ordered rules + trace on real threads):
/// event order may vary run to run, but the trace must stay internally
/// consistent — steals counted exactly, and the whole thing replayable
/// to the drained final state.
#[test]
fn threaded_replicable_trace_is_replayable() {
    let problem = small_flowshop(37);
    let expected = solve(&problem, None).best_cost;
    let mut config = RuntimeConfig::new(4)
        .with_shards(4)
        .with_replicable_threads(5);
    config.poll_nodes = 500;
    config.coordinator.duplication_threshold = UBig::from(32u64);
    config.coordinator.holder_timeout_ns = 20_000_000;
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    let trace = report.trace.as_ref().expect("no trace");
    assert_eq!(report.steals, trace.steal_count());
    replay_to_final(&problem, &report, 4);
}
