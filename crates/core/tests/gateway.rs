//! Unit tests of the cross-worker contact gateway: flush triggers,
//! contact accounting of shared bundles, response routing, and the
//! empty-flush guarantee.

use gridbnb_core::{
    ContactGateway, Coordinator, CoordinatorConfig, GatewayPolicy, Interval, Request, Response,
    ShardRouter, Solution, UBig, WorkerId,
};
use std::time::{Duration, Instant};

fn config() -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::one(),
        holder_timeout_ns: u64::MAX / 4, // expiry never interferes here
        initial_upper_bound: Some(10_000),
    }
}

fn router(total: u64, shards: usize) -> ShardRouter {
    ShardRouter::new(
        Interval::new(UBig::zero(), UBig::from(total)),
        shards,
        config(),
    )
    .unwrap()
}

/// The first `count` worker ids homed on `shard` (the Fibonacci-hash
/// routing is deterministic, so scanning ids is exact).
fn workers_on_shard(router: &ShardRouter, shard: u32, count: usize) -> Vec<WorkerId> {
    (0..10_000u64)
        .map(WorkerId)
        .filter(|&w| router.route(w).0 == shard)
        .take(count)
        .collect()
}

/// Joins `worker` directly (not through the gateway) and returns its
/// assigned interval.
fn join(router: &ShardRouter, worker: WorkerId) -> Interval {
    match router.handle(Request::Join { worker, power: 10 }, 0) {
        Response::Work { interval, .. } => interval,
        other => panic!("join failed: {other:?}"),
    }
}

/// Spins until `cond` holds (5 s cap — generous for a couple of thread
/// wake-ups, tiny against the suite).
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < Duration::from_secs(5), "timed out: {what}");
        std::thread::yield_now();
    }
}

#[test]
fn empty_bundles_and_empty_flushes_are_free() {
    let router = router(1_000, 3);
    let w = workers_on_shard(&router, 0, 1)[0];
    let live = join(&router, w);
    let before = router.contacts();

    // An empty bundle contacts no shard and counts no contact.
    assert!(router.handle_bundle(Vec::new(), 5).is_empty());
    assert_eq!(router.contacts(), before, "empty bundle counted a contact");

    // An empty gateway flush — deadline sweep or final sweep with
    // nothing buffered — is equally free. (Fan-in 1, so the later
    // lone submission flushes itself instead of parking forever.)
    let gateway = ContactGateway::new(&router, GatewayPolicy::new(1, 1_000));
    assert!(!gateway.flush_stale(u64::MAX / 2));
    assert!(!gateway.flush_now(9));
    assert_eq!(router.contacts(), before, "empty flush counted a contact");
    assert_eq!(gateway.stats().flushes, 0, "empty flushes must not count");

    // A real flush afterwards still works and counts exactly once.
    let responses = gateway.submit(
        vec![Request::Update {
            worker: w,
            interval: live,
        }],
        10,
    );
    assert_eq!(responses.len(), 1);
    assert_eq!(router.contacts(), before + 1);
    assert_eq!(gateway.stats().flushes, 1);
}

#[test]
fn shared_flush_counts_one_contact_per_touched_shard() {
    let router = router(100_000, 2);
    let on_zero = workers_on_shard(&router, 0, 3);
    let on_one = workers_on_shard(&router, 1, 2);
    let all: Vec<WorkerId> = on_zero.iter().chain(&on_one).copied().collect();
    let intervals: Vec<Interval> = all.iter().map(|&w| join(&router, w)).collect();
    let contacts_before = router.contacts();
    let updates_before = router.stats().updates;

    // Five workers, one update each, one gateway flush: the shared
    // bundle touches two shards, so exactly two lock-acquiring
    // contacts serve all five updates — the mixed-worker amortization
    // per-worker bundling cannot reach (it would pay five).
    let gateway = ContactGateway::new(&router, GatewayPolicy::new(5, u64::MAX / 2));
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (k, (&w, live)) in all.iter().zip(&intervals).enumerate() {
            let gateway = &gateway;
            let live = live.clone();
            handles.push(scope.spawn(move || {
                gateway.submit(
                    vec![Request::Update {
                        worker: w,
                        interval: live,
                    }],
                    7,
                )
            }));
            if k + 1 < all.len() {
                wait_until("submission buffered", || gateway.buffered() == k + 1);
            }
        }
        for handle in handles {
            let responses = handle.join().unwrap();
            assert_eq!(responses.len(), 1);
            assert!(matches!(responses[0], Response::UpdateAck { .. }));
        }
    });
    assert_eq!(
        router.contacts(),
        contacts_before + 2,
        "one contact per touched shard"
    );
    assert_eq!(router.stats().updates, updates_before + 5);
    let stats = gateway.stats();
    assert_eq!(stats.submissions, 5);
    assert_eq!(stats.requests, 5);
    assert_eq!(stats.flushes, 1);
    assert_eq!(stats.size_flushes, 1);
    assert_eq!(stats.largest_bundle, 5);
}

#[test]
fn sensitive_submission_flushes_the_whole_buffer_immediately() {
    let router = router(100_000, 2);
    let updater = workers_on_shard(&router, 0, 1)[0];
    let live = join(&router, updater);
    let requester = workers_on_shard(&router, 1, 1)[0];

    // Fan-in far above what arrives: only the termination-sensitive
    // RequestWork can trigger the flush, and it must carry the parked
    // update along.
    let gateway = ContactGateway::new(&router, GatewayPolicy::new(1_000, u64::MAX / 2));
    std::thread::scope(|scope| {
        let parked = scope.spawn(|| {
            gateway.submit(
                vec![Request::Update {
                    worker: updater,
                    interval: live.clone(),
                }],
                3,
            )
        });
        wait_until("update parked", || gateway.buffered() == 1);
        let work = gateway.submit(
            vec![Request::RequestWork {
                worker: requester,
                power: 10,
            }],
            3,
        );
        assert_eq!(work.len(), 1);
        assert!(matches!(work[0], Response::Work { .. }));
        let acks = parked.join().unwrap();
        assert!(matches!(acks[0], Response::UpdateAck { .. }));
    });
    let stats = gateway.stats();
    assert_eq!(stats.flushes, 1);
    assert_eq!(stats.sensitive_flushes, 1);
    assert_eq!(stats.largest_bundle, 2);
}

#[test]
fn deadline_flush_releases_a_lone_submitter() {
    let router = router(100_000, 1);
    let w = workers_on_shard(&router, 0, 1)[0];
    let live = join(&router, w);
    let gateway = ContactGateway::new(&router, GatewayPolicy::new(1_000, 500));
    std::thread::scope(|scope| {
        let parked = scope.spawn(|| {
            gateway.submit(
                vec![Request::Update {
                    worker: w,
                    interval: live.clone(),
                }],
                1_000,
            )
        });
        wait_until("update parked", || gateway.buffered() == 1);
        // One tick before the deadline: nothing may flush.
        assert!(!gateway.flush_stale(1_499));
        assert_eq!(gateway.buffered(), 1);
        // At the deadline the sweep delivers the parked submission.
        assert!(gateway.flush_stale(1_500));
        let acks = parked.join().unwrap();
        assert!(matches!(acks[0], Response::UpdateAck { .. }));
    });
    let stats = gateway.stats();
    assert_eq!(stats.flushes, 1);
    assert_eq!(stats.deadline_flushes, 1);
}

#[test]
fn submissions_after_termination_are_served_inline() {
    let router = router(64, 1);
    let w = workers_on_shard(&router, 0, 1)[0];
    let live = join(&router, w);
    // Drain the whole range directly: report the live interval as
    // fully explored, then ask for more until Terminate.
    let _ = router.handle(
        Request::Update {
            worker: w,
            interval: Interval::new(live.end().clone(), live.end().clone()),
        },
        1,
    );
    assert!(matches!(
        router.handle(
            Request::RequestWork {
                worker: w,
                power: 10
            },
            2
        ),
        Response::Terminate
    ));
    assert!(router.is_terminated());

    // A straggler submitting after global termination must not park
    // (nobody is left to flush it): the gateway serves it inline.
    let gateway = ContactGateway::new(&router, GatewayPolicy::new(1_000, u64::MAX / 2));
    let responses = gateway.submit(
        vec![Request::Update {
            worker: w,
            interval: live,
        }],
        3,
    );
    assert_eq!(responses.len(), 1);
    assert!(matches!(
        &responses[0],
        Response::UpdateAck { interval, .. } if interval.is_empty()
    ));
    assert_eq!(gateway.stats().forced_flushes, 1);
}

#[test]
fn multi_request_submissions_get_their_replies_in_request_order() {
    let router = router(100_000, 2);
    let a = workers_on_shard(&router, 0, 1)[0];
    let b = workers_on_shard(&router, 1, 1)[0];
    let live_a = join(&router, a);
    let live_b = join(&router, b);

    // Each worker ships a two-request batch: a solution report then an
    // update (the coalesced [ReportSolution, Update] wire shape). Each
    // must get exactly its own two replies, in its own order, even
    // though the shared bundle interleaves the two workers.
    let gateway = ContactGateway::new(&router, GatewayPolicy::new(4, u64::MAX / 2));
    let (acks_a, acks_b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| {
            gateway.submit(
                vec![
                    Request::ReportSolution {
                        worker: a,
                        solution: Solution::new(900, vec![0]),
                    },
                    Request::Update {
                        worker: a,
                        interval: live_a.clone(),
                    },
                ],
                5,
            )
        });
        wait_until("first batch parked", || gateway.buffered() == 2);
        let hb = scope.spawn(|| {
            gateway.submit(
                vec![
                    Request::ReportSolution {
                        worker: b,
                        solution: Solution::new(800, vec![1]),
                    },
                    Request::Update {
                        worker: b,
                        interval: live_b.clone(),
                    },
                ],
                5,
            )
        });
        (ha.join().unwrap(), hb.join().unwrap())
    });
    for acks in [&acks_a, &acks_b] {
        assert_eq!(acks.len(), 2);
        assert!(matches!(acks[0], Response::SolutionAck { .. }));
        assert!(matches!(acks[1], Response::UpdateAck { .. }));
    }
    // Worker a's shard ran first and already knew a's 900; b's report
    // (800) reached shard 1 within the same bundle, so b's ack carries
    // the tighter cutoff and the router converged on 800 everywhere.
    assert!(matches!(
        acks_b[1],
        Response::UpdateAck {
            cutoff: Some(800),
            ..
        }
    ));
    assert_eq!(router.cutoff(), Some(800));
    assert_eq!(router.solution().map(|s| s.cost), Some(800));
}

#[test]
fn update_and_report_equals_split_pair_from_two_workers_through_the_gateway() {
    // The mixed-worker merge identity: worker `reporter` submitting the
    // ReportSolution and worker `updater` submitting the Update —
    // interleaved through one gateway flush — must leave exactly the
    // state (and give the updater exactly the ack) of the updater
    // folding both into one UpdateAndReport. Holds whenever the
    // reporter's home shard does not run after the updater's (here:
    // same-shard reporter, and a lower-shard reporter).
    for reporter_shard in [1u32, 0] {
        let combined = router(100_000, 2);
        let split = router(100_000, 2);
        let updater = workers_on_shard(&combined, 1, 1)[0];
        let reporter = workers_on_shard(&combined, reporter_shard, 2)[1];
        assert_ne!(updater, reporter);
        for r in [&combined, &split] {
            let _ = join(r, updater);
            let _ = join(r, reporter);
        }
        let live = match combined.handle(
            Request::Update {
                worker: updater,
                interval: Interval::new(UBig::zero(), UBig::from(100_000u64)),
            },
            1,
        ) {
            Response::UpdateAck { interval, .. } => interval,
            other => panic!("probe failed: {other:?}"),
        };
        let _ = split.handle(
            Request::Update {
                worker: updater,
                interval: Interval::new(UBig::zero(), UBig::from(100_000u64)),
            },
            1,
        );
        let reported = Interval::new(live.begin().add(&UBig::from(3u64)), live.end().clone());
        let solution = Solution::new(777, vec![2]);

        // Combined: one submission, one flush.
        let gateway = ContactGateway::new(&combined, GatewayPolicy::new(1, u64::MAX / 2));
        let combined_acks = gateway.submit(
            vec![Request::UpdateAndReport {
                worker: updater,
                interval: reported.clone(),
                solution: Some(solution.clone()),
            }],
            9,
        );
        // Split: the reporter's and updater's submissions merge into
        // one shared flush (fan-in 2), reporter arriving first.
        let gateway = ContactGateway::new(&split, GatewayPolicy::new(2, u64::MAX / 2));
        let split_acks = std::thread::scope(|scope| {
            let report = scope.spawn(|| {
                gateway.submit(
                    vec![Request::ReportSolution {
                        worker: reporter,
                        solution: solution.clone(),
                    }],
                    9,
                )
            });
            wait_until("report parked", || gateway.buffered() == 1);
            let acks = gateway.submit(
                vec![Request::Update {
                    worker: updater,
                    interval: reported.clone(),
                }],
                9,
            );
            report.join().unwrap();
            acks
        });
        assert_eq!(
            format!("{:?}", combined_acks.last().unwrap()),
            format!("{:?}", split_acks.last().unwrap()),
            "ack diverged (reporter shard {reporter_shard})"
        );
        assert_eq!(combined.cutoff(), split.cutoff());
        assert_eq!(combined.size(), split.size());
        assert_eq!(
            combined.solution().map(|s| s.cost),
            split.solution().map(|s| s.cost)
        );
        let stats_a = combined.stats();
        let stats_b = split.stats();
        assert_eq!(stats_a.updates, stats_b.updates);
        assert_eq!(stats_a.solution_reports, stats_b.solution_reports);
        assert_eq!(stats_a.improvements, stats_b.improvements);
    }
}

#[test]
fn gateway_at_s1_matches_a_bare_coordinator() {
    // One shard, several workers, one shared flush: the router behind
    // the gateway must do exactly what a bare coordinator fed the same
    // requests in arrival order does.
    let total = 50_000u64;
    let router = router(total, 1);
    let mut bare = Coordinator::new(Interval::new(UBig::zero(), UBig::from(total)), config());
    let workers: Vec<WorkerId> = (0..4).map(WorkerId).collect();
    let mut intervals = Vec::new();
    for &w in &workers {
        let live = join(&router, w);
        let bare_live = match bare.handle(
            Request::Join {
                worker: w,
                power: 10,
            },
            0,
        ) {
            Response::Work { interval, .. } => interval,
            other => panic!("bare join failed: {other:?}"),
        };
        assert_eq!(format!("{live}"), format!("{bare_live}"));
        intervals.push(live);
    }
    let gateway = ContactGateway::new(&router, GatewayPolicy::new(4, u64::MAX / 2));
    let gateway_acks = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (k, (&w, live)) in workers.iter().zip(&intervals).enumerate() {
            let gateway = &gateway;
            let reported = Interval::new(live.begin().add(&UBig::one()), live.end().clone());
            handles.push(scope.spawn(move || {
                gateway.submit(
                    vec![Request::Update {
                        worker: w,
                        interval: reported,
                    }],
                    4,
                )
            }));
            if k + 1 < workers.len() {
                wait_until("buffered", || gateway.buffered() == k + 1);
            }
        }
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
    });
    for (&w, (live, acks)) in workers.iter().zip(intervals.iter().zip(&gateway_acks)) {
        let reported = Interval::new(live.begin().add(&UBig::one()), live.end().clone());
        let expected = bare.handle(
            Request::Update {
                worker: w,
                interval: reported,
            },
            4,
        );
        assert_eq!(format!("{:?}", acks[0]), format!("{expected:?}"));
    }
    assert_eq!(router.size(), bare.size());
    assert_eq!(router.stats(), *bare.stats());
    router.check_invariants().unwrap();
    bare.check_invariants().unwrap();
}
