//! Property oracle pinning gateway-aggregated execution to per-worker
//! sequential replay — the cross-worker mirror of `batch_props.rs`.
//!
//! The [`ContactGateway`]'s documented contract: a flush's outcome —
//! every submitting worker's responses *and* the router state left
//! behind — is identical to replaying each buffered submission through
//! its **own** [`ShardRouter::handle_bundle`] call, submissions ordered
//! by (home shard ascending, arrival order). Because a worker's
//! requests all hash to one home shard, that replay order is exactly
//! the grouped order one combined bundle executes in, so the identity
//! covers solution broadcasts, mid-flush steals and endgame `Retry`
//! backpressure.
//!
//! The oracle drives a *real* gateway — submissions arrive on real
//! threads, sequenced deterministically by watching the buffer fill,
//! with the worker that trips a trigger (fan-in size, or a
//! termination-sensitive request) executing the flush exactly as in
//! production. A twin router replays the per-worker bundles in the
//! documented order; every response, counter and per-shard snapshot
//! must agree, and the gateway's lock-acquiring contact count must
//! never exceed the replay's.
//!
//! Alongside the oracle: the 16-thread end-to-end stress run — real
//! workers draining a 4-shard range through one gateway with scripted
//! crashes and holder expiry armed — must still prove the exact
//! optimum.

use gridbnb_core::runtime::{run, ChaosConfig, CrashPlan, RuntimeConfig};
use gridbnb_core::{
    ContactGateway, GatewayPolicy, Interval, Request, Response, ShardRouter, Solution, UBig,
    WorkerId,
};
use gridbnb_engine::solve;
use gridbnb_engine::toy::FullEnumeration;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const WORKERS: u64 = 8;

fn config(threshold: u64) -> gridbnb_core::CoordinatorConfig {
    gridbnb_core::CoordinatorConfig {
        duplication_threshold: UBig::from(threshold),
        holder_timeout_ns: u64::MAX / 4, // expiry is the runtime's job
        initial_upper_bound: Some(10_000),
    }
}

/// Symbolic protocol step: (op, worker, power, fraction-ppm) — the same
/// alphabet as the batch oracle.
type Step = (u8, u8, u16, u32);

fn arb_steps(max: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u8..7, 0u8..WORKERS as u8, 1u16..500, 0u32..1_000_000u32),
        1..max,
    )
}

/// Builds the request a step implies from the workers' model state —
/// *without* seeing any response (a whole flush is decided before any
/// reply exists). Mirrors `batch_props::request_of`.
fn request_of(step: Step, models: &mut [Option<Interval>]) -> Option<Request> {
    let (op, worker, power, frac_ppm) = step;
    let w = WorkerId(worker as u64);
    let slot = &mut models[worker as usize];
    match op {
        0 => {
            *slot = None;
            Some(Request::Join {
                worker: w,
                power: power as u64,
            })
        }
        1 => {
            *slot = None;
            Some(Request::RequestWork {
                worker: w,
                power: power as u64,
            })
        }
        2 | 3 => {
            let live = slot.as_mut()?;
            let adv = live
                .length()
                .mul_div_floor(frac_ppm.min(1_000_000) as u64, 1_000_000);
            let begin = live.begin().add(&adv);
            live.advance_begin(&begin);
            Some(Request::Update {
                worker: w,
                interval: live.clone(),
            })
        }
        4 => {
            *slot = None;
            Some(Request::Leave { worker: w })
        }
        5 => Some(Request::ReportSolution {
            worker: w,
            solution: Solution::new(1 + (frac_ppm % 5_000) as u64, vec![0]),
        }),
        _ => {
            let solution = Solution::new(1 + (frac_ppm % 5_000) as u64, vec![1]);
            match slot.as_mut() {
                Some(live) => {
                    let adv = live
                        .length()
                        .mul_div_floor((frac_ppm / 2).min(1_000_000) as u64, 1_000_000);
                    let begin = live.begin().add(&adv);
                    live.advance_begin(&begin);
                    Some(Request::UpdateAndReport {
                        worker: w,
                        interval: live.clone(),
                        solution: Some(solution),
                    })
                }
                None => Some(Request::ReportSolution {
                    worker: w,
                    solution,
                }),
            }
        }
    }
}

/// Applies one response to the issuing worker's model.
fn absorb(request: &Request, response: &Response, models: &mut [Option<Interval>]) {
    let slot = &mut models[request.worker().0 as usize];
    match (request, response) {
        (Request::Join { .. } | Request::RequestWork { .. }, Response::Work { interval, .. }) => {
            *slot = Some(interval.clone());
        }
        (Request::Join { .. } | Request::RequestWork { .. }, _) => {
            *slot = None;
        }
        (
            Request::Update { .. } | Request::UpdateAndReport { .. },
            Response::UpdateAck { interval, .. },
        ) => {
            if interval.is_empty() {
                *slot = None;
            } else if let Some(live) = slot.as_mut() {
                live.retreat_end(interval.end());
                if live.is_empty() {
                    *slot = None;
                }
            }
        }
        _ => {}
    }
}

fn is_sensitive(request: &Request) -> bool {
    matches!(
        request,
        Request::Join { .. } | Request::RequestWork { .. } | Request::Leave { .. }
    )
}

/// Sorted (begin, end) pairs of a per-shard snapshot — canonical form
/// for state comparison.
fn canonical(shard: &[Interval]) -> Vec<(UBig, UBig)> {
    let mut all: Vec<(UBig, UBig)> = shard
        .iter()
        .map(|i| (i.begin().clone(), i.end().clone()))
        .collect();
    all.sort();
    all
}

/// Spins until `cond` holds; a stuck condition means the gateway's
/// trigger logic diverged from the test's prediction — fail loudly
/// instead of hanging the suite.
fn wait_until(what: &str, cond: impl Fn() -> bool) -> Result<(), TestCaseError> {
    let t0 = Instant::now();
    while !cond() {
        if t0.elapsed() > Duration::from_secs(10) {
            return Err(TestCaseError::fail(format!(
                "gateway trigger prediction diverged: timed out on {what}"
            )));
        }
        std::thread::yield_now();
    }
    Ok(())
}

/// Drives one round of per-worker submissions through a real gateway,
/// arrival order = `submissions` order, and returns each submission's
/// responses. Flush boundaries are predicted with the gateway's own
/// trigger rules; the buffer watch validates the prediction (a
/// mismatch times out and fails). Returns the responses per submission
/// plus the flush groups (as index ranges into `submissions`).
#[allow(clippy::type_complexity)]
fn drive_gateway(
    gateway: &ContactGateway<&ShardRouter>,
    submissions: &[(WorkerId, Vec<Request>)],
    now: u64,
) -> Result<(Vec<Vec<Response>>, Vec<Vec<usize>>), TestCaseError> {
    let fan_in = gateway.policy().fan_in;
    let mut responses: Vec<Option<Vec<Response>>> = vec![None; submissions.len()];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    std::thread::scope(|scope| -> Result<(), TestCaseError> {
        let mut handles: Vec<(usize, std::thread::ScopedJoinHandle<'_, Vec<Response>>)> =
            Vec::new();
        let mut buffered = 0usize;
        for (k, (_, requests)) in submissions.iter().enumerate() {
            let sensitive = requests.iter().any(is_sensitive);
            let n = requests.len();
            let flushes = sensitive || buffered + n >= fan_in || gateway.router().is_terminated();
            open.push(k);
            let requests = requests.clone();
            handles.push((k, scope.spawn(move || gateway.submit(requests, now))));
            let wait = if flushes {
                // The submitter runs the flush itself; wait for the
                // buffer to drain, then collect every parked thread.
                wait_until("flush drain", || gateway.buffered() == 0)
            } else {
                buffered += n;
                wait_until("buffer fill", || gateway.buffered() == buffered)
            };
            if let Err(e) = wait {
                // Release every parked submitter before failing, or the
                // scope would block forever joining them.
                gateway.flush_now(now);
                return Err(e);
            }
            if flushes {
                for (idx, handle) in handles.drain(..) {
                    responses[idx] = Some(handle.join().expect("submitter panicked"));
                }
                groups.push(std::mem::take(&mut open));
                buffered = 0;
            }
        }
        if !open.is_empty() {
            // Round over with parked submissions: the deadline sweep
            // (here: an explicit final flush) delivers them.
            gateway.flush_now(now);
            for (idx, handle) in handles.drain(..) {
                responses[idx] = Some(handle.join().expect("submitter panicked"));
            }
            groups.push(std::mem::take(&mut open));
        }
        Ok(())
    })?;
    let responses = responses
        .into_iter()
        .map(|r| r.expect("a reply per submission"))
        .collect();
    Ok((responses, groups))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of per-worker batches, pushed through a real
    /// gateway in rounds, must produce exactly the responses and state
    /// of replaying each submission through its own `handle_bundle` in
    /// (home shard, arrival) order — for S ∈ {1, 2, 3, 4} and up to 8
    /// workers — while never acquiring more shard locks than the
    /// replay.
    #[test]
    fn gateway_flushes_match_per_worker_sequential_replay(
        steps in arb_steps(100),
        chunk in 2usize..=10,
        shards in 1usize..=4,
        fan_in in 1usize..=9,
        threshold in 1u64..300,
        total in 50u64..20_000,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let gated = ShardRouter::new(root.clone(), shards, config(threshold)).unwrap();
        let replayed = ShardRouter::new(root, shards, config(threshold)).unwrap();
        let gateway = ContactGateway::new(&gated, GatewayPolicy::new(fan_in, u64::MAX / 2));
        let mut models: Vec<Option<Interval>> = (0..WORKERS).map(|_| None).collect();
        let mut now = 0u64;

        for round in steps.chunks(chunk) {
            now += 1;
            // One submission per worker appearing in the round, its
            // steps in round order; arrival order = ascending worker id.
            let mut submissions: Vec<(WorkerId, Vec<Request>)> = Vec::new();
            for worker in 0..WORKERS as u8 {
                let requests: Vec<Request> = round
                    .iter()
                    .filter(|s| s.1 == worker)
                    .filter_map(|&s| request_of(s, &mut models))
                    .collect();
                if !requests.is_empty() {
                    submissions.push((WorkerId(worker as u64), requests));
                }
            }
            if submissions.is_empty() {
                continue;
            }
            let (responses, groups) = drive_gateway(&gateway, &submissions, now)?;

            // Replay: within each flush group, per-worker bundles in
            // (home shard, arrival) order — the documented equivalent.
            for group in &groups {
                let mut order = group.clone();
                order.sort_by_key(|&i| replayed.route(submissions[i].0).0);
                for &i in &order {
                    let (worker, requests) = &submissions[i];
                    prop_assert_eq!(*worker, requests[0].worker());
                    let bundle: Vec<_> = requests
                        .iter()
                        .map(|r| replayed.envelope(r.clone()))
                        .collect();
                    let expected = replayed.handle_bundle(bundle, now);
                    prop_assert_eq!(expected.len(), responses[i].len());
                    for (j, ((shard, want), got)) in
                        expected.iter().zip(&responses[i]).enumerate()
                    {
                        prop_assert_eq!(*shard, replayed.route(*worker));
                        prop_assert_eq!(
                            format!("{got:?}"),
                            format!("{want:?}"),
                            "response {} of worker {} diverged in group {:?}",
                            j,
                            worker,
                            group
                        );
                    }
                }
            }
            // Absorb after comparison (either side — they agree).
            for ((_, requests), replies) in submissions.iter().zip(&responses) {
                for (request, response) in requests.iter().zip(replies) {
                    absorb(request, response, &mut models);
                }
            }
            prop_assert_eq!(gated.size(), replayed.size(), "sizes diverged");
            prop_assert_eq!(gated.cardinality(), replayed.cardinality());
            prop_assert_eq!(gated.is_terminated(), replayed.is_terminated());
            prop_assert_eq!(gated.cutoff(), replayed.cutoff());
            prop_assert_eq!(gated.steals(), replayed.steals(), "steals diverged");
            prop_assert!(
                gated.contacts() <= replayed.contacts(),
                "aggregation must never cost extra lock traffic: {} vs {}",
                gated.contacts(),
                replayed.contacts()
            );
            gated.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("gated invariant violated: {e}"))
            })?;
        }

        // Final identity: counters, best solution, and the exact
        // interval content of every shard.
        prop_assert_eq!(gated.stats(), replayed.stats());
        prop_assert_eq!(
            gated.solution().map(|s| s.cost),
            replayed.solution().map(|s| s.cost)
        );
        let (snap_a, _) = gated.snapshot();
        let (snap_b, _) = replayed.snapshot();
        prop_assert_eq!(snap_a.len(), snap_b.len());
        for (k, (a, b)) in snap_a.iter().zip(&snap_b).enumerate() {
            prop_assert_eq!(canonical(a), canonical(b), "shard {} intervals diverged", k);
        }
    }

    /// The mixed-worker merge identity as a property: `UpdateAndReport`
    /// folded by one worker ≡ the split `ReportSolution` (from a
    /// *different* worker whose home shard does not run later) +
    /// `Update` pair, interleaved through one shared flush — same ack,
    /// same state, for arbitrary progress fractions and costs.
    #[test]
    fn update_and_report_equals_split_pair_across_workers(
        shards in 1usize..=4,
        total in 100u64..50_000,
        threshold in 1u64..300,
        frac_ppm in 0u32..1_000_000,
        cost in 1u64..20_000,
        updater_seed in 0u64..200,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let combined = ShardRouter::new(root.clone(), shards, config(threshold)).unwrap();
        let split = ShardRouter::new(root, shards, config(threshold)).unwrap();
        let updater = WorkerId(updater_seed);
        let home = combined.route(updater).0;
        // A different worker whose home shard runs no later than the
        // updater's: its report is globally visible (in-shard order or
        // cross-shard broadcast) before the update executes, exactly
        // like the folded form.
        let reporter = (0..10_000u64)
            .map(WorkerId)
            .find(|&w| w != updater && combined.route(w).0 <= home)
            .expect("a reporter homed at or below the updater's shard");
        let mut live = None;
        for router in [&combined, &split] {
            let response = router.handle(Request::Join { worker: updater, power: 7 }, 0);
            if let Response::Work { interval, .. } = response {
                live = Some(interval);
            } else {
                panic!("join failed: {response:?}");
            }
        }
        let live = live.expect("joined");
        let adv = live.length().mul_div_floor(frac_ppm as u64, 1_000_000);
        let reported = Interval::new(live.begin().add(&adv), live.end().clone());
        let solution = Solution::new(cost, vec![0]);

        let combined_bundle = vec![combined.envelope(Request::UpdateAndReport {
            worker: updater,
            interval: reported.clone(),
            solution: Some(solution.clone()),
        })];
        let a = combined.handle_bundle(combined_bundle, 9);
        let split_bundle = vec![
            split.envelope(Request::ReportSolution {
                worker: reporter,
                solution,
            }),
            split.envelope(Request::Update {
                worker: updater,
                interval: reported,
            }),
        ];
        let b = split.handle_bundle(split_bundle, 9);
        prop_assert_eq!(
            format!("{:?}", a.last().unwrap().1),
            format!("{:?}", b.last().unwrap().1)
        );
        prop_assert_eq!(combined.cutoff(), split.cutoff());
        prop_assert_eq!(combined.size(), split.size());
        prop_assert_eq!(
            combined.solution().map(|s| s.cost),
            split.solution().map(|s| s.cost)
        );
        let sa = combined.stats();
        let sb = split.stats();
        prop_assert_eq!(sa.updates, sb.updates);
        prop_assert_eq!(sa.solution_reports, sb.solution_reports);
        prop_assert_eq!(sa.improvements, sb.improvements);
        combined.check_invariants().map_err(TestCaseError::fail)?;
        split.check_invariants().map_err(TestCaseError::fail)?;
    }
}

/// The end-to-end stress pin: 16 real worker threads drain a 4-shard
/// range through one gateway, with scripted crashes (rejoin and
/// permanent) and holder expiry armed — and the run must still prove
/// the exact optimum.
#[test]
fn sixteen_workers_drain_a_sharded_range_through_one_gateway_with_crashes() {
    let problem = FullEnumeration::new(8);
    let expected = solve(&problem, None).best_cost;
    let mut config = RuntimeConfig::new(16).with_shards(4);
    config.poll_nodes = 200;
    config.coordinator.duplication_threshold = UBig::from(32u64);
    config.coordinator.holder_timeout_ns = 20_000_000; // 20 ms — expiry armed
                                                       // After the timeout, so the gateway/coalescing deadlines derive
                                                       // from the short 20 ms horizon.
    let mut config = config.with_gateway(12).with_coalescing(3);
    config.chaos = Some(ChaosConfig {
        crashes: vec![
            CrashPlan {
                worker_index: 3,
                after_nodes: 500,
                rejoin: true,
            },
            CrashPlan {
                worker_index: 7,
                after_nodes: 1_500,
                rejoin: false,
            },
            CrashPlan {
                worker_index: 11,
                after_nodes: 2_500,
                rejoin: true,
            },
        ],
    });
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected, "gateway run lost work");
    let crashes: u64 = report.workers.iter().map(|w| w.crashes).sum();
    assert_eq!(crashes, 3);
    let stats = report.gateway.expect("gateway stats on a gateway run");
    assert!(stats.flushes >= 1, "the gateway never flushed");
    assert_eq!(
        stats.submissions,
        report.total_contacts(),
        "every worker contact must route through the gateway"
    );
    // The shared-bundle economics: the router served at most as many
    // lock-acquiring contacts as worker submissions (strict reduction
    // is pinned deterministically by the sim and unit tests).
    assert!(report.router_contacts > 0);
    assert!(
        stats.flushes <= stats.submissions,
        "flushes cannot outnumber submissions"
    );
}
