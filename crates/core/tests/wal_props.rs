//! Crash-recovery property tests for the durable operation log.
//!
//! The scheme is deliberately non-circular: the tests drive a
//! [`WalStore`] with random (but state-consistent) operation sequences
//! while maintaining an independent *shadow oracle* — after every
//! appended record, the expected per-shard interval multiset and the
//! solutions published so far are snapshotted, along with the record's
//! framed byte length. Killing the log at an arbitrary byte position
//! then has a closed-form expectation: the surviving whole records are
//! exactly the prefix whose framed lengths fit below the cut, so the
//! recovered state must equal the shadow snapshot at that prefix — with
//! total interval length conserved — and a cut strictly inside a record
//! must be repaired as exactly one torn-tail truncation.
//!
//! A flipped byte *inside* a complete record, by contrast, must refuse
//! recovery with [`WalError::Corrupt`]: that is the difference between
//! a crash (tear at the tail) and damage (anywhere else).
//!
//! A second family of properties models **cross-shard moves** (the
//! router's work steals), which span two segments: the stolen interval's
//! `Insert` is appended to the destination's log *before* the victim's
//! `Remove`/`Replace`. Because appends are fsynced in issue order, a
//! crash there is a cut in the *global* append sequence — every record
//! issued before the cut survives on whatever shard it went to — so the
//! oracle is simply the op-sequence prefix: a cut between a move's two
//! records must recover the interval in *both* shards (a duplicate,
//! re-explored once per copy — safe), never in neither (a silent loss).
//!
//! All properties run at S ∈ {1, 4} shards.

use gridbnb_core::wal::segment_blob;
use gridbnb_core::{
    Interval, MemoryBackend, Solution, StorageBackend, UBig, WalError, WalOp, WalStore,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Root length per shard — large enough that splits stay non-trivial
/// for the whole sequence.
const SHARD_LEN: u64 = 1 << 32;

fn iv(begin: u64, end: u64) -> Interval {
    Interval::new(UBig::from(begin), UBig::from(end))
}

/// Symbolic log step: (action, shard selector, entry selector, fraction).
type Step = (u8, u8, u16, u32);

fn arb_steps(max: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0u8..4, 0u8..8, 0u16..1024, 1u32..1_000_000), 1..max)
}

/// Everything the oracle knows about one shard's log right after one
/// appended record.
#[derive(Clone)]
struct RecordSnapshot {
    /// Framed length of this record (header + payload).
    framed_len: u64,
    /// The shard's expected interval multiset after this record.
    state: Vec<(u64, u64)>,
    /// Costs of every solution published in this shard's log so far.
    solutions: Vec<u64>,
}

/// One shard's shadow: live state plus the per-record history.
struct Shadow {
    state: Vec<(u64, u64)>,
    solutions: Vec<u64>,
    records: Vec<RecordSnapshot>,
}

/// Drives `steps` through a fresh store on `backend`, mirroring every
/// record in the shadow oracle.
fn build_log(backend: &Arc<MemoryBackend>, shards: usize, steps: &[Step]) -> Vec<Shadow> {
    let initial: Vec<Vec<Interval>> = (0..shards)
        .map(|k| vec![iv(k as u64 * SHARD_LEN, (k as u64 + 1) * SHARD_LEN)])
        .collect();
    let store = WalStore::create(
        Arc::clone(backend) as Arc<dyn StorageBackend>,
        &initial,
        None,
    )
    .expect("create");
    let mut shadows: Vec<Shadow> = (0..shards)
        .map(|k| Shadow {
            state: vec![(k as u64 * SHARD_LEN, (k as u64 + 1) * SHARD_LEN)],
            solutions: Vec::new(),
            records: Vec::new(),
        })
        .collect();
    // Strictly decreasing costs so every published solution improves and
    // no two solutions tie (ties would make "which one survived the
    // cut" ambiguous).
    let mut next_cost = 1_000_000u64;
    for &(action, shard_sel, entry_sel, frac) in steps {
        let k = shard_sel as usize % shards;
        let shadow = &mut shadows[k];
        let ops: Vec<WalOp> = match action {
            // Remove one whole entry.
            0 if !shadow.state.is_empty() => {
                let i = entry_sel as usize % shadow.state.len();
                let (b, e) = shadow.state.remove(i);
                vec![WalOp::Remove(iv(b, e))]
            }
            // Shrink an entry from the left (a worker's update).
            1 if !shadow.state.is_empty() => {
                let i = entry_sel as usize % shadow.state.len();
                let (b, e) = shadow.state[i];
                if e - b < 2 {
                    continue;
                }
                let adv = 1 + (frac as u64) % (e - b - 1);
                shadow.state[i] = (b + adv, e);
                vec![WalOp::Replace {
                    old: iv(b, e),
                    new: iv(b + adv, e),
                }]
            }
            // Split an entry in two (a partition): one record, two ops.
            2 if !shadow.state.is_empty() => {
                let i = entry_sel as usize % shadow.state.len();
                let (b, e) = shadow.state[i];
                if e - b < 2 {
                    continue;
                }
                let mid = b + 1 + (frac as u64) % (e - b - 1);
                shadow.state[i] = (b, mid);
                shadow.state.push((mid, e));
                vec![
                    WalOp::Replace {
                        old: iv(b, e),
                        new: iv(b, mid),
                    },
                    WalOp::Insert(iv(mid, e)),
                ]
            }
            // Publish an improving solution.
            3 => {
                next_cost -= 1;
                shadow.solutions.push(next_cost);
                vec![WalOp::Solution(Solution::new(next_cost, vec![k as u64]))]
            }
            _ => continue,
        };
        let record = gridbnb_core::wal::encode_record(&ops);
        store.append(k, &ops).expect("append");
        shadow.records.push(RecordSnapshot {
            framed_len: record.len() as u64,
            state: shadow.state.clone(),
            solutions: shadow.solutions.clone(),
        });
    }
    shadows
}

/// Sorted-interval view of a shadow state, for multiset comparison.
fn sorted_intervals(state: &[(u64, u64)]) -> Vec<Interval> {
    let mut pairs = state.to_vec();
    pairs.sort_unstable();
    pairs.into_iter().map(|(b, e)| iv(b, e)).collect()
}

fn sort_recovered(mut recovered: Vec<Interval>) -> Vec<Interval> {
    recovered.sort_by_key(|iv| format!("{:0>40}{:0>40}", iv.begin(), iv.end()));
    recovered
}

/// Kills shard `cut_shard`'s segment at byte `cut` (clean boundary or
/// mid-record), recovers, and checks the recovered state against the
/// shadow oracle. Returns the property-test verdict.
fn check_kill_at(
    shards: usize,
    steps: &[Step],
    cut_shard: usize,
    cut_ppm: u32,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let backend = Arc::new(MemoryBackend::new());
    let shadows = build_log(&backend, shards, steps);
    let k = cut_shard % shards;

    let total: u64 = shadows[k].records.iter().map(|r| r.framed_len).sum();
    let cut = (total as u128 * cut_ppm as u128 / 1_000_000) as u64;
    let blob = segment_blob(k, 0);
    if total > 0 {
        backend.truncate(&blob, cut).expect("cut the segment");
    }

    // The oracle's expectation: whole records strictly below the cut
    // survive; a strict remainder is one torn tail.
    let mut surviving = 0usize;
    let mut boundary = 0u64;
    for r in &shadows[k].records {
        if boundary + r.framed_len <= cut {
            boundary += r.framed_len;
            surviving += 1;
        } else {
            break;
        }
    }
    let torn = cut > boundary;

    let (_, recovered) =
        WalStore::recover(Arc::clone(&backend) as Arc<dyn StorageBackend>).expect("recover");

    prop_assert_eq!(recovered.torn_truncations, u64::from(torn));

    // Per-shard interval multisets: the cut shard rolls back to the
    // surviving prefix, every other shard keeps its full log.
    let mut expected_total = 0u64;
    for (s, shadow) in shadows.iter().enumerate() {
        let expected_state: &[(u64, u64)] = if s == k {
            if surviving == 0 {
                &[(k as u64 * SHARD_LEN, (k as u64 + 1) * SHARD_LEN)]
            } else {
                &shadow.records[surviving - 1].state
            }
        } else {
            &shadow.state
        };
        expected_total += expected_state.iter().map(|(b, e)| e - b).sum::<u64>();
        prop_assert_eq!(
            sort_recovered(recovered.shard_intervals[s].clone()),
            sorted_intervals(expected_state),
            "shard {} diverged (cut {} of {}, {} surviving records)",
            s,
            cut,
            total,
            surviving
        );
    }
    // Conservation: Σ recovered length equals the oracle exactly.
    prop_assert_eq!(recovered.total_length(), UBig::from(expected_total));

    // Best solution: the minimum cost among every surviving record's
    // publications (solutions on other shards never roll back).
    let mut best: Option<u64> = None;
    for (s, shadow) in shadows.iter().enumerate() {
        let costs: &[u64] = if s == k {
            if surviving == 0 {
                &[]
            } else {
                &shadow.records[surviving - 1].solutions
            }
        } else {
            &shadow.solutions
        };
        for &c in costs {
            best = Some(best.map_or(c, |b: u64| b.min(c)));
        }
    }
    prop_assert_eq!(recovered.solution.map(|s| s.cost), best);

    // The truncation repair must land exactly on the record boundary.
    if torn {
        let repaired = backend.get(&blob).expect("get").unwrap_or_default();
        prop_assert_eq!(repaired.len() as u64, boundary);
    }
    Ok(())
}

/// Flips one byte inside a complete record (past the length field, so
/// the record still *frames* correctly and the CRC must catch it) and
/// demands a loud [`WalError::Corrupt`]. Returns the verdict.
fn check_corruption(
    shards: usize,
    steps: &[Step],
    cut_shard: usize,
    pick: u32,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let backend = Arc::new(MemoryBackend::new());
    let shadows = build_log(&backend, shards, steps);
    let k = cut_shard % shards;
    prop_assume!(!shadows[k].records.is_empty());

    let record = pick as usize % shadows[k].records.len();
    let start: u64 = shadows[k].records[..record]
        .iter()
        .map(|r| r.framed_len)
        .sum();
    let len = shadows[k].records[record].framed_len;
    // Offset 8.. skips magic (4) and the length field (4): the record
    // still parses as complete, so the damage must be caught by CRC.
    let offset = start + 8 + (pick as u64 % (len - 8));

    let blob = segment_blob(k, 0);
    let mut bytes = backend.get(&blob).expect("get").expect("segment exists");
    bytes[offset as usize] = bytes[offset as usize].wrapping_add(1);
    backend.put(&blob, &bytes).expect("put damaged segment");

    let result = WalStore::recover(Arc::clone(&backend) as Arc<dyn StorageBackend>);
    prop_assert!(
        matches!(result, Err(WalError::Corrupt { .. })),
        "mid-log damage at byte {} of {} must refuse recovery, got {:?}",
        offset,
        blob,
        result.map(|(_, state)| state.replayed_ops)
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Cross-shard moves under the global crash model
// ---------------------------------------------------------------------------
//
// The per-shard cut model above cannot express a steal: truncating only
// the destination's log while keeping the victim's later `Remove` would
// fake a crash that fsync ordering makes impossible (and would "observe"
// a loss that cannot happen). Here every appended record carries its
// global issue order, a crash is a byte position in that global stream,
// and each shard's segment is truncated to exactly the bytes it had
// durable at that instant.

/// Symbolic shadow op, mirroring [`WalOp`] on plain `u64` pairs so the
/// oracle never round-trips through the codec under test.
#[derive(Clone, Copy)]
enum SOp {
    Ins(u64, u64),
    Del(u64, u64),
    Rep(u64, u64, u64, u64),
    Sol(u64),
}

/// One record in global append order: which shard's segment it extended,
/// its framed byte length, and the shadow ops it carried.
struct GlobalRecord {
    shard: usize,
    framed_len: u64,
    ops: Vec<SOp>,
}

fn initial_states(shards: usize) -> Vec<Vec<(u64, u64)>> {
    (0..shards)
        .map(|k| vec![(k as u64 * SHARD_LEN, (k as u64 + 1) * SHARD_LEN)])
        .collect()
}

fn emit(
    store: &WalStore,
    records: &mut Vec<GlobalRecord>,
    shard: usize,
    wal_ops: &[WalOp],
    sops: Vec<SOp>,
) {
    let framed_len = gridbnb_core::wal::encode_record(wal_ops).len() as u64;
    store.append(shard, wal_ops).expect("append");
    records.push(GlobalRecord {
        shard,
        framed_len,
        ops: sops,
    });
}

/// Like [`build_log`], plus two cross-shard move actions (full-entry and
/// split-tier steals) that append to two segments in the router's
/// loss-proof order: destination `Insert` first, victim half second.
fn build_log_with_moves(
    backend: &Arc<MemoryBackend>,
    shards: usize,
    steps: &[Step],
) -> Vec<GlobalRecord> {
    let initial: Vec<Vec<Interval>> = (0..shards)
        .map(|k| vec![iv(k as u64 * SHARD_LEN, (k as u64 + 1) * SHARD_LEN)])
        .collect();
    let store = WalStore::create(
        Arc::clone(backend) as Arc<dyn StorageBackend>,
        &initial,
        None,
    )
    .expect("create");
    let mut states = initial_states(shards);
    let mut next_cost = 1_000_000u64;
    let mut records = Vec::new();
    for &(action, shard_sel, entry_sel, frac) in steps {
        let k = shard_sel as usize % shards;
        match action {
            0 if !states[k].is_empty() => {
                let i = entry_sel as usize % states[k].len();
                let (b, e) = states[k].remove(i);
                emit(
                    &store,
                    &mut records,
                    k,
                    &[WalOp::Remove(iv(b, e))],
                    vec![SOp::Del(b, e)],
                );
            }
            1 if !states[k].is_empty() => {
                let i = entry_sel as usize % states[k].len();
                let (b, e) = states[k][i];
                if e - b < 2 {
                    continue;
                }
                let adv = 1 + (frac as u64) % (e - b - 1);
                states[k][i] = (b + adv, e);
                emit(
                    &store,
                    &mut records,
                    k,
                    &[WalOp::Replace {
                        old: iv(b, e),
                        new: iv(b + adv, e),
                    }],
                    vec![SOp::Rep(b, e, b + adv, e)],
                );
            }
            2 if !states[k].is_empty() => {
                let i = entry_sel as usize % states[k].len();
                let (b, e) = states[k][i];
                if e - b < 2 {
                    continue;
                }
                let mid = b + 1 + (frac as u64) % (e - b - 1);
                states[k][i] = (b, mid);
                states[k].push((mid, e));
                emit(
                    &store,
                    &mut records,
                    k,
                    &[
                        WalOp::Replace {
                            old: iv(b, e),
                            new: iv(b, mid),
                        },
                        WalOp::Insert(iv(mid, e)),
                    ],
                    vec![SOp::Rep(b, e, b, mid), SOp::Ins(mid, e)],
                );
            }
            3 => {
                next_cost -= 1;
                emit(
                    &store,
                    &mut records,
                    k,
                    &[WalOp::Solution(Solution::new(next_cost, vec![k as u64]))],
                    vec![SOp::Sol(next_cost)],
                );
            }
            // Full-entry move: the whole entry leaves shard `k` for
            // `dest`. Destination's Insert is record one, victim's
            // Remove is record two.
            4 if shards > 1 && !states[k].is_empty() => {
                let dest = (k + 1 + entry_sel as usize % (shards - 1)) % shards;
                let i = entry_sel as usize % states[k].len();
                let (b, e) = states[k][i];
                emit(
                    &store,
                    &mut records,
                    dest,
                    &[WalOp::Insert(iv(b, e))],
                    vec![SOp::Ins(b, e)],
                );
                states[k].remove(i);
                states[dest].push((b, e));
                emit(
                    &store,
                    &mut records,
                    k,
                    &[WalOp::Remove(iv(b, e))],
                    vec![SOp::Del(b, e)],
                );
            }
            // Split-tier move: the victim keeps the front half, the back
            // half is donated. Same two-record order.
            5 if shards > 1 && !states[k].is_empty() => {
                let dest = (k + 1 + entry_sel as usize % (shards - 1)) % shards;
                let i = entry_sel as usize % states[k].len();
                let (b, e) = states[k][i];
                if e - b < 2 {
                    continue;
                }
                let mid = b + 1 + (frac as u64) % (e - b - 1);
                emit(
                    &store,
                    &mut records,
                    dest,
                    &[WalOp::Insert(iv(mid, e))],
                    vec![SOp::Ins(mid, e)],
                );
                states[k][i] = (b, mid);
                states[dest].push((mid, e));
                emit(
                    &store,
                    &mut records,
                    k,
                    &[WalOp::Replace {
                        old: iv(b, e),
                        new: iv(b, mid),
                    }],
                    vec![SOp::Rep(b, e, b, mid)],
                );
            }
            _ => continue,
        }
    }
    records
}

/// Replays the first `records` shadow ops onto fresh initial state — the
/// closed-form expectation for a crash right after that many records
/// became durable. Any prefix of a valid sequence is valid: a move cut
/// in half leaves its `Ins` applied and its `Del`/`Rep` not, i.e. the
/// interval in both shards.
fn simulate(shards: usize, records: &[GlobalRecord]) -> (Vec<Vec<(u64, u64)>>, Option<u64>) {
    let mut states = initial_states(shards);
    let mut best: Option<u64> = None;
    for r in records {
        for &op in &r.ops {
            match op {
                SOp::Ins(b, e) => states[r.shard].push((b, e)),
                SOp::Del(b, e) => {
                    let i = states[r.shard]
                        .iter()
                        .position(|&p| p == (b, e))
                        .expect("oracle removal of unknown pair");
                    states[r.shard].remove(i);
                }
                SOp::Rep(b, e, nb, ne) => {
                    let i = states[r.shard]
                        .iter()
                        .position(|&p| p == (b, e))
                        .expect("oracle replacement of unknown pair");
                    states[r.shard][i] = (nb, ne);
                }
                SOp::Sol(c) => best = Some(best.map_or(c, |b: u64| b.min(c))),
            }
        }
    }
    (states, best)
}

/// Kills the whole store at global byte position `cut_ppm · total`,
/// truncating every shard's segment to the bytes it had durable at that
/// instant, then recovers and checks against the prefix oracle.
fn check_global_kill(
    shards: usize,
    steps: &[Step],
    cut_ppm: u32,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let backend = Arc::new(MemoryBackend::new());
    let records = build_log_with_moves(&backend, shards, steps);
    let total: u64 = records.iter().map(|r| r.framed_len).sum();
    let cut = (total as u128 * cut_ppm as u128 / 1_000_000) as u64;

    // Whole records strictly below the cut survive; a strict remainder
    // tears the record at the cut on whichever shard it was going to.
    let mut surviving = 0usize;
    let mut consumed = 0u64;
    for r in &records {
        if consumed + r.framed_len <= cut {
            consumed += r.framed_len;
            surviving += 1;
        } else {
            break;
        }
    }
    let partial = cut - consumed;

    let mut keep = vec![0u64; shards];
    for r in &records[..surviving] {
        keep[r.shard] += r.framed_len;
    }
    if partial > 0 {
        keep[records[surviving].shard] += partial;
    }
    for (s, &len) in keep.iter().enumerate() {
        let blob = segment_blob(s, 0);
        if backend.get(&blob).expect("get").is_some() {
            backend.truncate(&blob, len).expect("cut the segment");
        }
    }

    let (_, recovered) =
        WalStore::recover(Arc::clone(&backend) as Arc<dyn StorageBackend>).expect("recover");
    prop_assert_eq!(recovered.torn_truncations, u64::from(partial > 0));

    let (expected, best) = simulate(shards, &records[..surviving]);
    let mut expected_total = 0u64;
    for (s, state) in expected.iter().enumerate() {
        expected_total += state.iter().map(|(b, e)| e - b).sum::<u64>();
        prop_assert_eq!(
            sort_recovered(recovered.shard_intervals[s].clone()),
            sorted_intervals(state),
            "shard {} diverged (global cut {} of {}, {} whole records)",
            s,
            cut,
            total,
            surviving
        );
    }
    // Conservation across shards: a half-durable move duplicates mass,
    // never loses it — the oracle total already accounts for the copy.
    prop_assert_eq!(recovered.total_length(), UBig::from(expected_total));
    prop_assert_eq!(recovered.solution.map(|s| s.cost), best);
    Ok(())
}

fn arb_move_steps(max: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0u8..6, 0u8..8, 0u16..1024, 1u32..1_000_000), 1..max)
}

proptest! {
    #[test]
    fn kill_at_any_byte_recovers_exactly_s1(
        steps in arb_steps(60),
        cut_ppm in 0u32..=1_000_000,
    ) {
        check_kill_at(1, &steps, 0, cut_ppm)?;
    }

    #[test]
    fn kill_at_any_byte_recovers_exactly_s4(
        steps in arb_steps(60),
        cut_shard in 0usize..4,
        cut_ppm in 0u32..=1_000_000,
    ) {
        check_kill_at(4, &steps, cut_shard, cut_ppm)?;
    }

    #[test]
    fn global_cut_with_cross_shard_moves_recovers_exactly_s1(
        steps in arb_move_steps(60),
        cut_ppm in 0u32..=1_000_000,
    ) {
        check_global_kill(1, &steps, cut_ppm)?;
    }

    #[test]
    fn global_cut_with_cross_shard_moves_recovers_exactly_s4(
        steps in arb_move_steps(60),
        cut_ppm in 0u32..=1_000_000,
    ) {
        check_global_kill(4, &steps, cut_ppm)?;
    }

    #[test]
    fn mid_log_damage_is_rejected_s1(
        steps in arb_steps(40),
        pick in 0u32..u32::MAX,
    ) {
        check_corruption(1, &steps, 0, pick)?;
    }

    #[test]
    fn mid_log_damage_is_rejected_s4(
        steps in arb_steps(40),
        cut_shard in 0usize..4,
        pick in 0u32..u32::MAX,
    ) {
        check_corruption(4, &steps, cut_shard, pick)?;
    }
}
