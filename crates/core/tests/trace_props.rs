//! Codec property tests for the replicable run-trace.
//!
//! Mirrors the `wal_props.rs` scheme: random symbolic event sequences
//! are materialized into a [`RunTrace`], serialized, and the properties
//! pin the three contracts the format documents:
//!
//! * **round-trip** — decode(encode(t)) reproduces the meta header and
//!   every event exactly, for every event kind, including intervals at
//!   50!-scale (the paper's 50-job flowshop roots do not fit in any
//!   machine word);
//! * **single-byte corruption is refused loudly** — flipping any one
//!   byte of the serialized trace (magic, CRC field, body, separator,
//!   even a newline) makes [`RunTrace::decode`] fail with
//!   [`TraceError::Corrupt`], never silently drop or alter an event
//!   (per-line CRC-32 detects all single-byte errors by construction);
//! * **truncation is refused** — any strict byte-prefix short of the
//!   counted `end` footer is rejected, so a torn download can never
//!   replay as a complete run. (Cutting only the final newline leaves
//!   a complete trace — nothing was lost — so the property cuts
//!   strictly inside the payload.)

use gridbnb_core::{
    Interval, MetricsRegistry, RunTrace, Solution, TraceError, TraceEvent, TraceMeta, UBig, WalOp,
};
use proptest::prelude::*;

/// Symbolic event: (kind, shard, worker, a, len, cost, huge-scale flag).
type Step = (u8, u8, u16, u64, u64, u64, bool);

fn arb_steps(max: usize) -> impl Strategy<Value = Vec<Step>> {
    // Nested pair of tuples: the flat 7-tuple exceeds the largest tuple
    // arity `Strategy` is implemented for.
    let step = (
        (0u8..7, 0u8..4, 0u16..64),
        (0u64..1 << 48, 1u64..1 << 32, 1u64..1_000_000, any::<bool>()),
    )
        .prop_map(|((kind, shard, worker), (a, len, cost, huge))| {
            (kind, shard, worker, a, len, cost, huge)
        });
    proptest::collection::vec(step, 0..max)
}

/// An interval at machine scale, or offset past 50! when `huge` — the
/// magnitude a real 50-job flowshop root interval lives at.
fn interval(a: u64, len: u64, huge: bool) -> Interval {
    let mut begin = UBig::from(a);
    if huge {
        begin += &UBig::factorial(50);
    }
    let mut end = begin.clone();
    end += &UBig::from(len);
    Interval::new(begin, end)
}

fn materialize(steps: &[Step]) -> Vec<TraceEvent> {
    steps
        .iter()
        .map(|&(kind, shard, worker, a, len, cost, huge)| {
            let shard = shard as u32;
            let iv = interval(a, len, huge);
            match kind {
                0 => TraceEvent::Op {
                    shard,
                    op: WalOp::Insert(iv),
                },
                1 => TraceEvent::Op {
                    shard,
                    op: WalOp::Remove(iv),
                },
                2 => TraceEvent::Op {
                    shard,
                    op: WalOp::Replace {
                        old: iv.clone(),
                        new: interval(a, 1 + len / 2, huge),
                    },
                },
                3 => TraceEvent::Op {
                    shard,
                    op: WalOp::Solution(Solution::new(cost, (0..(worker % 8) as u64).collect())),
                },
                4 => TraceEvent::Handout {
                    worker: worker as u64,
                    shard,
                    interval: iv,
                },
                5 => TraceEvent::Steal {
                    victim: shard,
                    dest: (shard + 1) % 4,
                    interval: iv,
                },
                _ => TraceEvent::Cutoff { shard, cost },
            }
        })
        .collect()
}

fn trace_of(seed: u64, events: &[TraceEvent]) -> RunTrace {
    let trace = RunTrace::new(
        TraceMeta {
            seed,
            workers: 8,
            shards: 4,
        },
        &MetricsRegistry::new(),
    );
    for e in events {
        match e {
            TraceEvent::Op { shard, op } => {
                trace.record_ops(*shard as usize, std::slice::from_ref(op))
            }
            TraceEvent::Handout {
                worker,
                shard,
                interval,
            } => trace.record_handout(*worker, *shard as usize, interval),
            TraceEvent::Steal {
                victim,
                dest,
                interval,
            } => trace.record_steal(*victim as usize, *dest as usize, interval),
            TraceEvent::Cutoff { shard, cost } => trace.record_cutoff(*shard as usize, *cost),
        }
    }
    trace
}

proptest! {
    #[test]
    fn every_event_kind_round_trips(seed in any::<u64>(), steps in arb_steps(40)) {
        let events = materialize(&steps);
        let trace = trace_of(seed, &events);
        prop_assert_eq!(trace.len(), events.len());
        let decoded = RunTrace::decode(trace.encode().as_bytes()).expect("decode");
        prop_assert_eq!(decoded.meta(), trace.meta());
        prop_assert_eq!(decoded.events(), events);
    }

    #[test]
    fn single_byte_corruption_is_refused(
        seed in any::<u64>(),
        steps in arb_steps(20),
        pos_ppm in 0u32..1_000_000,
        mask in 1u8..=255,
    ) {
        let trace = trace_of(seed, &materialize(&steps));
        let mut bytes = trace.encode().into_bytes();
        let pos = (pos_ppm as usize * bytes.len() / 1_000_000).min(bytes.len() - 1);
        bytes[pos] ^= mask;
        match RunTrace::decode(&bytes) {
            Err(TraceError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error class: {other}"),
            Ok(_) => prop_assert!(
                false,
                "flipping byte {pos} with mask {mask:#x} was silently accepted"
            ),
        }
    }

    #[test]
    fn truncation_is_refused(
        seed in any::<u64>(),
        steps in arb_steps(20),
        cut_ppm in 0u32..1_000_000,
    ) {
        let trace = trace_of(seed, &materialize(&steps));
        let bytes = trace.encode().into_bytes();
        // Cut strictly inside the payload: [0, len - 2]. Cutting only
        // the trailing newline (len - 1) leaves a complete trace.
        let cut = (cut_ppm as usize * bytes.len() / 1_000_000).min(bytes.len() - 2);
        match RunTrace::decode(&bytes[..cut]) {
            Err(TraceError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error class: {other}"),
            Ok(_) => prop_assert!(false, "truncation at byte {cut} was silently accepted"),
        }
    }
}
