//! State-machine property tests: the coordinator keeps its invariants
//! (disjoint intervals, work conservation, monotone size) under
//! arbitrary interleavings of worker requests, including stale and
//! nonsensical ones.

use gridbnb_core::{
    compare_len_per_power, compare_len_per_power_exact, Coordinator, CoordinatorConfig, Interval,
    Request, Response, Solution, UBig, WorkerId,
};
use proptest::prelude::*;

/// Symbolic worker action.
#[derive(Clone, Debug)]
enum Action {
    Join {
        worker: u8,
        power: u16,
    },
    RequestWork {
        worker: u8,
        power: u16,
    },
    /// The worker advances its live interval by a fraction and reports.
    Progress {
        worker: u8,
        advance_ppm: u32,
    },
    Report {
        worker: u8,
        cost: u16,
    },
    Leave {
        worker: u8,
    },
    ExpireAll,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u8..6, 1u16..1000).prop_map(|(worker, power)| Action::Join { worker, power }),
        (0u8..6, 1u16..1000).prop_map(|(worker, power)| Action::RequestWork { worker, power }),
        (0u8..6, 0u32..1_200_000).prop_map(|(worker, advance_ppm)| Action::Progress {
            worker,
            advance_ppm
        }),
        (0u8..6, 1u16..5000).prop_map(|(worker, cost)| Action::Report { worker, cost }),
        (0u8..6).prop_map(|worker| Action::Leave { worker }),
        Just(Action::ExpireAll),
    ]
}

/// Tracks each live worker's view of its interval, mirroring an explorer
/// without actually exploring: `Progress` advances the begin, applies the
/// intersection from the ack, and fully-explored units trigger
/// `RequestWork` next time.
#[derive(Default)]
struct WorkerModel {
    interval: Option<Interval>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_hold_under_arbitrary_interleavings(
        actions in proptest::collection::vec(arb_action(), 1..120),
        threshold in 1u64..200,
        total in 100u64..100_000,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let mut coordinator = Coordinator::new(
            root.clone(),
            CoordinatorConfig {
                duplication_threshold: UBig::from(threshold),
                holder_timeout_ns: 50,
                initial_upper_bound: Some(10_000),
            },
        );
        let mut workers: Vec<WorkerModel> = (0..6).map(|_| WorkerModel::default()).collect();
        let mut explored_total = UBig::zero();
        let mut last_size = coordinator.size();
        let mut now = 0u64;

        for action in actions {
            now += 1;
            match action {
                Action::Join { worker, power } => {
                    let resp = coordinator.handle(
                        Request::Join { worker: WorkerId(worker as u64), power: power as u64 },
                        now,
                    );
                    match resp {
                        Response::Work { interval, .. } => {
                            workers[worker as usize].interval = Some(interval);
                        }
                        Response::Terminate => {}
                        other => prop_assert!(false, "bad join response {:?}", other),
                    }
                }
                Action::RequestWork { worker, power } => {
                    // Only legal if the worker's unit is exhausted (the
                    // runtime guarantees this); model it by finishing the
                    // unit first.
                    let w = &mut workers[worker as usize];
                    if let Some(iv) = w.interval.take() {
                        // Mark the whole live interval as explored.
                        explored_total += &iv.length();
                    }
                    let resp = coordinator.handle(
                        Request::RequestWork { worker: WorkerId(worker as u64), power: power as u64 },
                        now,
                    );
                    match resp {
                        Response::Work { interval, .. } => {
                            workers[worker as usize].interval = Some(interval);
                        }
                        Response::Terminate => {}
                        other => prop_assert!(false, "bad request response {:?}", other),
                    }
                }
                Action::Progress { worker, advance_ppm } => {
                    let w = &mut workers[worker as usize];
                    if let Some(live) = &mut w.interval {
                        // Advance begin by a fraction of the live length
                        // (can overshoot past the end: ppm > 1e6 is
                        // clamped by the explorer semantics).
                        let len = live.length();
                        let adv = len.mul_div_floor(advance_ppm.min(1_000_000) as u64, 1_000_000);
                        let new_begin = live.begin().add(&adv);
                        explored_total += &adv;
                        live.advance_begin(&new_begin);
                        let reported = live.clone();
                        match coordinator.handle(
                            Request::Update { worker: WorkerId(worker as u64), interval: reported },
                            now,
                        ) {
                            Response::UpdateAck { interval, .. } => {
                                if interval.is_empty() {
                                    w.interval = None;
                                } else {
                                    live.retreat_end(interval.end());
                                    if live.is_empty() {
                                        w.interval = None;
                                    }
                                }
                            }
                            other => prop_assert!(false, "bad update response {:?}", other),
                        }
                    }
                }
                Action::Report { worker, cost } => {
                    let resp = coordinator.handle(
                        Request::ReportSolution {
                            worker: WorkerId(worker as u64),
                            solution: Solution::new(cost as u64, vec![0]),
                        },
                        now,
                    );
                    match resp {
                        Response::SolutionAck { cutoff } => {
                            prop_assert!(cutoff.unwrap() <= 10_000);
                            prop_assert!(cutoff.unwrap() <= cost as u64 || cutoff.unwrap() < 10_000);
                        }
                        other => prop_assert!(false, "bad report response {:?}", other),
                    }
                }
                Action::Leave { worker } => {
                    let _ = coordinator.handle(
                        Request::Leave { worker: WorkerId(worker as u64) },
                        now,
                    );
                    workers[worker as usize].interval = None;
                }
                Action::ExpireAll => {
                    now += 1_000; // jump past the timeout
                    coordinator.expire_stale_holders(now);
                }
            }

            // Core invariants after every step.
            coordinator.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
            let size = coordinator.size();
            prop_assert!(size <= last_size, "INTERVALS size grew");
            last_size = size.clone();
            // Work conservation: remaining + explored covers the root.
            // (Redundancy means explored can overshoot, never undershoot.)
            let remaining = size;
            let covered = remaining.add(&explored_total);
            prop_assert!(
                covered >= root.length(),
                "work lost: remaining+explored {} < total {}",
                covered,
                root.length()
            );
        }
    }

    /// The indexed selection (priority set) must pick exactly the entry
    /// the naive linear-scan oracle picks, across arbitrary `INTERVALS`
    /// states — partitions, duplications, expiries, removals and
    /// re-keyed entries included. This is the guard on the O(log n)
    /// hot-path rewrite: any stale or missing priority key shows up as a
    /// disagreement here (or as an index-consistency failure in
    /// `check_invariants`).
    #[test]
    fn indexed_selection_matches_linear_oracle(
        ops in proptest::collection::vec(
            (0u8..5, 0u8..8, 1u16..500, 0u32..1_000_000),
            1..200,
        ),
        threshold in 1u64..5_000,
        total in 100u64..1_000_000,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let mut coordinator = Coordinator::new(
            root,
            CoordinatorConfig {
                duplication_threshold: UBig::from(threshold),
                holder_timeout_ns: 40,
                initial_upper_bound: Some(10_000),
            },
        );
        let mut now = 0u64;
        for (op, worker, power, frac_ppm) in ops {
            now += 1;
            let worker = WorkerId(worker as u64);
            match op {
                0 => {
                    let _ = coordinator.handle(
                        Request::Join { worker, power: power as u64 },
                        now,
                    );
                }
                1 => {
                    let _ = coordinator.handle(
                        Request::RequestWork { worker, power: power as u64 },
                        now,
                    );
                }
                2 => {
                    // Report an arbitrary sub-interval of whatever this
                    // worker holds (the coordinator intersects, so a
                    // fabricated range only ever shrinks its entry).
                    let held = coordinator
                        .entries()
                        .iter()
                        .find(|e| e.holders.iter().any(|h| h.worker == worker))
                        .map(|e| e.interval.clone());
                    if let Some(iv) = held {
                        let adv = iv.length().mul_div_floor(frac_ppm as u64, 1_000_000);
                        let begin = iv.begin().add(&adv);
                        let _ = coordinator.handle(
                            Request::Update {
                                worker,
                                interval: Interval::new(begin, iv.end().clone()),
                            },
                            now,
                        );
                    } else {
                        // Stale update from an untracked worker.
                        let _ = coordinator.handle(
                            Request::Update {
                                worker,
                                interval: Interval::new(UBig::zero(), UBig::from(total)),
                            },
                            now,
                        );
                    }
                }
                3 => {
                    let _ = coordinator.handle(Request::Leave { worker }, now);
                }
                _ => {
                    now += 100; // jump past the timeout
                    coordinator.expire_stale_holders(now);
                }
            }
            prop_assert_eq!(
                coordinator.selection_peek(),
                coordinator.selection_oracle(),
                "indexed selection diverged from the linear oracle"
            );
            coordinator.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("invariant violated: {e}"))
            })?;
        }
    }

    /// The approximate-first selection-key comparator must agree with
    /// the exact cross-multiplication on *every* input — `BTreeSet`
    /// correctness depends on the order being identical, not merely
    /// close. Random magnitudes exercise the bit-length screen and the
    /// u128/f64 paths; the crafted scaled pair (`len·s ± jitter` against
    /// `power·s`) manufactures exact ties and one-off near-ties that
    /// must fall through to the exact comparator.
    #[test]
    fn fast_ratio_comparator_matches_exact(
        limbs_a in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..5),
        limbs_b in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..5),
        hp_a in 1u64..u64::MAX,
        hp_b in 1u64..u64::MAX,
        small_hp in 1u64..(1u64 << 31),
        scale in 1u64..(1u64 << 31),
        jitter in 0u64..3,
    ) {
        let len_a = UBig::from_limbs(limbs_a);
        let len_b = UBig::from_limbs(limbs_b);
        let fast = compare_len_per_power(&len_a, hp_a, &len_b, hp_b);
        let exact = compare_len_per_power_exact(&len_a, hp_a, &len_b, hp_b);
        prop_assert_eq!(fast, exact, "diverged on random magnitudes");
        // Antisymmetry of the fast path (required for a total order).
        prop_assert_eq!(
            compare_len_per_power(&len_b, hp_b, &len_a, hp_a),
            exact.reverse()
        );
        // Crafted near-tie: len_a·scale ± jitter per power small_hp·scale
        // vs len_a per small_hp — ratios equal (jitter 0) or one part in
        // ~2^250 apart, far below the f64 margin.
        let len_c = len_a.mul_u64(scale).add(&UBig::from(jitter));
        let hp_c = small_hp * scale;
        prop_assert_eq!(
            compare_len_per_power(&len_c, hp_c, &len_a, small_hp),
            compare_len_per_power_exact(&len_c, hp_c, &len_a, small_hp),
            "diverged on a crafted near-tie"
        );
    }

    #[test]
    fn cutoff_is_monotone_nonincreasing(costs in proptest::collection::vec(1u64..10_000, 1..50)) {
        let mut coordinator = Coordinator::new(
            Interval::new(UBig::zero(), UBig::from(100u64)),
            CoordinatorConfig::default(),
        );
        let mut last = u64::MAX;
        for (i, cost) in costs.into_iter().enumerate() {
            coordinator.handle(
                Request::ReportSolution {
                    worker: WorkerId(0),
                    solution: Solution::new(cost, vec![0]),
                },
                i as u64,
            );
            let cutoff = coordinator.cutoff().unwrap();
            prop_assert!(cutoff <= last);
            prop_assert!(cutoff <= cost);
            last = cutoff;
        }
    }
}
