//! Unit tests for the batched protocol surface: the combined
//! [`Request::UpdateAndReport`], [`Coordinator::apply_batch`], and
//! [`ShardRouter::handle_bundle`] — including the lock-amortization
//! claim itself (one contact per shard per bundle, pinned through the
//! router's contacts counter).

use gridbnb_core::{
    Coordinator, CoordinatorConfig, Interval, Request, Response, ShardRouter, Solution, UBig,
    WorkerId,
};

fn config() -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::one(),
        holder_timeout_ns: 1_000,
        initial_upper_bound: None,
    }
}

fn root(total: u64) -> Interval {
    Interval::new(UBig::zero(), UBig::from(total))
}

/// First `count` worker ids homed on `shard` under `router`'s hash.
fn workers_on(router: &ShardRouter, shard: u32, count: usize) -> Vec<WorkerId> {
    (0..10_000u64)
        .map(WorkerId)
        .filter(|&w| router.route(w).0 == shard)
        .take(count)
        .collect()
}

#[test]
fn bundle_of_updates_is_one_contact_per_shard() {
    let router = ShardRouter::new(root(1_000_000), 4, config()).unwrap();
    let on_zero = workers_on(&router, 0, 3);
    let on_one = workers_on(&router, 1, 2);
    for &w in on_zero.iter().chain(&on_one) {
        match router.handle(
            Request::Join {
                worker: w,
                power: 10,
            },
            0,
        ) {
            Response::Work { .. } => {}
            other => panic!("join failed: {other:?}"),
        }
    }
    let before_contacts = router.contacts();
    let before_updates = router.stats().updates;
    // Ten updates across two home shards, delivered as one bundle.
    let bundle: Vec<_> = on_zero
        .iter()
        .chain(&on_one)
        .cycle()
        .take(10)
        .map(|&w| {
            router.envelope(Request::Update {
                worker: w,
                interval: root(1_000_000),
            })
        })
        .collect();
    let responses = router.handle_bundle(bundle, 1);
    assert_eq!(responses.len(), 10);
    // The acceptance claim: ten protocol ops, two lock acquisitions.
    assert_eq!(
        router.contacts() - before_contacts,
        2,
        "a bundle must take exactly one contact per touched shard"
    );
    assert_eq!(router.stats().updates - before_updates, 10);
    // Every reply is stamped with the worker's home shard, in input
    // order.
    for (i, (shard, response)) in responses.iter().enumerate() {
        let w = on_zero
            .iter()
            .chain(&on_one)
            .cycle()
            .nth(i)
            .copied()
            .unwrap();
        assert_eq!(*shard, router.route(w), "reply {i} stamped wrong");
        assert!(matches!(response, Response::UpdateAck { .. }));
    }
}

#[test]
fn empty_bundle_is_a_no_op() {
    let router = ShardRouter::new(root(100), 2, config()).unwrap();
    let before = router.contacts();
    assert!(router.handle_bundle(Vec::new(), 0).is_empty());
    assert_eq!(router.contacts(), before);
}

#[test]
fn update_and_report_is_one_contact_with_both_ops_counted() {
    let mut coordinator = Coordinator::new(root(1_000), config());
    let w = WorkerId(7);
    let interval = match coordinator.handle(
        Request::Join {
            worker: w,
            power: 5,
        },
        0,
    ) {
        Response::Work { interval, .. } => interval,
        other => panic!("join failed: {other:?}"),
    };
    let reported = Interval::new(
        interval.begin().add(&UBig::from(10u64)),
        interval.end().clone(),
    );
    let ack = coordinator.handle(
        Request::UpdateAndReport {
            worker: w,
            interval: reported.clone(),
            solution: Some(Solution::new(42, vec![0])),
        },
        1,
    );
    match ack {
        Response::UpdateAck { interval, cutoff } => {
            // The cutoff already reflects the solution merged in the
            // same contact.
            assert_eq!(cutoff, Some(42));
            assert_eq!(interval, reported);
        }
        other => panic!("expected an update ack, got {other:?}"),
    }
    assert_eq!(coordinator.stats().updates, 1);
    assert_eq!(coordinator.stats().solution_reports, 1);
    assert_eq!(coordinator.stats().improvements, 1);
}

#[test]
fn update_and_report_equals_report_then_update() {
    let build = || {
        let mut c = Coordinator::new(root(10_000), config());
        for w in 0..4u64 {
            let _ = c.handle(
                Request::Join {
                    worker: WorkerId(w),
                    power: 1 + w,
                },
                w,
            );
        }
        c
    };
    let mut combined = build();
    let mut split = build();
    let w = WorkerId(2);
    let reported = root(10_000);
    let solution = Solution::new(99, vec![1, 2]);
    let a = combined.handle(
        Request::UpdateAndReport {
            worker: w,
            interval: reported.clone(),
            solution: Some(solution.clone()),
        },
        50,
    );
    let _ = split.handle(
        Request::ReportSolution {
            worker: w,
            solution,
        },
        50,
    );
    let b = split.handle(
        Request::Update {
            worker: w,
            interval: reported,
        },
        50,
    );
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert_eq!(combined.stats(), split.stats());
    assert_eq!(combined.size(), split.size());
    assert_eq!(
        combined.solution().map(|s| s.cost),
        split.solution().map(|s| s.cost)
    );
    combined.check_invariants().unwrap();
}

#[test]
fn drained_shard_mid_bundle_steals_and_finishes_the_tail() {
    // Two shards; the only worker homed on shard 0 holds all of its
    // slice. A bundle [RequestWork, Update] drains shard 0 at the first
    // request: the router must steal from shard 1 inside the bundle,
    // serve the work request, and still process the tail.
    let router = ShardRouter::new(root(1_000), 2, config()).unwrap();
    let w = workers_on(&router, 0, 1)[0];
    match router.handle(
        Request::Join {
            worker: w,
            power: 3,
        },
        0,
    ) {
        Response::Work { .. } => {}
        other => panic!("join failed: {other:?}"),
    }
    let bundle = vec![
        router.envelope(Request::RequestWork {
            worker: w,
            power: 3,
        }),
        router.envelope(Request::Update {
            worker: w,
            interval: root(1_000),
        }),
    ];
    let responses = router.handle_bundle(bundle, 1);
    assert_eq!(responses.len(), 2);
    let stolen = match &responses[0].1 {
        Response::Work { interval, .. } => interval.clone(),
        other => panic!("expected stolen work, got {other:?}"),
    };
    assert!(!stolen.is_empty());
    assert_eq!(router.steals(), 1, "the bundle should have stolen once");
    match &responses[1].1 {
        Response::UpdateAck { interval, .. } => {
            // The tail ran after the steal: the ack reflects the
            // freshly assigned (stolen) copy.
            assert_eq!(*interval, stolen);
        }
        other => panic!("expected the tail's ack, got {other:?}"),
    }
    router.check_invariants().unwrap();
}

#[test]
fn retry_can_appear_inside_a_bundle_reply() {
    // Root of length 2 across 2 shards: each shard owns a single
    // length-1 entry. Once both are held, a drained shard finds nothing
    // stealable (held and unsplittable), so a work request inside a
    // bundle draws the endgame backpressure `Retry` — never a false
    // `Terminate`.
    let router = ShardRouter::new(root(2), 2, config()).unwrap();
    let w0 = workers_on(&router, 0, 1)[0];
    let w1 = workers_on(&router, 1, 1)[0];
    for w in [w0, w1] {
        match router.handle(
            Request::Join {
                worker: w,
                power: 1,
            },
            0,
        ) {
            Response::Work { .. } => {}
            other => panic!("join failed: {other:?}"),
        }
    }
    let bundle = vec![router.envelope(Request::RequestWork {
        worker: w0,
        power: 1,
    })];
    let responses = router.handle_bundle(bundle, 1);
    assert!(
        matches!(responses[0].1, Response::Retry),
        "expected endgame backpressure, got {:?}",
        responses[0].1
    );
    assert!(!router.is_terminated());
}

#[test]
fn batched_heartbeats_land_on_the_bundle_timestamp() {
    let timeout = config().holder_timeout_ns;
    let router = ShardRouter::new(root(1_000), 1, config()).unwrap();
    let w = WorkerId(3);
    let _ = router.handle(
        Request::Join {
            worker: w,
            power: 1,
        },
        0,
    );
    // A bundle of heartbeat-only updates at t = 10: the deferred
    // heartbeat maintenance must still move the stamp to 10.
    let bundle: Vec<_> = (0..5)
        .map(|_| {
            router.envelope(Request::Update {
                worker: w,
                interval: root(1_000),
            })
        })
        .collect();
    let _ = router.handle_bundle(bundle, 10);
    // Were the stamp still at the join (0), this sweep would expire it.
    assert_eq!(router.expire_stale_holders(timeout + 5), 0);
    // Past the refreshed stamp's window it does expire.
    assert_eq!(router.expire_stale_holders(10 + timeout + 1), 1);
}

#[test]
fn apply_batch_matches_sequential_handling_on_a_mixed_batch() {
    let build = || {
        let mut c = Coordinator::new(root(100_000), config());
        for w in 0..5u64 {
            let _ = c.handle(
                Request::Join {
                    worker: WorkerId(w),
                    power: 1 + w % 3,
                },
                w,
            );
        }
        c
    };
    let mut batched = build();
    let mut sequential = build();
    let requests = vec![
        Request::Update {
            worker: WorkerId(0),
            interval: root(100_000),
        },
        Request::UpdateAndReport {
            worker: WorkerId(1),
            interval: root(100_000),
            solution: Some(Solution::new(77, vec![0])),
        },
        Request::Update {
            worker: WorkerId(0),
            interval: root(90_000),
        },
        Request::ReportSolution {
            worker: WorkerId(2),
            solution: Solution::new(80, vec![1]),
        },
        Request::RequestWork {
            worker: WorkerId(3),
            power: 2,
        },
        Request::Leave {
            worker: WorkerId(4),
        },
        Request::Update {
            worker: WorkerId(2),
            interval: root(100_000),
        },
    ];
    let outcome = batched.apply_batch(requests.clone(), 500);
    assert!(outcome.stalled.is_none());
    let expected: Vec<Response> = requests
        .into_iter()
        .map(|r| sequential.handle(r, 500))
        .collect();
    assert_eq!(outcome.responses.len(), expected.len());
    for (a, b) in outcome.responses.iter().zip(&expected) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
    assert_eq!(batched.stats(), sequential.stats());
    assert_eq!(batched.size(), sequential.size());
    batched.check_invariants().unwrap();
}
