//! Durability integration tests at the runtime layer: durable runs
//! prove the same optimum, a mid-flight crash image recovers and
//! finishes, and a failing checkpoint store can no longer fail
//! silently.

use gridbnb_core::checkpoint::CheckpointStore;
use gridbnb_core::runtime::{run, run_with_router, CheckpointPolicy, RuntimeConfig};
use gridbnb_core::{MemoryBackend, MetricsRegistry, ShardRouter, StorageBackend, UBig, WalStore};
use gridbnb_engine::solve;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem, Problem};
use std::sync::Arc;
use std::time::Duration;

fn small_flowshop(seed: i64) -> FlowshopProblem {
    let instance = generate(9, 4, seed);
    FlowshopProblem::new(
        instance,
        BoundMode::Johnson(gridbnb_flowshop::bounds::PairSelection::All),
    )
}

fn fast_config(workers: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(workers);
    config.poll_nodes = 500;
    config.coordinator.duplication_threshold = UBig::from(32u64);
    config.coordinator.holder_timeout_ns = 20_000_000; // 20 ms
    config
}

/// A durable run proves the optimum, journals real deltas, and leaves
/// the terminal state committed: recovering the backend afterwards
/// yields empty intervals (nothing left to explore) and the optimal
/// solution — plus live `gbnb_wal_*` series on the run's registry.
#[test]
fn durable_run_is_exact_and_commits_terminal_state() {
    let problem = small_flowshop(77);
    let expected = solve(&problem, None).best_cost;
    let backend = Arc::new(MemoryBackend::new());
    let registry = MetricsRegistry::new();
    let config = fast_config(4)
        .with_shards(2)
        .with_metrics(&registry)
        .with_durability(
            Arc::clone(&backend) as Arc<dyn StorageBackend>,
            Duration::from_millis(5),
        );
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert_eq!(report.checkpoint_failures, 0);

    let scrape = registry.render_text();
    assert!(
        scrape.contains("gbnb_wal_appends_total"),
        "wal series missing from the run registry:\n{scrape}"
    );

    let (_, state) =
        WalStore::recover(Arc::clone(&backend) as Arc<dyn StorageBackend>).expect("recover");
    assert_eq!(
        state.total_length(),
        UBig::zero(),
        "terminal compaction must commit the fully-explored state"
    );
    assert_eq!(state.solution.map(|s| s.cost), expected);
    assert_eq!(
        state.replayed_ops, 0,
        "a compacted terminal backend has no log tail to replay"
    );
}

/// Crash-anywhere: image the backend *while the durable run is live*
/// (MemoryBackend::dump is one mutex — a consistent point-in-time copy,
/// exactly what a kill -9 leaves on disk), then recover the image,
/// rebuild a router from it, and finish the campaign on the recovered
/// state. The resumed run must prove the same optimum.
#[test]
fn mid_flight_crash_image_recovers_and_finishes() {
    let problem = small_flowshop(88);
    let expected = solve(&problem, None).best_cost;
    let backend = Arc::new(MemoryBackend::new());
    let config = fast_config(4).with_shards(2).with_durability(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        Duration::from_millis(2),
    );

    // Snapshot thief: grab crash images continuously while the run is
    // in flight; the last image taken before termination wins.
    let imaging = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let thief = {
        let backend = Arc::clone(&backend);
        let imaging = Arc::clone(&imaging);
        std::thread::spawn(move || {
            let mut image = backend.dump();
            while imaging.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
                let next = backend.dump();
                if !next.is_empty() {
                    image = next;
                }
            }
            image
        })
    };
    let live = run(&problem, &config);
    imaging.store(false, std::sync::atomic::Ordering::Release);
    let image = thief.join().expect("imaging thread panicked");
    assert_eq!(live.proven_optimum, expected);

    // "Restart" from the crash image on a fresh backend.
    let restored = Arc::new(MemoryBackend::new());
    restored.load(image);
    let (_, state) = WalStore::recover(Arc::clone(&restored) as Arc<dyn StorageBackend>)
        .expect("every point-in-time image must be recoverable");
    let remaining = state.total_length();
    let router = ShardRouter::restore(
        problem.shape().root_range(),
        state.shard_intervals,
        state.solution,
        config.coordinator.clone(),
    )
    .expect("restore");
    assert_eq!(
        router.size(),
        remaining,
        "the restored router holds exactly the recovered interval mass"
    );
    let resumed_config = fast_config(4).with_shards(2).with_durability(
        Arc::clone(&restored) as Arc<dyn StorageBackend>,
        Duration::from_millis(2),
    );
    let resumed = run_with_router(&problem, router, &resumed_config);
    assert_eq!(
        resumed.proven_optimum, expected,
        "resumed campaign must prove the same optimum"
    );
}

/// Satellite check: a checkpoint store that cannot write is *surfaced*
/// — `RunReport::checkpoint_failures` counts every failed save and the
/// `gbnb_checkpoint_failures_total` series records it, on both the
/// sharded supervisor path and the classic farmer path. Before this
/// counter existed, `save().is_ok()` swallowed the error and a run with
/// a dead store looked identical to a healthy one.
#[test]
fn failing_checkpoint_store_is_surfaced() {
    let problem = small_flowshop(99);
    let expected = solve(&problem, None).best_cost;
    // A directory path that cannot exist: a *file* sits where the
    // parent directory would have to be.
    let dir = std::env::temp_dir().join(format!("gridbnb-ckpt-fail-{}", std::process::id()));
    std::fs::write(&dir, b"a file, not a directory").expect("plant blocker file");
    let store = CheckpointStore::new(dir.join("intervals.ckpt"), dir.join("solution.ckpt"));

    for shards in [1usize, 2] {
        let registry = MetricsRegistry::new();
        let mut config = fast_config(2).with_shards(shards).with_metrics(&registry);
        config.checkpoint = Some(CheckpointPolicy {
            store: store.clone(),
            every: Duration::from_millis(1),
        });
        let report = run(&problem, &config);
        assert_eq!(report.proven_optimum, expected, "run must stay exact");
        assert_eq!(report.farmer_checkpoints, 0, "no save can have succeeded");
        assert!(
            report.checkpoint_failures > 0,
            "S={shards}: failed checkpoints must be counted, not swallowed"
        );
        let scrape = registry.render_text();
        assert!(
            scrape.contains("gbnb_checkpoint_failures_total"),
            "S={shards}: failure series missing from scrape:\n{scrape}"
        );
    }
    let _ = std::fs::remove_file(&dir);
}
