//! Durability integration tests at the runtime layer: durable runs
//! prove the same optimum, a mid-flight crash image recovers and
//! finishes, and a failing checkpoint store can no longer fail
//! silently.

use gridbnb_core::checkpoint::CheckpointStore;
use gridbnb_core::runtime::{run, run_with_router, CheckpointPolicy, RuntimeConfig};
use gridbnb_core::{
    CoordinatorConfig, Fault, FaultBackend, Interval, IntervalSet, MemoryBackend, MetricsRegistry,
    Request, Response, ShardRouter, StorageBackend, UBig, WalStore, WorkerId,
};
use gridbnb_engine::solve;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem, Problem};
use std::sync::Arc;
use std::time::Duration;

fn small_flowshop(seed: i64) -> FlowshopProblem {
    let instance = generate(9, 4, seed);
    FlowshopProblem::new(
        instance,
        BoundMode::Johnson(gridbnb_flowshop::bounds::PairSelection::All),
    )
}

fn fast_config(workers: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(workers);
    config.poll_nodes = 500;
    config.coordinator.duplication_threshold = UBig::from(32u64);
    config.coordinator.holder_timeout_ns = 20_000_000; // 20 ms
    config
}

/// A durable run proves the optimum, journals real deltas, and leaves
/// the terminal state committed: recovering the backend afterwards
/// yields empty intervals (nothing left to explore) and the optimal
/// solution — plus live `gbnb_wal_*` series on the run's registry.
#[test]
fn durable_run_is_exact_and_commits_terminal_state() {
    let problem = small_flowshop(77);
    let expected = solve(&problem, None).best_cost;
    let backend = Arc::new(MemoryBackend::new());
    let registry = MetricsRegistry::new();
    let config = fast_config(4)
        .with_shards(2)
        .with_metrics(&registry)
        .with_durability(
            Arc::clone(&backend) as Arc<dyn StorageBackend>,
            Duration::from_millis(5),
        );
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);
    assert_eq!(report.checkpoint_failures, 0);

    let scrape = registry.render_text();
    assert!(
        scrape.contains("gbnb_wal_appends_total"),
        "wal series missing from the run registry:\n{scrape}"
    );

    let (_, state) =
        WalStore::recover(Arc::clone(&backend) as Arc<dyn StorageBackend>).expect("recover");
    assert_eq!(
        state.total_length(),
        UBig::zero(),
        "terminal compaction must commit the fully-explored state"
    );
    assert_eq!(state.solution.map(|s| s.cost), expected);
    assert_eq!(
        state.replayed_ops, 0,
        "a compacted terminal backend has no log tail to replay"
    );
}

/// Crash-anywhere: image the backend *while the durable run is live*
/// (MemoryBackend::dump is one mutex — a consistent point-in-time copy,
/// exactly what a kill -9 leaves on disk), then recover the image,
/// rebuild a router from it, and finish the campaign on the recovered
/// state. The resumed run must prove the same optimum.
#[test]
fn mid_flight_crash_image_recovers_and_finishes() {
    let problem = small_flowshop(88);
    let expected = solve(&problem, None).best_cost;
    let backend = Arc::new(MemoryBackend::new());
    let config = fast_config(4).with_shards(2).with_durability(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        Duration::from_millis(2),
    );

    // Snapshot thief: grab crash images continuously while the run is
    // in flight; the last image taken before termination wins.
    let imaging = Arc::new(std::sync::atomic::AtomicBool::new(true));
    let thief = {
        let backend = Arc::clone(&backend);
        let imaging = Arc::clone(&imaging);
        std::thread::spawn(move || {
            let mut image = backend.dump();
            while imaging.load(std::sync::atomic::Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(1));
                let next = backend.dump();
                if !next.is_empty() {
                    image = next;
                }
            }
            image
        })
    };
    let live = run(&problem, &config);
    imaging.store(false, std::sync::atomic::Ordering::Release);
    let image = thief.join().expect("imaging thread panicked");
    assert_eq!(live.proven_optimum, expected);

    // "Restart" from the crash image on a fresh backend.
    let restored = Arc::new(MemoryBackend::new());
    restored.load(image);
    let (_, state) = WalStore::recover(Arc::clone(&restored) as Arc<dyn StorageBackend>)
        .expect("every point-in-time image must be recoverable");
    let remaining = state.total_length();
    let router = ShardRouter::restore(
        problem.shape().root_range(),
        state.shard_intervals,
        state.solution,
        config.coordinator.clone(),
    )
    .expect("restore");
    assert_eq!(
        router.size(),
        remaining,
        "the restored router holds exactly the recovered interval mass"
    );
    let resumed_config = fast_config(4).with_shards(2).with_durability(
        Arc::clone(&restored) as Arc<dyn StorageBackend>,
        Duration::from_millis(2),
    );
    let resumed = run_with_router(&problem, router, &resumed_config);
    assert_eq!(
        resumed.proven_optimum, expected,
        "resumed campaign must prove the same optimum"
    );
}

/// A 2-shard router on a fault-injectable WAL, positioned one
/// `RequestWork` away from a cross-shard steal: w0 holds all of its home
/// shard's slice, the returned worker has taken (and still holds) all of
/// the other shard's slice, so that worker's next request can only be
/// served by stealing across shards.
fn steal_scene() -> (Arc<FaultBackend<MemoryBackend>>, ShardRouter, WorkerId) {
    let root = Interval::new(UBig::zero(), UBig::from(1_000u64));
    let config = CoordinatorConfig {
        duplication_threshold: UBig::from(1u64),
        holder_timeout_ns: 1_000_000_000,
        initial_upper_bound: Some(10_000),
    };
    let router = ShardRouter::new(root, 2, config).expect("router");
    let backend = Arc::new(FaultBackend::new(MemoryBackend::new()));
    let (intervals, solution) = router.snapshot();
    let wal = WalStore::create(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        &intervals,
        solution.as_ref(),
    )
    .expect("create wal");
    let router = router.with_wal(Arc::new(wal));

    let w0 = WorkerId(0);
    let home = router.route(w0);
    let w1 = (1..64)
        .map(WorkerId)
        .find(|&w| router.route(w) != home)
        .expect("some worker must hash to the other shard");
    for (t, w) in [(0u64, w0), (1, w1)] {
        match router.handle(
            Request::Join {
                worker: w,
                power: 10,
            },
            t,
        ) {
            Response::Work { .. } => {}
            other => panic!("expected work for {w:?}, got {other:?}"),
        }
    }
    (backend, router, w1)
}

/// Serves the thief's next request, which drains its home shard and
/// steals. Three appends run in order: the home shard's `del` of the
/// completed slice, the destination's pre-logged `Insert` of the stolen
/// interval, then the victim's `Replace` flush — arm the fault plan
/// accordingly.
fn steal_now(router: &ShardRouter, worker: WorkerId) -> Interval {
    let response = router.handle(Request::RequestWork { worker, power: 10 }, 2);
    let interval = match response {
        Response::Work { interval, .. } => interval,
        other => panic!("expected stolen work, got {other:?}"),
    };
    assert_eq!(router.steals(), 1, "the request must be served by a steal");
    interval
}

/// Regression: the cross-shard steal is logged destination-`Insert`
/// first. When that append *fails*, the victim's `Remove`/`Replace`
/// must not be logged either (both logs go stale instead) — otherwise a
/// crash image would show the stolen interval in neither shard's log and
/// recovery would silently shrink the search space.
#[test]
fn steal_with_failing_destination_append_loses_no_work() {
    let (backend, router, thief) = steal_scene();
    // Skip the home shard's `del`; fail the steal's pre-logged
    // destination Insert.
    backend.fail_after(1, 1, Fault::Error);
    let stolen = steal_now(&router, thief);
    let wal = router.wal().expect("wal attached");
    assert!(
        wal.append_failures() >= 2,
        "destination failure + victim poisoning must both be surfaced, saw {}",
        wal.append_failures()
    );
    backend.clear_faults();

    // Crash now: recover from what is on "disk". Neither half of the
    // move became durable, so the stolen interval is still covered by
    // the victim's log and the live mass (the root minus the thief's
    // completed 500-wide home slice) is exactly conserved.
    let (_, state) = WalStore::recover(Arc::clone(&backend) as Arc<dyn StorageBackend>)
        .expect("a failed steal append must not corrupt the log");
    assert_eq!(
        state.total_length(),
        UBig::from(500u64),
        "failed steal logging must not lose interval mass"
    );
    let mut union = IntervalSet::new();
    for interval in state.shard_intervals.iter().flatten() {
        union.insert(interval.clone());
    }
    assert!(
        union.covers(&stolen),
        "the stolen interval must survive in the victim's log"
    );
}

/// Regression: when the destination's `Insert` is durable but the
/// victim's half of the move fails to append, recovery sees the donated
/// range *twice* — once still inside the victim's logged interval, once
/// as the destination's Insert. Re-exploring a duplicate is safe; the
/// crash window where the interval existed in neither log is what this
/// pins down as gone.
#[test]
fn steal_with_failing_victim_append_duplicates_instead_of_losing() {
    let (backend, router, thief) = steal_scene();
    // Home `del` and the destination's Insert succeed; the victim's
    // Replace flush fails.
    backend.fail_after(2, 1, Fault::Error);
    let stolen = steal_now(&router, thief);
    backend.clear_faults();

    let (_, state) = WalStore::recover(Arc::clone(&backend) as Arc<dyn StorageBackend>)
        .expect("a half-logged steal must recover");
    // The victim's log rolled back to its full 500-wide slice, and the
    // destination's durable Insert duplicates the donated range on top.
    assert_eq!(
        state.total_length(),
        &UBig::from(500u64) + &stolen.length(),
        "the donated range must be duplicated, with nothing lost"
    );
    let mut union = IntervalSet::new();
    for interval in state.shard_intervals.iter().flatten() {
        union.insert(interval.clone());
    }
    assert!(
        union.covers(&stolen),
        "the stolen interval must be covered by the recovered state"
    );
}

/// Satellite check: a checkpoint store that cannot write is *surfaced*
/// — `RunReport::checkpoint_failures` counts every failed save and the
/// `gbnb_checkpoint_failures_total` series records it, on both the
/// sharded supervisor path and the classic farmer path. Before this
/// counter existed, `save().is_ok()` swallowed the error and a run with
/// a dead store looked identical to a healthy one.
#[test]
fn failing_checkpoint_store_is_surfaced() {
    let problem = small_flowshop(99);
    let expected = solve(&problem, None).best_cost;
    // A directory path that cannot exist: a *file* sits where the
    // parent directory would have to be.
    let dir = std::env::temp_dir().join(format!("gridbnb-ckpt-fail-{}", std::process::id()));
    std::fs::write(&dir, b"a file, not a directory").expect("plant blocker file");
    let store = CheckpointStore::new(dir.join("intervals.ckpt"), dir.join("solution.ckpt"));

    for shards in [1usize, 2] {
        let registry = MetricsRegistry::new();
        let mut config = fast_config(2).with_shards(shards).with_metrics(&registry);
        config.checkpoint = Some(CheckpointPolicy {
            store: store.clone(),
            every: Duration::from_millis(1),
        });
        let report = run(&problem, &config);
        assert_eq!(report.proven_optimum, expected, "run must stay exact");
        assert_eq!(report.farmer_checkpoints, 0, "no save can have succeeded");
        assert!(
            report.checkpoint_failures > 0,
            "S={shards}: failed checkpoints must be counted, not swallowed"
        );
        let scrape = registry.render_text();
        assert!(
            scrape.contains("gbnb_checkpoint_failures_total"),
            "S={shards}: failure series missing from scrape:\n{scrape}"
        );
    }
    let _ = std::fs::remove_file(&dir);
}
