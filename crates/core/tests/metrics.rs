//! Metrics-exactness tests: the registry is not a parallel estimate of
//! the run — its counters must agree *exactly* with the totals the
//! runtime assembles into its [`RunReport`] from per-thread
//! bookkeeping, because both are incremented at the same sites. Any
//! drift means an instrumentation point was added, dropped, or
//! double-counted.

use gridbnb_core::runtime::{run, RuntimeConfig};
use gridbnb_core::{MetricsRegistry, MetricsSnapshot, UBig};
use gridbnb_engine::solve;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem};

fn small_flowshop(seed: i64) -> FlowshopProblem {
    let instance = generate(9, 4, seed);
    FlowshopProblem::new(
        instance,
        BoundMode::Johnson(gridbnb_flowshop::bounds::PairSelection::All),
    )
}

fn fast_config(workers: usize) -> RuntimeConfig {
    let mut config = RuntimeConfig::new(workers);
    config.poll_nodes = 500;
    config.coordinator.duplication_threshold = UBig::from(32u64);
    config.coordinator.holder_timeout_ns = 20_000_000; // 20 ms
    config
}

/// Every histogram in a snapshot must satisfy the structural
/// invariant: per-bucket counts sum to the total observation count
/// (the `+Inf` bucket catches everything past the last bound, so no
/// observation can escape).
fn assert_histogram_invariants(snapshot: &MetricsSnapshot) {
    for h in &snapshot.histograms {
        assert_eq!(
            h.buckets.iter().sum::<u64>(),
            h.count,
            "histogram {} bucket counts disagree with its total",
            h.name
        );
        assert_eq!(
            h.buckets.len(),
            h.bounds.len() + 1,
            "histogram {} is missing its +Inf bucket",
            h.name
        );
    }
}

/// The headline invariant: a sharded run (W=8, S=4) with an injected
/// registry reports identical totals through both channels.
#[test]
fn sharded_run_counters_match_the_report_exactly() {
    let problem = small_flowshop(77);
    let expected = solve(&problem, None).best_cost;
    let registry = MetricsRegistry::new();
    let config = fast_config(8).with_shards(4).with_metrics(&registry);
    let report = run(&problem, &config);
    assert_eq!(report.proven_optimum, expected);

    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("gbnb_worker_contacts_total"),
        report.total_contacts(),
        "worker contact counters drifted from the report"
    );
    assert_eq!(
        snapshot.counter("gbnb_worker_bound_calls_total"),
        report.total_bound_calls(),
        "bound-call counters drifted from the report"
    );
    let units: u64 = report.workers.iter().map(|w| w.units).sum();
    assert_eq!(snapshot.counter("gbnb_worker_units_total"), units);
    assert_eq!(snapshot.counter("gbnb_router_steals_total"), report.steals);
    // Per-shard counters are a partition of the router total: summing
    // the `{shard=...}` label sets reproduces the unlabelled family.
    assert_eq!(
        snapshot.counter("gbnb_shard_contacts_total"),
        snapshot.counter("gbnb_router_contacts_total"),
        "per-shard contacts no longer partition the router total"
    );
    // The run explored something, and its timings landed.
    assert!(snapshot.counter("gbnb_worker_units_total") > 0);
    assert!(snapshot.histogram_count("gbnb_worker_slice_ns") > 0);
    assert!(snapshot.counter("gbnb_worker_busy_ns_total") > 0);
    assert_histogram_invariants(&snapshot);
}

/// The classic single-farmer path now routes every worker contact
/// through a [`gridbnb_core::ContactGateway`] over the farmer channel.
/// Pin it: same optimum as the sequential solve and as a shards = 1
/// router run, gateway stats present and self-consistent, and the
/// registry's gateway counters equal to the stats struct the report
/// carries (they are the same cells).
#[test]
fn classic_channel_gateway_is_exact_and_mirrored_in_metrics() {
    let problem = small_flowshop(88);
    let expected = solve(&problem, None).best_cost;

    let registry = MetricsRegistry::new();
    let classic = run(&problem, &fast_config(4).with_metrics(&registry));
    assert_eq!(classic.proven_optimum, expected);
    assert_eq!(classic.solution.as_ref().map(|s| s.cost), expected);

    let routed = run(&problem, &fast_config(4).with_shards(1));
    assert_eq!(routed.proven_optimum, expected);

    let stats = classic
        .gateway
        .expect("classic runs aggregate through the channel gateway");
    assert!(stats.flushes > 0, "the gateway never flushed");
    // One submission per contact, plus any backpressure resubmissions —
    // never fewer than the contacts the workers counted.
    assert!(stats.submissions >= classic.total_contacts());
    assert!(stats.requests >= stats.submissions);

    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("gbnb_gateway_submissions_total"),
        stats.submissions,
        "gateway registry counters drifted from GatewayStats"
    );
    assert_eq!(
        snapshot.counter("gbnb_gateway_requests_total"),
        stats.requests
    );
    assert_eq!(
        snapshot.counter("gbnb_worker_contacts_total"),
        classic.total_contacts()
    );
    assert_histogram_invariants(&snapshot);
}

/// Re-running with the same injected registry accumulates (counters
/// are monotone across runs); a fresh registry starts at zero — the
/// injection really is the only plumbing between run and registry.
#[test]
fn injected_registry_accumulates_across_runs() {
    let problem = small_flowshop(99);
    let registry = MetricsRegistry::new();
    let config = fast_config(2).with_shards(2).with_metrics(&registry);

    let first = run(&problem, &config);
    let after_first = registry.snapshot().counter("gbnb_worker_contacts_total");
    assert_eq!(after_first, first.total_contacts());

    let second = run(&problem, &config);
    let after_second = registry.snapshot().counter("gbnb_worker_contacts_total");
    assert_eq!(
        after_second,
        first.total_contacts() + second.total_contacts(),
        "a shared registry must accumulate, not reset"
    );
}
