//! Coordinator state-machine tests: load balancing, fault tolerance,
//! termination detection and solution sharing, driven synthetically
//! (no threads, injected clock).

use gridbnb_core::{
    Coordinator, CoordinatorConfig, Interval, Request, Response, Solution, UBig, WorkerId,
};

fn iv(a: u64, b: u64) -> Interval {
    Interval::new(UBig::from(a), UBig::from(b))
}

fn config(threshold: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::from(threshold),
        holder_timeout_ns: 1_000,
        initial_upper_bound: None,
    }
}

fn join(c: &mut Coordinator, w: u64, power: u64, now: u64) -> Interval {
    match c.handle(
        Request::Join {
            worker: WorkerId(w),
            power,
        },
        now,
    ) {
        Response::Work { interval, .. } => interval,
        other => panic!("expected work, got {other:?}"),
    }
}

#[test]
fn initial_intervals_is_root_range() {
    let c = Coordinator::new(iv(0, 5040), config(8));
    assert_eq!(c.cardinality(), 1);
    assert_eq!(c.size().to_u64(), Some(5040));
    assert!(!c.is_terminated());
}

#[test]
fn first_join_gets_everything() {
    // Unassigned intervals belong to the virtual null-power process:
    // C = A, the requester takes it all (paper §4.2).
    let mut c = Coordinator::new(iv(0, 5040), config(8));
    let got = join(&mut c, 1, 100, 0);
    assert_eq!(got, iv(0, 5040));
    assert_eq!(c.cardinality(), 1);
    assert_eq!(c.stats().full_assignments, 1);
}

#[test]
fn second_join_steals_proportionally() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    let first = join(&mut c, 1, 100, 0);
    assert_eq!(first, iv(0, 1000));
    // Equal powers: the requester takes the second half.
    let second = join(&mut c, 2, 100, 1);
    assert_eq!(second, iv(500, 1000));
    assert_eq!(c.cardinality(), 2);
    assert_eq!(c.stats().partitions, 1);
    c.check_invariants().unwrap();
}

#[test]
fn partition_respects_power_ratio() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 300, 0);
    // Requester power 100 vs holder 300: steals 1000·100/400 = 250.
    let got = join(&mut c, 2, 100, 1);
    assert_eq!(got, iv(750, 1000));
}

#[test]
fn selection_picks_interval_yielding_largest_steal() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 100, 0); // holds [0,1000)
    join(&mut c, 2, 100, 1); // takes [500,1000)
                             // Worker 3 (equal power) could steal 250 from either; after worker 1
                             // progresses, its interval is smaller, so stealing from 2 wins.
    let upd = c.handle(
        Request::Update {
            worker: WorkerId(1),
            interval: iv(400, 500),
        },
        2,
    );
    assert!(matches!(upd, Response::UpdateAck { .. }));
    let got = join(&mut c, 3, 100, 3);
    // From w1's [400,500): steal 50; from w2's [500,1000): steal 250.
    assert_eq!(got, iv(750, 1000));
    c.check_invariants().unwrap();
}

#[test]
fn small_intervals_are_duplicated_not_split() {
    let mut c = Coordinator::new(iv(0, 10), config(64));
    let a = join(&mut c, 1, 100, 0);
    let b = join(&mut c, 2, 100, 1);
    assert_eq!(a, iv(0, 10));
    assert_eq!(b, iv(0, 10), "below threshold: duplicate");
    assert_eq!(
        c.cardinality(),
        1,
        "one copy kept for a duplicated interval"
    );
    assert_eq!(c.stats().duplications, 1);
    c.check_invariants().unwrap();
}

#[test]
fn duplicated_interval_completion_frees_all_holders() {
    let mut c = Coordinator::new(iv(0, 10), config(64));
    join(&mut c, 1, 100, 0);
    join(&mut c, 2, 100, 1);
    // Worker 1 finishes the duplicated interval.
    let r = c.handle(
        Request::RequestWork {
            worker: WorkerId(1),
            power: 100,
        },
        2,
    );
    assert!(matches!(r, Response::Terminate));
    // Worker 2's next update sees an empty intersection.
    match c.handle(
        Request::Update {
            worker: WorkerId(2),
            interval: iv(3, 10),
        },
        3,
    ) {
        Response::UpdateAck { interval, .. } => assert!(interval.is_empty()),
        other => panic!("{other:?}"),
    }
    assert!(c.is_terminated());
}

#[test]
fn update_applies_equation_14() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 100, 0);
    join(&mut c, 2, 100, 1); // w1 now holds [0,500) in the coordinator copy
                             // w1 reports progress [200, 1000) — it has not yet heard about the
                             // steal. Intersection: [200, 500).
    match c.handle(
        Request::Update {
            worker: WorkerId(1),
            interval: iv(200, 1000),
        },
        2,
    ) {
        Response::UpdateAck { interval, .. } => assert_eq!(interval, iv(200, 500)),
        other => panic!("{other:?}"),
    }
    c.check_invariants().unwrap();
}

#[test]
fn empty_intersection_removes_entry() {
    let mut c = Coordinator::new(iv(0, 100), config(8));
    join(&mut c, 1, 100, 0);
    // Worker reports it has passed the end of its (stolen) interval.
    join(&mut c, 2, 100, 1); // w1: [0,50)
    match c.handle(
        Request::Update {
            worker: WorkerId(1),
            interval: iv(60, 100),
        },
        2,
    ) {
        Response::UpdateAck { interval, .. } => assert!(interval.is_empty()),
        other => panic!("{other:?}"),
    }
    assert_eq!(c.cardinality(), 1); // only w2's entry remains
    c.check_invariants().unwrap();
}

#[test]
fn unknown_worker_update_gets_empty_ack() {
    let mut c = Coordinator::new(iv(0, 100), config(8));
    match c.handle(
        Request::Update {
            worker: WorkerId(9),
            interval: iv(0, 50),
        },
        0,
    ) {
        Response::UpdateAck { interval, .. } => assert!(interval.is_empty()),
        other => panic!("{other:?}"),
    }
}

#[test]
fn termination_when_intervals_empty() {
    let mut c = Coordinator::new(iv(0, 100), config(8));
    join(&mut c, 1, 100, 0);
    let r = c.handle(
        Request::RequestWork {
            worker: WorkerId(1),
            power: 100,
        },
        1,
    );
    assert!(matches!(r, Response::Terminate));
    assert!(c.is_terminated());
    assert_eq!(c.stats().terminations_sent, 1);
    // Every further request also terminates.
    let r2 = c.handle(
        Request::Join {
            worker: WorkerId(7),
            power: 1,
        },
        2,
    );
    assert!(matches!(r2, Response::Terminate));
}

#[test]
fn size_is_monotone_under_updates() {
    let mut c = Coordinator::new(iv(0, 10_000), config(8));
    join(&mut c, 1, 100, 0);
    join(&mut c, 2, 100, 1);
    join(&mut c, 3, 50, 2);
    let mut last = c.size();
    for (w, pos) in [(1u64, 100u64), (2, 5300), (3, 7600), (1, 900)] {
        // Workers advance; ends come from their current view — use the
        // coordinator copy end to stay conservative.
        let copy_end = c
            .entries()
            .iter()
            .find(|e| e.holders.iter().any(|h| h.worker == WorkerId(w)))
            .map(|e| e.interval.end().clone())
            .unwrap();
        c.handle(
            Request::Update {
                worker: WorkerId(w),
                interval: Interval::new(UBig::from(pos), copy_end),
            },
            3,
        );
        let size = c.size();
        assert!(size <= last, "INTERVALS size must shrink");
        last = size;
        c.check_invariants().unwrap();
    }
}

#[test]
fn solution_sharing_rules() {
    let mut c = Coordinator::new(
        iv(0, 100),
        CoordinatorConfig {
            initial_upper_bound: Some(50),
            ..config(8)
        },
    );
    assert_eq!(c.cutoff(), Some(50));
    // A non-improving report is rejected.
    match c.handle(
        Request::ReportSolution {
            worker: WorkerId(1),
            solution: Solution::new(50, vec![0]),
        },
        0,
    ) {
        Response::SolutionAck { cutoff } => assert_eq!(cutoff, Some(50)),
        other => panic!("{other:?}"),
    }
    assert!(c.solution().is_none());
    // An improving one updates SOLUTION and the cutoff.
    match c.handle(
        Request::ReportSolution {
            worker: WorkerId(1),
            solution: Solution::new(42, vec![0]),
        },
        1,
    ) {
        Response::SolutionAck { cutoff } => assert_eq!(cutoff, Some(42)),
        other => panic!("{other:?}"),
    }
    assert_eq!(c.solution().unwrap().cost, 42);
    assert_eq!(c.stats().improvements, 1);
    assert_eq!(c.stats().solution_reports, 2);
    // New work responses carry the cutoff.
    match c.handle(
        Request::Join {
            worker: WorkerId(2),
            power: 100,
        },
        2,
    ) {
        Response::Work { cutoff, .. } => assert_eq!(cutoff, Some(42)),
        other => panic!("{other:?}"),
    }
}

#[test]
fn crashed_worker_interval_recovers_via_expiry() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 100, 0);
    // Worker 1 reports once, then dies at t=100.
    c.handle(
        Request::Update {
            worker: WorkerId(1),
            interval: iv(300, 1000),
        },
        100,
    );
    // Time passes beyond the 1000 ns holder timeout.
    assert_eq!(c.expire_stale_holders(2_000), 1);
    // The interval [300,1000) is intact and unassigned: worker 2 gets it
    // entirely — the paper's "entirely given to another B&B process".
    let got = join(&mut c, 2, 100, 2_100);
    assert_eq!(got, iv(300, 1000));
    c.check_invariants().unwrap();
}

#[test]
fn rejoin_does_not_lose_work() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 100, 0);
    // Worker 1 crashes silently and rejoins under the same id (worst
    // case): its old interval must NOT be treated as completed.
    let got = join(&mut c, 1, 100, 1);
    // The old interval stays tracked; the rejoined worker is handed a
    // part of it (it is the only interval).
    assert!(!got.is_empty());
    let total = c.size();
    assert_eq!(total.to_u64(), Some(1000), "no work lost on rejoin");
    c.check_invariants().unwrap();
}

#[test]
fn graceful_leave_keeps_interval_reassignable() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 100, 0);
    let r = c.handle(
        Request::Leave {
            worker: WorkerId(1),
        },
        1,
    );
    assert!(matches!(r, Response::LeaveAck));
    let got = join(&mut c, 2, 100, 2);
    assert_eq!(got, iv(0, 1000));
}

#[test]
fn restore_marks_everything_unassigned() {
    let c = Coordinator::restore(
        iv(0, 1000),
        vec![iv(100, 300), iv(500, 900), iv(40, 40)],
        Some(Solution::new(77, vec![1])),
        config(8),
    );
    assert_eq!(c.cardinality(), 2, "empty intervals dropped");
    assert_eq!(c.cutoff(), Some(77));
    assert_eq!(c.size().to_u64(), Some(600));
}

#[test]
fn zero_power_requester_clamped() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 0, 0); // power clamped to 1
    let got = join(&mut c, 2, 0, 1);
    assert!(!got.is_empty());
    c.check_invariants().unwrap();
}

#[test]
fn steal_rounding_to_zero_duplicates() {
    // len 10 with huge holder power: steal = 10·1/(10^6+1) = 0 → the
    // requester receives a duplicate instead of an empty interval.
    let mut c = Coordinator::new(iv(0, 10), config(1));
    join(&mut c, 1, 1_000_000, 0);
    let got = join(&mut c, 2, 1, 1);
    assert_eq!(got, iv(0, 10));
    assert_eq!(c.stats().duplications, 1);
}

#[test]
fn zero_duplication_threshold_is_rejected_by_validate_and_clamped() {
    let bad = CoordinatorConfig {
        duplication_threshold: UBig::zero(),
        ..config(8)
    };
    assert_eq!(
        bad.validate(),
        Err(gridbnb_core::ConfigError::ZeroDuplicationThreshold)
    );
    assert!(config(8).validate().is_ok());
    // The constructors clamp instead of panicking (the seed asserted in
    // `new` and checked nothing in `restore`): behavior is exactly a
    // threshold of 1.
    let mut c = Coordinator::new(iv(0, 1000), bad.clone());
    join(&mut c, 1, 100, 0);
    let got = join(&mut c, 2, 100, 1);
    assert_eq!(got, iv(500, 1000), "clamped config still partitions");
    c.check_invariants().unwrap();
    let restored = Coordinator::restore(iv(0, 1000), vec![iv(0, 500)], None, bad);
    assert_eq!(restored.cardinality(), 1);
}

#[test]
fn heartbeat_at_exactly_the_timeout_is_not_expired() {
    // Timeout 1000: a worker last heard from exactly 1000 ns ago is
    // still live (strictly-greater staleness), so a heartbeat period
    // equal to the timeout never expires its own sender; one tick later
    // it is fair game.
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    join(&mut c, 1, 100, 500);
    assert_eq!(c.expire_stale_holders(1_500), 0, "age == timeout: live");
    assert_eq!(c.entries()[0].holders.len(), 1);
    assert_eq!(c.expire_stale_holders(1_501), 1, "age > timeout: expired");
    assert!(c.entries()[0].holders.is_empty());
    assert_eq!(c.stats().holders_expired, 1);
    c.check_invariants().unwrap();
}

#[test]
fn next_expiry_at_tracks_oldest_heartbeat() {
    let mut c = Coordinator::new(iv(0, 1000), config(8));
    assert_eq!(c.next_expiry_at(), None, "no holders, nothing to expire");
    join(&mut c, 1, 100, 500);
    // Oldest contact at 500, timeout 1000: expirable strictly after
    // 1500, i.e. from 1501 on.
    assert_eq!(c.next_expiry_at(), Some(1_501));
    assert_eq!(c.expire_stale_holders(1_500), 0);
    assert_eq!(c.expire_stale_holders(c.next_expiry_at().unwrap()), 1);
    assert_eq!(c.next_expiry_at(), None);
}

#[test]
fn unassigned_intervals_are_selected_before_held_ones() {
    // Power-normalized selection: an orphaned (expired) interval has
    // infinite priority — the paper's recovery hands it out whole before
    // splitting anyone else's work, even when the held interval is far
    // longer.
    let mut c = Coordinator::new(iv(0, 10_000), config(8));
    join(&mut c, 1, 100, 0); // holds [0, 10000)
    join(&mut c, 2, 100, 1); // takes [5000, 10000)
                             // Worker 1 dies; its [0, 5000) becomes unassigned.
    c.handle(
        Request::Update {
            worker: WorkerId(1),
            interval: iv(4_900, 5_000),
        },
        2,
    );
    // Worker 2 stays fresh; only worker 1 goes stale.
    c.handle(
        Request::Update {
            worker: WorkerId(2),
            interval: iv(5_000, 10_000),
        },
        4_500,
    );
    c.expire_stale_holders(5_000);
    // Worker 3 gets the orphan whole — not a slice of w2's 5000-wide
    // interval, although that slice (2500) would be longer.
    let got = join(&mut c, 3, 100, 5_001);
    assert_eq!(got, iv(4_900, 5_000));
    assert_eq!(c.stats().full_assignments, 2);
    c.check_invariants().unwrap();
}

#[test]
fn empty_root_terminates_immediately() {
    let mut c = Coordinator::new(iv(5, 5), config(8));
    assert!(c.is_terminated());
    let r = c.handle(
        Request::Join {
            worker: WorkerId(1),
            power: 1,
        },
        0,
    );
    assert!(matches!(r, Response::Terminate));
}
