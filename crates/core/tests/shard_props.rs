//! Property tests pinning the sharded router to the single-coordinator
//! oracle.
//!
//! Two guarantees make sharding safe:
//!
//! * **response identity at S = 1** — a one-shard router is
//!   indistinguishable from a bare [`Coordinator`] for any request
//!   sequence (same responses, same counters, same remaining size);
//! * **exact coverage at any S** — for any request sequence driven to
//!   termination, the union of intervals handed out across shards is
//!   exactly the root range, i.e. exactly what the single merged
//!   coordinator hands out: nothing lost in routing or stealing, and
//!   the cross-shard `INTERVALS` stays duplicate-free throughout
//!   (disjointness is re-checked after every step).

use gridbnb_core::{
    Coordinator, CoordinatorConfig, Interval, IntervalSet, Request, Response, ShardRouter,
    Solution, UBig, WorkerId,
};
use proptest::prelude::*;

const WORKERS: u64 = 6;

fn config(threshold: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::from(threshold),
        holder_timeout_ns: 50,
        initial_upper_bound: Some(10_000),
    }
}

/// Symbolic protocol step: (op, worker, power, fraction-ppm).
type Step = (u8, u8, u16, u32);

fn arb_steps(max: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u8..6, 0u8..WORKERS as u8, 1u16..500, 0u32..1_000_000u32),
        1..max,
    )
}

/// Applies one step to `target`, mirroring a live worker's view in
/// `models` (the live interval each worker believes it holds). Returns
/// the handed-out interval, if the step produced one.
fn apply<H: FnMut(Request, u64) -> Response>(
    handle: &mut H,
    models: &mut [Option<Interval>],
    step: Step,
    now: u64,
    allow_disturbance: bool,
) -> Option<Interval> {
    let (op, worker, power, frac_ppm) = step;
    let w = WorkerId(worker as u64);
    let slot = &mut models[worker as usize];
    match op {
        // Join (allowed only in disturbance mode: it re-keys holders and
        // is covered by the identity test; the coverage test keeps the
        // runtime's contract that RequestWork completes the unit).
        0 if allow_disturbance => {
            *slot = None;
            match handle(
                Request::Join {
                    worker: w,
                    power: power as u64,
                },
                now,
            ) {
                Response::Work { interval, .. } => {
                    *slot = Some(interval.clone());
                    Some(interval)
                }
                _ => None,
            }
        }
        // RequestWork: the worker finishes its unit first.
        0 | 1 => {
            *slot = None;
            match handle(
                Request::RequestWork {
                    worker: w,
                    power: power as u64,
                },
                now,
            ) {
                Response::Work { interval, .. } => {
                    *slot = Some(interval.clone());
                    Some(interval)
                }
                _ => None,
            }
        }
        // Progress: advance the live begin by a fraction and report.
        2 | 3 => {
            if let Some(live) = slot.as_mut() {
                let adv = live
                    .length()
                    .mul_div_floor(frac_ppm.min(1_000_000) as u64, 1_000_000);
                let begin = live.begin().add(&adv);
                live.advance_begin(&begin);
                let reported = live.clone();
                match handle(
                    Request::Update {
                        worker: w,
                        interval: reported,
                    },
                    now,
                ) {
                    Response::UpdateAck { interval, .. } => {
                        if interval.is_empty() {
                            *slot = None;
                        } else {
                            live.retreat_end(interval.end());
                            if live.is_empty() {
                                *slot = None;
                            }
                        }
                    }
                    other => panic!("unexpected update response {other:?}"),
                }
            }
            None
        }
        4 if allow_disturbance => {
            *slot = None;
            handle(Request::Leave { worker: w }, now);
            None
        }
        _ if allow_disturbance => {
            handle(
                Request::ReportSolution {
                    worker: w,
                    solution: Solution::new(1 + (frac_ppm % 5_000) as u64, vec![0]),
                },
                now,
            );
            None
        }
        // In coverage mode the remaining ops fold into progress.
        _ => apply(handle, models, (2, worker, power, frac_ppm), now, false),
    }
}

/// Keeps issuing `RequestWork` round-robin until every worker has seen
/// `Terminate`; returns all intervals handed out during the drain.
fn drain<H: FnMut(Request, u64) -> Response>(
    handle: &mut H,
    models: &mut [Option<Interval>],
    now: &mut u64,
) -> Result<Vec<Interval>, TestCaseError> {
    let mut handed = Vec::new();
    let mut live: Vec<bool> = models.iter().map(|_| true).collect();
    let mut guard = 0u64;
    while live.iter().any(|&l| l) {
        for worker in 0..models.len() {
            if !live[worker] {
                continue;
            }
            *now += 1;
            guard += 1;
            prop_assert!(guard < 500_000, "drain did not converge");
            models[worker] = None;
            match handle(
                Request::RequestWork {
                    worker: WorkerId(worker as u64),
                    power: 10,
                },
                *now,
            ) {
                Response::Work { interval, .. } => handed.push(interval),
                Response::Terminate => live[worker] = false,
                // Endgame: another holder in the round-robin finishes it.
                Response::Retry => {}
                other => prop_assert!(false, "unexpected drain response {other:?}"),
            }
        }
    }
    Ok(handed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A one-shard router must be response-identical to a bare
    /// coordinator for arbitrary request sequences — joins, leaves,
    /// stale updates, solution reports, expiries and all.
    #[test]
    fn router_at_s1_is_response_identical_to_a_bare_coordinator(
        steps in arb_steps(150),
        threshold in 1u64..300,
        total in 50u64..50_000,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let mut coordinator = Coordinator::new(root.clone(), config(threshold));
        let router = ShardRouter::new(root, 1, config(threshold)).unwrap();
        let mut now = 0u64;
        let mut coordinator_models: Vec<Option<Interval>> =
            (0..WORKERS).map(|_| None).collect();
        let mut router_models: Vec<Option<Interval>> = (0..WORKERS).map(|_| None).collect();
        for step in steps {
            now += 1;
            if step.0 == 5 {
                // Expiry sweep on both sides (jump past the timeout).
                now += 1_000;
                let a = coordinator.expire_stale_holders(now);
                let b = router.expire_stale_holders(now);
                prop_assert_eq!(a, b, "expiry count diverged");
                continue;
            }
            let mut responses = Vec::with_capacity(2);
            {
                let mut h = |request: Request, t: u64| {
                    let response = coordinator.handle(request, t);
                    responses.push(format!("{response:?}"));
                    response
                };
                apply(&mut h, &mut coordinator_models, step, now, true);
            }
            {
                let mut h = |request: Request, t: u64| {
                    let response = router.handle(request, t);
                    responses.push(format!("{response:?}"));
                    response
                };
                apply(&mut h, &mut router_models, step, now, true);
            }
            if responses.len() == 2 {
                prop_assert_eq!(&responses[0], &responses[1], "responses diverged");
            }
            prop_assert_eq!(coordinator.size(), router.size(), "sizes diverged");
            prop_assert_eq!(
                coordinator.is_terminated(),
                router.is_terminated(),
                "termination diverged"
            );
            router.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("router invariant violated: {e}"))
            })?;
        }
        let a = coordinator.stats();
        let b = router.stats();
        prop_assert_eq!(a.work_allocations, b.work_allocations);
        prop_assert_eq!(a.partitions, b.partitions);
        prop_assert_eq!(a.duplications, b.duplications);
        prop_assert_eq!(a.updates, b.updates);
        prop_assert_eq!(a.terminations_sent, b.terminations_sent);
        prop_assert_eq!(router.steals(), 0, "S=1 must never steal");
    }

    /// For any request sequence driven to termination, the union of
    /// intervals the shards hand out is exactly the root range — the
    /// same set the single merged coordinator (S = 1) hands out for the
    /// same sequence — and the cross-shard `INTERVALS` stays disjoint
    /// at every step. Threshold 1 disables duplication, so coverage is
    /// achieved without redundant copies.
    #[test]
    fn sharded_handouts_cover_exactly_what_a_single_coordinator_covers(
        steps in arb_steps(100),
        shards in 1usize..=4,
        total in 50u64..20_000,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let router = ShardRouter::new(root.clone(), shards, config(1)).unwrap();
        let mut single = Coordinator::new(root.clone(), config(1));

        let mut router_handed: Vec<Interval> = Vec::new();
        let mut single_handed: Vec<Interval> = Vec::new();
        let mut router_models: Vec<Option<Interval>> = (0..WORKERS).map(|_| None).collect();
        let mut single_models: Vec<Option<Interval>> = (0..WORKERS).map(|_| None).collect();
        let mut now = 0u64;

        for step in steps {
            now += 1;
            {
                let mut h = |request: Request, t: u64| router.handle(request, t);
                if let Some(interval) =
                    apply(&mut h, &mut router_models, step, now, false)
                {
                    router_handed.push(interval);
                }
            }
            {
                let mut h = |request: Request, t: u64| single.handle(request, t);
                if let Some(interval) =
                    apply(&mut h, &mut single_models, step, now, false)
                {
                    single_handed.push(interval);
                }
            }
            router.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("cross-shard invariant violated: {e}"))
            })?;
        }

        {
            let mut h = |request: Request, t: u64| router.handle(request, t);
            router_handed.extend(drain(&mut h, &mut router_models, &mut now)?);
        }
        {
            let mut h = |request: Request, t: u64| single.handle(request, t);
            single_handed.extend(drain(&mut h, &mut single_models, &mut now)?);
        }
        prop_assert!(router.is_terminated());
        prop_assert!(single.is_terminated());

        let mut router_union = IntervalSet::new();
        for interval in router_handed {
            router_union.insert(interval);
        }
        let mut single_union = IntervalSet::new();
        for interval in single_handed {
            single_union.insert(interval);
        }
        // Handouts never escape the root, so covering the root with
        // equal total size pins both unions to exactly the root range.
        prop_assert!(router_union.covers(&root), "sharded handouts miss part of the root");
        prop_assert!(single_union.covers(&root), "oracle handouts miss part of the root");
        prop_assert_eq!(router_union.size(), root.length());
        prop_assert_eq!(router_union.size(), single_union.size());
        router.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("final invariant violated: {e}"))
        })?;
    }
}
