//! Property tests pinning batched delivery to sequential semantics —
//! the batching mirror of the S=1 router oracle in `shard_props.rs`.
//!
//! [`ShardRouter::handle_bundle`]'s documented contract: a bundle's
//! outcome — every response *and* the coordinator state left behind —
//! is identical to delivering the same requests one at a time through
//! `handle` in **grouped order** (ascending home shard, bundle order
//! within a shard). At `S = 1` grouping is the identity permutation, so
//! a bundle is pinned to its exact original interleaving against a bare
//! [`Coordinator`]; at any `S` it is pinned to the grouped replay,
//! steals, endgame `Retry` backpressure and all.

use gridbnb_core::{
    Coordinator, CoordinatorConfig, Interval, Request, Response, ShardEnvelope, ShardRouter,
    Solution, UBig, WorkerId,
};
use proptest::prelude::*;

const WORKERS: u64 = 6;

fn config(threshold: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        duplication_threshold: UBig::from(threshold),
        holder_timeout_ns: 50,
        initial_upper_bound: Some(10_000),
    }
}

/// Symbolic protocol step: (op, worker, power, fraction-ppm).
type Step = (u8, u8, u16, u32);

fn arb_steps(max: usize) -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (0u8..7, 0u8..WORKERS as u8, 1u16..500, 0u32..1_000_000u32),
        1..max,
    )
}

/// Builds the request a step implies from the workers' model state —
/// *without* seeing any response (a bundle is sent all at once). The
/// model mutations (progress, unit forgotten on completion/leave) apply
/// immediately; response-driven mutations happen in [`absorb`].
fn request_of(step: Step, models: &mut [Option<Interval>]) -> Option<Request> {
    let (op, worker, power, frac_ppm) = step;
    let w = WorkerId(worker as u64);
    let slot = &mut models[worker as usize];
    match op {
        0 => {
            *slot = None;
            Some(Request::Join {
                worker: w,
                power: power as u64,
            })
        }
        1 => {
            *slot = None;
            Some(Request::RequestWork {
                worker: w,
                power: power as u64,
            })
        }
        // Progress then periodic checkpoint.
        2 | 3 => {
            let live = slot.as_mut()?;
            let adv = live
                .length()
                .mul_div_floor(frac_ppm.min(1_000_000) as u64, 1_000_000);
            let begin = live.begin().add(&adv);
            live.advance_begin(&begin);
            Some(Request::Update {
                worker: w,
                interval: live.clone(),
            })
        }
        4 => {
            *slot = None;
            Some(Request::Leave { worker: w })
        }
        5 => Some(Request::ReportSolution {
            worker: w,
            solution: Solution::new(1 + (frac_ppm % 5_000) as u64, vec![0]),
        }),
        // Combined progress + improvement: the batched protocol's
        // headline request. Without a live unit it degrades to a plain
        // report.
        _ => {
            let solution = Solution::new(1 + (frac_ppm % 5_000) as u64, vec![1]);
            match slot.as_mut() {
                Some(live) => {
                    let adv = live
                        .length()
                        .mul_div_floor((frac_ppm / 2).min(1_000_000) as u64, 1_000_000);
                    let begin = live.begin().add(&adv);
                    live.advance_begin(&begin);
                    Some(Request::UpdateAndReport {
                        worker: w,
                        interval: live.clone(),
                        solution: Some(solution),
                    })
                }
                None => Some(Request::ReportSolution {
                    worker: w,
                    solution,
                }),
            }
        }
    }
}

/// Applies one response to the issuing worker's model.
fn absorb(request: &Request, response: &Response, models: &mut [Option<Interval>]) {
    let slot = &mut models[request.worker().0 as usize];
    match (request, response) {
        (Request::Join { .. } | Request::RequestWork { .. }, Response::Work { interval, .. }) => {
            *slot = Some(interval.clone());
        }
        (Request::Join { .. } | Request::RequestWork { .. }, _) => {
            *slot = None;
        }
        (
            Request::Update { .. } | Request::UpdateAndReport { .. },
            Response::UpdateAck { interval, .. },
        ) => {
            if interval.is_empty() {
                *slot = None;
            } else if let Some(live) = slot.as_mut() {
                live.retreat_end(interval.end());
                if live.is_empty() {
                    *slot = None;
                }
            }
        }
        _ => {}
    }
}

/// Sorted (begin, end) pairs of a per-shard snapshot, flattened — a
/// canonical form for state comparison.
fn canonical(snapshot: &[Vec<Interval>]) -> Vec<(UBig, UBig)> {
    let mut all: Vec<(UBig, UBig)> = snapshot
        .iter()
        .flatten()
        .map(|i| (i.begin().clone(), i.end().clone()))
        .collect();
    all.sort();
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of requests, chunked into bundles, must produce
    /// exactly the responses and state of the grouped sequential replay
    /// on an identically configured router — for every shard count.
    #[test]
    fn bundles_match_grouped_sequential_delivery(
        steps in arb_steps(120),
        chunk in 1usize..=5,
        shards in 1usize..=4,
        threshold in 1u64..300,
        total in 50u64..20_000,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let bundled = ShardRouter::new(root.clone(), shards, config(threshold)).unwrap();
        let sequential = ShardRouter::new(root, shards, config(threshold)).unwrap();
        let mut models: Vec<Option<Interval>> = (0..WORKERS).map(|_| None).collect();
        let mut now = 0u64;

        for bundle_steps in steps.chunks(chunk) {
            now += 1;
            let requests: Vec<Request> = bundle_steps
                .iter()
                .filter_map(|&s| request_of(s, &mut models))
                .collect();
            if requests.is_empty() {
                continue;
            }
            // Batched delivery.
            let envelopes: Vec<ShardEnvelope> =
                requests.iter().map(|r| bundled.envelope(r.clone())).collect();
            let batched_responses = bundled.handle_bundle(envelopes, now);
            // The documented equivalent: singles in grouped order
            // (stable by home shard), responses re-matched to input
            // positions.
            let mut order: Vec<usize> = (0..requests.len()).collect();
            order.sort_by_key(|&i| sequential.route(requests[i].worker()).0);
            let mut grouped_responses: Vec<Option<Response>> =
                (0..requests.len()).map(|_| None).collect();
            for &i in &order {
                grouped_responses[i] = Some(sequential.handle(requests[i].clone(), now));
            }

            prop_assert_eq!(batched_responses.len(), requests.len());
            for (i, (shard, response)) in batched_responses.iter().enumerate() {
                prop_assert_eq!(*shard, sequential.route(requests[i].worker()));
                let expected = grouped_responses[i].as_ref().expect("delivered");
                prop_assert_eq!(
                    format!("{response:?}"),
                    format!("{expected:?}"),
                    "response {} diverged for {:?}",
                    i,
                    requests[i]
                );
                absorb(&requests[i], response, &mut models);
            }
            prop_assert_eq!(bundled.size(), sequential.size(), "sizes diverged");
            prop_assert_eq!(bundled.cardinality(), sequential.cardinality());
            prop_assert_eq!(bundled.is_terminated(), sequential.is_terminated());
            prop_assert_eq!(bundled.cutoff(), sequential.cutoff());
            prop_assert_eq!(bundled.steals(), sequential.steals(), "steals diverged");
            bundled.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("bundled invariant violated: {e}"))
            })?;
        }

        // Final state identity: stats, best solution, and the exact
        // interval content of every shard.
        prop_assert_eq!(bundled.stats(), sequential.stats());
        prop_assert_eq!(
            bundled.solution().map(|s| s.cost),
            sequential.solution().map(|s| s.cost)
        );
        let (snap_a, _) = bundled.snapshot();
        let (snap_b, _) = sequential.snapshot();
        prop_assert_eq!(snap_a.len(), snap_b.len());
        for (k, (a, b)) in snap_a.iter().zip(&snap_b).enumerate() {
            prop_assert_eq!(
                canonical(std::slice::from_ref(a)),
                canonical(std::slice::from_ref(b)),
                "shard {} intervals diverged",
                k
            );
        }
    }

    /// At S = 1 grouping is the identity, so bundles are pinned to the
    /// *original* interleaving against a bare coordinator — the direct
    /// extension of the existing S=1 router identity oracle to the
    /// batched surface.
    #[test]
    fn bundles_at_s1_match_a_bare_coordinator_in_original_order(
        steps in arb_steps(120),
        chunk in 1usize..=6,
        threshold in 1u64..300,
        total in 50u64..20_000,
    ) {
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let router = ShardRouter::new(root.clone(), 1, config(threshold)).unwrap();
        let mut bare = Coordinator::new(root, config(threshold));
        let mut models: Vec<Option<Interval>> = (0..WORKERS).map(|_| None).collect();
        let mut now = 0u64;

        for bundle_steps in steps.chunks(chunk) {
            now += 1;
            let requests: Vec<Request> = bundle_steps
                .iter()
                .filter_map(|&s| request_of(s, &mut models))
                .collect();
            if requests.is_empty() {
                continue;
            }
            let envelopes: Vec<ShardEnvelope> =
                requests.iter().map(|r| router.envelope(r.clone())).collect();
            let batched = router.handle_bundle(envelopes, now);
            for (i, (_, response)) in batched.iter().enumerate() {
                let expected = bare.handle(requests[i].clone(), now);
                prop_assert_eq!(
                    format!("{response:?}"),
                    format!("{expected:?}"),
                    "response {} diverged for {:?}",
                    i,
                    requests[i]
                );
                absorb(&requests[i], response, &mut models);
            }
            prop_assert_eq!(router.size(), bare.size());
            prop_assert_eq!(router.is_terminated(), bare.is_terminated());
        }
        prop_assert_eq!(router.stats(), *bare.stats());
        bare.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("bare invariant violated: {e}"))
        })?;
        router.check_invariants().map_err(|e| {
            TestCaseError::fail(format!("router invariant violated: {e}"))
        })?;
    }

    /// `UpdateAndReport` is exactly `ReportSolution` then `Update` in
    /// one contact: same ack, same state, for arbitrary held intervals,
    /// progress fractions and solution costs.
    #[test]
    fn update_and_report_is_report_then_update(
        total in 50u64..50_000,
        threshold in 1u64..300,
        frac_ppm in 0u32..1_000_000,
        cost in 1u64..20_000,
        with_solution_bit in 0u8..2,
    ) {
        let with_solution = with_solution_bit == 1;
        let root = Interval::new(UBig::zero(), UBig::from(total));
        let mut combined = Coordinator::new(root.clone(), config(threshold));
        let mut split = Coordinator::new(root, config(threshold));
        let w = WorkerId(0);
        let join = Request::Join { worker: w, power: 7 };
        let live = match combined.handle(join.clone(), 0) {
            Response::Work { interval, .. } => interval,
            other => panic!("join failed: {other:?}"),
        };
        let _ = split.handle(join, 0);
        let adv = live.length().mul_div_floor(frac_ppm as u64, 1_000_000);
        let reported = Interval::new(live.begin().add(&adv), live.end().clone());
        let solution = with_solution.then(|| Solution::new(cost, vec![0]));

        let a = combined.handle(
            Request::UpdateAndReport {
                worker: w,
                interval: reported.clone(),
                solution: solution.clone(),
            },
            9,
        );
        if let Some(solution) = solution {
            let _ = split.handle(Request::ReportSolution { worker: w, solution }, 9);
        }
        let b = split.handle(
            Request::Update {
                worker: w,
                interval: reported,
            },
            9,
        );
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        prop_assert_eq!(combined.stats(), split.stats());
        prop_assert_eq!(combined.size(), split.size());
        prop_assert_eq!(
            combined.solution().map(|s| s.cost),
            split.solution().map(|s| s.cost)
        );
        combined.check_invariants().map_err(TestCaseError::fail)?;
    }
}
