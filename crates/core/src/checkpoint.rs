//! Two-file coordinator checkpointing (paper §4.1).
//!
//! "The coordinator manages a possible failure of the farmer by
//! periodically saving, in two files, the contents of `INTERVALS` and
//! `SOLUTION`" — every 30 minutes in the paper's run, 4 094 176 total
//! checkpoint operations in Table 2.
//!
//! The on-disk format is a line-oriented decimal text codec (no external
//! serialization dependency, human-auditable, exact big-integer round
//! trips):
//!
//! ```text
//! # INTERVALS file             # SOLUTION file
//! gridbnb-intervals v1         gridbnb-solution v1
//! 120 720                      cost 3679
//! 840 5040                     ranks 13 35 2 ...
//! ```
//!
//! Writes are atomic (temp file + rename) so a farmer crash mid-save
//! cannot corrupt the previous checkpoint.

use crate::Coordinator;
use gridbnb_bigint::UBig;
use gridbnb_coding::Interval;
use gridbnb_engine::Solution;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;

const INTERVALS_HEADER: &str = "gridbnb-intervals v1";
const SOLUTION_HEADER: &str = "gridbnb-solution v1";

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(io::Error),
    /// Structural problem in a checkpoint file.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Encodes one interval as the codec's `begin end` decimal pair — the
/// unit every layer shares: checkpoint files write one per line, the
/// network wire format length-prefixes one per payload slot. Decimal
/// text keeps big-integer round trips exact with no serialization
/// dependency.
pub fn encode_interval_line(interval: &Interval) -> String {
    format!("{} {}", interval.begin(), interval.end())
}

/// Decodes a `begin end` decimal pair. Unlike the file loaders this
/// preserves empty intervals — the wire protocol must round-trip an
/// `UpdateAck` whose intersected interval came back empty, while a
/// checkpoint file has no use for them and drops them on load.
pub fn decode_interval_line(line: &str) -> Result<Interval, CheckpointError> {
    let mut parts = line.split_whitespace();
    let begin = parse_ubig(parts.next())?;
    let end = parse_ubig(parts.next())?;
    if parts.next().is_some() {
        return Err(CheckpointError::Corrupt(format!(
            "trailing tokens in interval {line:?}"
        )));
    }
    Ok(Interval::new(begin, end))
}

/// Serializes `INTERVALS` (one `begin end` pair per line, decimal).
pub fn encode_intervals(intervals: &[Interval]) -> String {
    let mut out = String::from(INTERVALS_HEADER);
    out.push('\n');
    for i in intervals {
        let _ = writeln!(out, "{}", encode_interval_line(i));
    }
    out
}

/// Parses an `INTERVALS` file as the flat union of all shards (a plain
/// v1 file is one shard); empty intervals are dropped. Shares one
/// parser with [`decode_sharded_intervals`], so the documented "the v1
/// decoder reads a sharded file as the flat union" guarantee holds by
/// construction.
pub fn decode_intervals(text: &str) -> Result<Vec<Interval>, CheckpointError> {
    Ok(decode_sharded_intervals(text)?.concat())
}

fn parse_ubig(token: Option<&str>) -> Result<UBig, CheckpointError> {
    let token = token.ok_or_else(|| CheckpointError::Corrupt("missing endpoint".into()))?;
    UBig::from_str(token).map_err(|e| CheckpointError::Corrupt(format!("bad endpoint: {e}")))
}

const SHARD_MARKER: &str = "# shard ";

/// Serializes per-shard `INTERVALS` (sharded coordination): shard `k`'s
/// intervals follow a `# shard k` marker line. Markers are comments to
/// the v1 decoder, so [`decode_intervals`] reads a sharded file as the
/// flat union — a single-coordinator restore of a sharded checkpoint
/// just works. With exactly one shard the output is byte-identical to
/// [`encode_intervals`]: at `S = 1` the sharded format *is* the
/// single-shard format.
pub fn encode_sharded_intervals(shards: &[Vec<Interval>]) -> String {
    if shards.len() == 1 {
        return encode_intervals(&shards[0]);
    }
    let mut out = String::from(INTERVALS_HEADER);
    out.push('\n');
    for (k, intervals) in shards.iter().enumerate() {
        let _ = writeln!(out, "{SHARD_MARKER}{k}");
        for i in intervals {
            let _ = writeln!(out, "{} {}", i.begin(), i.end());
        }
    }
    out
}

/// Parses an `INTERVALS` file into per-shard sets. A file without shard
/// markers — any v1 single-coordinator checkpoint — decodes as one
/// shard, so old checkpoints restore into a sharded router unchanged.
/// Markers must be sequential (`# shard 0`, `# shard 1`, ...); empty
/// intervals are dropped, empty shards are preserved.
pub fn decode_sharded_intervals(text: &str) -> Result<Vec<Vec<Interval>>, CheckpointError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == INTERVALS_HEADER => {}
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "bad intervals header: {other:?}"
            )))
        }
    }
    let mut shards: Vec<Vec<Interval>> = Vec::new();
    for (ln, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // A `# shard N` line is a marker only when N is an integer; any
        // other `#` line — including prose that happens to start with
        // "# shard" — keeps its v1 meaning of a comment, so old
        // annotated checkpoints still load.
        if let Some(index) = line
            .strip_prefix(SHARD_MARKER)
            .and_then(|rest| rest.trim().parse::<usize>().ok())
        {
            if index != shards.len() {
                return Err(CheckpointError::Corrupt(format!(
                    "shard marker {index} out of order on line {} (expected {})",
                    ln + 2,
                    shards.len()
                )));
            }
            shards.push(Vec::new());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        if shards.is_empty() {
            // Markerless v1 file: everything belongs to one shard.
            shards.push(Vec::new());
        }
        let interval = match decode_interval_line(line) {
            Ok(i) => i,
            Err(CheckpointError::Corrupt(m)) => {
                return Err(CheckpointError::Corrupt(format!("line {}: {m}", ln + 2)))
            }
            Err(e) => return Err(e),
        };
        if !interval.is_empty() {
            shards.last_mut().expect("shard bucket").push(interval);
        }
    }
    if shards.is_empty() {
        shards.push(Vec::new());
    }
    Ok(shards)
}

/// Serializes `SOLUTION`.
pub fn encode_solution(solution: Option<&Solution>) -> String {
    let mut out = String::from(SOLUTION_HEADER);
    out.push('\n');
    if let Some(s) = solution {
        let _ = writeln!(out, "cost {}", s.cost);
        let mut ranks = String::from("ranks");
        for r in &s.leaf_ranks {
            let _ = write!(ranks, " {r}");
        }
        out.push_str(&ranks);
        out.push('\n');
    } else {
        out.push_str("none\n");
    }
    out
}

/// Parses a `SOLUTION` file.
pub fn decode_solution(text: &str) -> Result<Option<Solution>, CheckpointError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim() == SOLUTION_HEADER => {}
        other => {
            return Err(CheckpointError::Corrupt(format!(
                "bad solution header: {other:?}"
            )))
        }
    }
    let body: Vec<&str> = lines.map(str::trim).filter(|l| !l.is_empty()).collect();
    if body.first() == Some(&"none") {
        return Ok(None);
    }
    let cost_line = body
        .first()
        .ok_or_else(|| CheckpointError::Corrupt("missing cost line".into()))?;
    let cost = cost_line
        .strip_prefix("cost ")
        .and_then(|c| c.trim().parse::<u64>().ok())
        .ok_or_else(|| CheckpointError::Corrupt(format!("bad cost line: {cost_line:?}")))?;
    let ranks_line = body
        .get(1)
        .ok_or_else(|| CheckpointError::Corrupt("missing ranks line".into()))?;
    let ranks = ranks_line
        .strip_prefix("ranks")
        .ok_or_else(|| CheckpointError::Corrupt(format!("bad ranks line: {ranks_line:?}")))?
        .split_whitespace()
        .map(|t| {
            t.parse::<u64>()
                .map_err(|e| CheckpointError::Corrupt(format!("bad rank {t:?}: {e}")))
        })
        .collect::<Result<Vec<u64>, _>>()?;
    Ok(Some(Solution::new(cost, ranks)))
}

/// The two checkpoint files and atomic save/load operations on them.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    intervals_path: PathBuf,
    solution_path: PathBuf,
}

impl CheckpointStore {
    /// A store writing `INTERVALS` and `SOLUTION` to the given paths.
    pub fn new(intervals_path: impl Into<PathBuf>, solution_path: impl Into<PathBuf>) -> Self {
        CheckpointStore {
            intervals_path: intervals_path.into(),
            solution_path: solution_path.into(),
        }
    }

    /// Saves the coordinator state atomically (both files).
    pub fn save(&self, coordinator: &Coordinator) -> Result<(), CheckpointError> {
        let intervals: Vec<Interval> = coordinator
            .entries()
            .iter()
            .map(|e| e.interval.clone())
            .collect();
        write_atomic(&self.intervals_path, &encode_intervals(&intervals))?;
        write_atomic(
            &self.solution_path,
            &encode_solution(coordinator.solution()),
        )?;
        Ok(())
    }

    /// Loads `(intervals, solution)` from the two files.
    pub fn load(&self) -> Result<(Vec<Interval>, Option<Solution>), CheckpointError> {
        let itext = fs::read_to_string(&self.intervals_path)?;
        let stext = fs::read_to_string(&self.solution_path)?;
        Ok((decode_intervals(&itext)?, decode_solution(&stext)?))
    }

    /// Saves a sharded router's state atomically (both files). At
    /// `S = 1` the output is indistinguishable from
    /// [`CheckpointStore::save`].
    pub fn save_sharded(&self, router: &crate::ShardRouter) -> Result<(), CheckpointError> {
        let (shards, solution) = router.snapshot();
        write_atomic(&self.intervals_path, &encode_sharded_intervals(&shards))?;
        write_atomic(&self.solution_path, &encode_solution(solution.as_ref()))?;
        Ok(())
    }

    /// Loads `(per-shard intervals, solution)`; a markerless v1 file
    /// decodes as a single shard.
    pub fn load_sharded(&self) -> Result<(Vec<Vec<Interval>>, Option<Solution>), CheckpointError> {
        let itext = fs::read_to_string(&self.intervals_path)?;
        let stext = fs::read_to_string(&self.solution_path)?;
        Ok((decode_sharded_intervals(&itext)?, decode_solution(&stext)?))
    }

    /// `true` iff both files exist (a prior checkpoint is available).
    pub fn exists(&self) -> bool {
        self.intervals_path.exists() && self.solution_path.exists()
    }
}

fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(UBig::from(a), UBig::from(b))
    }

    #[test]
    fn interval_line_round_trips_including_empty() {
        for interval in [
            iv(7, 9),
            iv(5, 5),
            Interval::new(UBig::factorial(49), UBig::factorial(50)),
        ] {
            let line = encode_interval_line(&interval);
            assert_eq!(decode_interval_line(&line).unwrap(), interval);
        }
        assert!(decode_interval_line("1 2 3").is_err());
        assert!(decode_interval_line("abc 4").is_err());
        assert!(decode_interval_line("12").is_err());
    }

    #[test]
    fn intervals_round_trip() {
        let intervals = vec![iv(0, 120), iv(840, 5040)];
        let text = encode_intervals(&intervals);
        assert_eq!(decode_intervals(&text).unwrap(), intervals);
    }

    #[test]
    fn intervals_round_trip_at_ta056_scale() {
        let big = Interval::new(UBig::factorial(49), UBig::factorial(50));
        let text = encode_intervals(std::slice::from_ref(&big));
        assert_eq!(decode_intervals(&text).unwrap(), vec![big]);
    }

    #[test]
    fn empty_intervals_dropped_on_load() {
        let text = format!("{INTERVALS_HEADER}\n5 5\n7 9\n");
        assert_eq!(decode_intervals(&text).unwrap(), vec![iv(7, 9)]);
    }

    #[test]
    fn intervals_reject_bad_header() {
        assert!(decode_intervals("nonsense\n1 2\n").is_err());
    }

    #[test]
    fn intervals_reject_garbage_line() {
        let text = format!("{INTERVALS_HEADER}\n1 2 3\n");
        assert!(decode_intervals(&text).is_err());
        let text = format!("{INTERVALS_HEADER}\nabc 4\n");
        assert!(decode_intervals(&text).is_err());
        let text = format!("{INTERVALS_HEADER}\n12\n");
        assert!(decode_intervals(&text).is_err());
    }

    #[test]
    fn sharded_intervals_round_trip() {
        let shards = vec![vec![iv(0, 120), iv(200, 300)], vec![], vec![iv(840, 5040)]];
        let text = encode_sharded_intervals(&shards);
        assert_eq!(decode_sharded_intervals(&text).unwrap(), shards);
        // The v1 decoder reads the same file as the flat union.
        assert_eq!(
            decode_intervals(&text).unwrap(),
            vec![iv(0, 120), iv(200, 300), iv(840, 5040)]
        );
    }

    #[test]
    fn single_shard_encoding_is_the_v1_format() {
        let intervals = vec![iv(0, 120), iv(840, 5040)];
        let sharded = encode_sharded_intervals(std::slice::from_ref(&intervals));
        assert_eq!(sharded, encode_intervals(&intervals));
        assert_eq!(decode_sharded_intervals(&sharded).unwrap(), vec![intervals]);
    }

    #[test]
    fn markerless_v1_file_decodes_as_one_shard() {
        let text = encode_intervals(&[iv(7, 9), iv(20, 40)]);
        assert_eq!(
            decode_sharded_intervals(&text).unwrap(),
            vec![vec![iv(7, 9), iv(20, 40)]]
        );
        // An empty v1 file is one empty shard, not zero shards.
        assert_eq!(
            decode_sharded_intervals(&encode_intervals(&[])).unwrap(),
            vec![vec![]]
        );
    }

    #[test]
    fn sharded_markers_must_be_sequential() {
        let text = format!("{INTERVALS_HEADER}\n# shard 1\n1 2\n");
        assert!(decode_sharded_intervals(&text).is_err());
        let text = format!("{INTERVALS_HEADER}\n# shard 0\n1 2\n# shard 2\n3 4\n");
        assert!(decode_sharded_intervals(&text).is_err());
    }

    #[test]
    fn non_integer_shard_prefixed_lines_stay_v1_comments() {
        // "# shard x" is not a marker — v1 files with such annotations
        // must keep loading.
        let text = format!("{INTERVALS_HEADER}\n# shard x\n# shard count was 4 on host A\n1 2\n");
        assert_eq!(
            decode_sharded_intervals(&text).unwrap(),
            vec![vec![iv(1, 2)]]
        );
        assert_eq!(decode_intervals(&text).unwrap(), vec![iv(1, 2)]);
    }

    #[test]
    fn solution_round_trip() {
        let s = Solution::new(3679, vec![13, 35, 2, 0, 1]);
        let text = encode_solution(Some(&s));
        assert_eq!(decode_solution(&text).unwrap(), Some(s));
    }

    #[test]
    fn none_solution_round_trip() {
        let text = encode_solution(None);
        assert_eq!(decode_solution(&text).unwrap(), None);
    }

    #[test]
    fn solution_rejects_corruption() {
        assert!(decode_solution("bad\n").is_err());
        assert!(decode_solution(&format!("{SOLUTION_HEADER}\ncost x\nranks 1\n")).is_err());
        assert!(decode_solution(&format!("{SOLUTION_HEADER}\ncost 5\n")).is_err());
        assert!(decode_solution(&format!("{SOLUTION_HEADER}\ncost 5\nranks 1 b\n")).is_err());
    }

    #[test]
    fn store_save_load_round_trip() {
        use crate::{Coordinator, CoordinatorConfig, Request, WorkerId};
        let dir = std::env::temp_dir().join(format!("gridbnb-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("intervals.txt"), dir.join("solution.txt"));
        assert!(!store.exists());

        let mut coord = Coordinator::new(iv(0, 5040), CoordinatorConfig::default());
        // Hand out a couple of units and record a solution.
        let _ = coord.handle(
            Request::Join {
                worker: WorkerId(1),
                power: 10,
            },
            0,
        );
        let _ = coord.handle(
            Request::Update {
                worker: WorkerId(1),
                interval: iv(100, 5040),
            },
            1,
        );
        let _ = coord.handle(
            Request::ReportSolution {
                worker: WorkerId(1),
                solution: Solution::new(42, vec![1, 2, 3]),
            },
            2,
        );
        store.save(&coord).unwrap();
        assert!(store.exists());

        let (intervals, solution) = store.load().unwrap();
        assert_eq!(intervals, vec![iv(100, 5040)]);
        assert_eq!(solution.unwrap().cost, 42);
        std::fs::remove_dir_all(&dir).ok();
    }
}
