//! Grid-enabled branch and bound: the farmer–worker algorithm of the
//! paper's §4 with interval-coded work units.
//!
//! The central piece is the [`Coordinator`]: a transport-agnostic state
//! machine owning the paper's two global objects —
//!
//! * `INTERVALS`, the set of coordinator-side copies of all not-yet
//!   explored intervals, and
//! * `SOLUTION`, the best solution found so far —
//!
//! and implementing the four protocol concerns the paper addresses:
//! **load balancing** (selection + proportional partitioning operators,
//! with duplication below a length threshold), **fault tolerance**
//! (interval intersection on every worker contact, equation 14, plus
//! periodic two-file checkpoints), **implicit termination detection**
//! (the computation is over exactly when `INTERVALS` becomes empty) and
//! **solution sharing** (the three rules of §4.4).
//!
//! Above the single coordinator sits the [`ShardRouter`]: the root
//! range partitioned across `S` independent coordinators with
//! WorkerId-hash routing, cross-shard work stealing and O(1) global
//! termination detection — the same protocol surface, multiplied
//! contact throughput (see the [`mod@shard`] module docs). In front of
//! the router, the optional [`ContactGateway`] aggregates *many*
//! workers' request batches into shared per-shard bundles (see the
//! [`mod@gateway`] module docs), so at `W ≫ S` the per-shard lock is
//! taken once per flush instead of once per worker.
//!
//! Two executors drive the same coordinator (sharded or not):
//!
//! * [`runtime`] — a real multi-threaded farmer–worker runtime
//!   following the pull model (workers always initiate), with optional
//!   fault injection: one farmer thread behind crossbeam channels at
//!   `shards = 1`, direct per-shard contacts at `shards > 1`;
//! * the discrete-event grid simulator in `gridbnb-grid`, which replays
//!   the identical protocol over thousands of simulated volatile hosts to
//!   reproduce the paper's Table 2 and Figure 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod coordinator;
pub mod gateway;
mod protocol;
pub mod runtime;
pub mod shard;
pub mod storage;
pub mod trace;
pub mod transport;
pub mod wal;

pub use coordinator::{
    compare_len_per_power, compare_len_per_power_exact, BatchOutcome, ConfigError, Coordinator,
    CoordinatorConfig, CoordinatorStats, Holder, IntervalEntry,
};
pub use gateway::{BundleHandler, ContactGateway, GatewayMode, GatewayPolicy, GatewayStats};
pub use protocol::{Request, Response, ShardEnvelope, ShardId, WorkerId};
pub use shard::ShardRouter;
pub use storage::{
    Fault, FaultBackend, FileBackend, MemoryBackend, ShardDirBackend, StorageBackend,
};
pub use trace::{
    diff_traces, RunTrace, TraceDivergence, TraceError, TraceEvent, TraceMeta, TraceReplayer,
};
pub use transport::{GatewayTransport, ProtocolError, RouterTransport, Transport, TransportError};
pub use wal::{RecoveredState, WalError, WalMetrics, WalOp, WalStore};

pub use gridbnb_coding::{Interval, IntervalSet, TreeShape, UBig};
pub use gridbnb_engine::{Problem, Solution};
pub use gridbnb_metrics::{MetricsRegistry, MetricsSnapshot};
