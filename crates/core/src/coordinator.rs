//! The coordinator (farmer) state machine: `INTERVALS`, `SOLUTION`, and
//! the selection / partitioning / intersection operators of §4.
//!
//! # Indexed hot path
//!
//! The paper's farmer handled ~130 000 work allocations and ~2 000 000
//! update operations; with `INTERVALS` holding one entry per live B&B
//! process, any per-contact linear scan caps farmer scalability (the
//! 1.7 % farmer exploitation of Table 2 grows linearly with the pool).
//! This coordinator therefore keeps three auxiliary indexes next to the
//! entry vector:
//!
//! * `holder_of` — `WorkerId → entry index`, so `Update`, `Leave`,
//!   `RequestWork` completion and re-`Join` detaching are O(1) lookups
//!   instead of scans (a worker holds at most one entry at a time: every
//!   assignment is preceded by a detach or completion);
//! * `by_priority` — a `BTreeSet` of selection keys ordered by the
//!   **power-normalized selection rule** (below), so the selection
//!   operator is an O(log n) max-lookup;
//! * `heartbeats` — a `BTreeSet<(last_contact_ns, WorkerId)>`, so
//!   [`Coordinator::expire_stale_holders`] touches only the holders that
//!   are actually stale instead of sweeping every entry.
//!
//! `size()` is answered from an incrementally maintained total, so
//! monitoring does not rescan `INTERVALS` either.
//!
//! # Power-normalized selection
//!
//! The paper selects "the interval which maximizes the assigned part
//! `[C, B)`" for the requester; computed literally, that quantity
//! (`len·p/(holder_power+p)` for requester power `p`) depends on `p`, so
//! no single ordering of `INTERVALS` answers every query — which is
//! exactly why the seed implementation rescanned all entries on every
//! request. This coordinator instead ranks entries by **interval length
//! per unit holder power** (`len / holder_power`), the `p → 0` limit of
//! the paper's criterion, with two deliberate properties:
//!
//! * unassigned entries (the paper's *virtual process of null power*)
//!   have infinite priority, ranked among themselves by length — an
//!   expired or restored interval is always re-assigned first, which is
//!   the paper's fault-recovery behavior ("entirely given to another
//!   B&B process");
//! * among held entries, the least-served interval (longest remaining
//!   work per unit of exploration power currently attacking it) is
//!   partitioned first, which is the proportional-partitioning intent.
//!
//! Ties break toward the longer interval, then the lower entry index, so
//! selection is deterministic. [`Coordinator::selection_oracle`] is the
//! reference linear-scan implementation of the same rule; a property
//! test asserts the indexed selection always agrees with it.

use crate::wal::WalOp;
use crate::{Request, Response, WorkerId};
use gridbnb_coding::{Interval, UBig};
use gridbnb_engine::Solution;
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};

/// Coordinator tuning knobs.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Intervals shorter than this are **duplicated** instead of split
    /// (paper §4.2): the requester gets a full copy and both processes
    /// race, at the price of redundant exploration. Must be ≥ 1; the
    /// coordinator clamps zero to one (a zero threshold would make
    /// duplication unreachable *and* is meaningless, since entries are
    /// never empty). Use [`CoordinatorConfig::validate`] to reject the
    /// misconfiguration instead of silently clamping.
    pub duplication_threshold: UBig,
    /// Holders that have not contacted the coordinator for **more than**
    /// this long (nanoseconds of the injected clock) may be expired by
    /// [`Coordinator::expire_stale_holders`], making their interval
    /// reassignable in full — the recovery path for crashed workers.
    /// The comparison is strictly-greater: a worker whose contact is
    /// exactly `holder_timeout_ns` old is still live, so a heartbeat
    /// period equal to the timeout never expires a healthy worker.
    pub holder_timeout_ns: u64,
    /// Initial upper bound (e.g. from iterated greedy — the paper used
    /// 3681 then 3680). Solutions must *strictly* improve it.
    pub initial_upper_bound: Option<u64>,
}

/// A rejected configuration, anywhere in the stack: coordinator knobs
/// (see [`CoordinatorConfig::validate`]), shard layout (see
/// [`crate::ShardRouter::new`]), runtime policies (see
/// `RuntimeConfig::validate`), or a gateway policy checked against the
/// coordinator it fronts (see `GatewayPolicy::validate_against`). One
/// error type means one validated construction path — every entry point
/// (runtime, sim, the socket server) funnels through the same checks
/// instead of re-asserting them ad hoc.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `duplication_threshold` was zero (documented contract: ≥ 1).
    ZeroDuplicationThreshold,
    /// A shard router was asked for zero shards (contract: ≥ 1).
    ZeroShards,
    /// A runtime was asked for zero worker threads.
    ZeroWorkers,
    /// `worker_powers` was empty (it is cycled across workers).
    EmptyWorkerPowers,
    /// A coalescing policy with `slices_per_contact` of zero.
    ZeroCoalesceSlices,
    /// A coalescing silence window at or above the holder timeout: a
    /// worker using its whole allowed silence would be expired as dead
    /// and its work redone every window.
    CoalesceSilenceTooLong {
        /// The policy's `max_silence`, nanoseconds.
        silence_ns: u64,
        /// The coordinator's `holder_timeout_ns` it must stay below.
        timeout_ns: u64,
    },
    /// A gateway delay at or above the holder timeout: a worker parked
    /// in the gateway buffer is silent towards the coordinator, so its
    /// wait must never approach the expiry horizon.
    GatewayDelayTooLong {
        /// The policy's `max_delay_ns`.
        delay_ns: u64,
        /// The coordinator's `holder_timeout_ns` it must stay below.
        timeout_ns: u64,
    },
    /// A deterministic replicable run combined with a contact gateway:
    /// the gateway's flush timing depends on wall-clock deadlines and
    /// thread interleaving, which no seed can fix, so the combination
    /// is rejected loudly instead of producing quietly varying traces.
    ReplicableGatewayUnsupported,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroDuplicationThreshold => {
                write!(f, "duplication_threshold must be ≥ 1 (got 0)")
            }
            ConfigError::ZeroShards => write!(f, "need at least one shard"),
            ConfigError::ZeroWorkers => write!(f, "need at least one worker"),
            ConfigError::EmptyWorkerPowers => write!(
                f,
                "worker_powers must not be empty (it is cycled across workers)"
            ),
            ConfigError::ZeroCoalesceSlices => {
                write!(f, "coalesce.slices_per_contact must be ≥ 1")
            }
            ConfigError::CoalesceSilenceTooLong {
                silence_ns,
                timeout_ns,
            } => write!(
                f,
                "coalesce.max_silence must stay below coordinator.holder_timeout_ns \
                 ({silence_ns} ns ≥ {timeout_ns} ns)"
            ),
            ConfigError::GatewayDelayTooLong {
                delay_ns,
                timeout_ns,
            } => write!(
                f,
                "gateway.max_delay_ns must stay below coordinator.holder_timeout_ns \
                 ({delay_ns} ns ≥ {timeout_ns} ns)"
            ),
            ConfigError::ReplicableGatewayUnsupported => write!(
                f,
                "a deterministic replicable run cannot use a contact gateway \
                 (its flush timing is wall-clock driven)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl CoordinatorConfig {
    /// Checks the documented invariants without constructing a
    /// coordinator. [`Coordinator::new`] and [`Coordinator::restore`]
    /// accept invalid configs but clamp them to the nearest valid value;
    /// call this first to fail loudly instead.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.duplication_threshold.is_zero() {
            return Err(ConfigError::ZeroDuplicationThreshold);
        }
        Ok(())
    }

    /// The config with out-of-contract values clamped into range.
    fn sanitized(mut self) -> Self {
        if self.duplication_threshold.is_zero() {
            self.duplication_threshold = UBig::one();
        }
        self
    }
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            duplication_threshold: UBig::from(64u64),
            holder_timeout_ns: 60_000_000_000, // 60 s
            initial_upper_bound: None,
        }
    }
}

/// One member of `INTERVALS`: the coordinator-side copy of a work unit.
#[derive(Clone, Debug)]
pub struct IntervalEntry {
    /// The copy `[A', B')`.
    pub interval: Interval,
    /// Holders currently exploring (a duplicated interval has several;
    /// an unassigned interval — after a restore or an expiry — has none
    /// and behaves as held by the paper's *virtual process of null
    /// power*).
    pub holders: Vec<Holder>,
}

impl IntervalEntry {
    /// Combined power of all holders (0 for an unassigned entry).
    fn holder_power(&self) -> u64 {
        self.holders
            .iter()
            .fold(0u64, |acc, h| acc.saturating_add(h.power.max(1)))
    }
}

/// One holder of an interval copy.
#[derive(Clone, Debug)]
pub struct Holder {
    /// The worker exploring the interval.
    pub worker: WorkerId,
    /// Its relative power (proportional partitioning weight).
    pub power: u64,
    /// Injected-clock timestamp of its last contact.
    pub last_contact_ns: u64,
}

/// Protocol and bookkeeping counters (feeds the Table 2 reproduction).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoordinatorStats {
    /// Work units handed out (paper: "work allocations", 129 958).
    pub work_allocations: u64,
    /// Interval splits performed.
    pub partitions: u64,
    /// Interval duplications performed (redundancy source).
    pub duplications: u64,
    /// Whole-interval assignments (unassigned → requester).
    pub full_assignments: u64,
    /// Update (checkpoint) requests processed.
    pub updates: u64,
    /// Solution reports received.
    pub solution_reports: u64,
    /// Solution reports that improved `SOLUTION`.
    pub improvements: u64,
    /// Terminate responses issued.
    pub terminations_sent: u64,
    /// Holders expired as presumed dead.
    pub holders_expired: u64,
    /// Intervals donated to a draining peer shard (work stealing).
    pub steals_donated: u64,
    /// Intervals adopted from a peer shard (work stealing).
    pub steals_adopted: u64,
}

impl CoordinatorStats {
    /// Adds `other` field-wise — used to aggregate per-shard counters
    /// into the router-level view.
    pub fn merge(&mut self, other: &CoordinatorStats) {
        self.work_allocations += other.work_allocations;
        self.partitions += other.partitions;
        self.duplications += other.duplications;
        self.full_assignments += other.full_assignments;
        self.updates += other.updates;
        self.solution_reports += other.solution_reports;
        self.improvements += other.improvements;
        self.terminations_sent += other.terminations_sent;
        self.holders_expired += other.holders_expired;
        self.steals_donated += other.steals_donated;
        self.steals_adopted += other.steals_adopted;
    }
}

/// Result of [`Coordinator::apply_batch`]: the responses produced so
/// far, plus the point at which the batch stalled (if it did).
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// One response per processed request, in request order. When the
    /// batch stalled, the stalled request has **no** entry here — its
    /// response is whatever the caller's recovery (steal-and-retry, or
    /// accepting the `Terminate`) produces.
    pub responses: Vec<Response>,
    /// `Some((request, rest))` iff a work request ([`Request::Join`] /
    /// [`Request::RequestWork`]) drew [`Response::Terminate`] because
    /// this coordinator drained: `request` is that work request (its
    /// unit completion and the `terminations_sent` counter have already
    /// been applied) and `rest` the unprocessed tail of the batch. A
    /// sharded caller steals into this coordinator, retries `request`,
    /// and feeds `rest` back through [`Coordinator::apply_batch`]; a
    /// single-coordinator caller answers `Terminate` (final — there is
    /// nobody to steal from) and continues with `rest` the same way.
    pub stalled: Option<(Request, Vec<Request>)>,
}

/// Deferred index maintenance accumulated across one
/// [`Coordinator::apply_batch`] call (see the batch section there).
#[derive(Debug, Default)]
struct BatchDefer {
    /// Entry index → the selection key physically in `by_priority`
    /// (recorded before the entry's first in-batch mutation; the live
    /// entry may have shrunk several times since).
    stale_keys: HashMap<usize, SelectionKey>,
    /// Worker → the heartbeat stamp physically in `heartbeats`
    /// (the holder struct already carries the refreshed stamp).
    stale_beats: HashMap<WorkerId, u64>,
}

impl BatchDefer {
    fn is_empty(&self) -> bool {
        self.stale_keys.is_empty() && self.stale_beats.is_empty()
    }
}

/// Selection priority of one entry under the power-normalized rule:
/// ordered by `len / holder_power` (exact rational comparison via
/// cross-multiplication; `holder_power == 0` compares as +∞), then by
/// length, then toward the lower entry index. The maximum of the
/// [`Coordinator::by_priority`] set is the entry the selection operator
/// picks.
#[derive(Clone, Debug, PartialEq, Eq)]
struct SelectionKey {
    len: UBig,
    holder_power: u64,
    idx: usize,
}

impl Ord for SelectionKey {
    fn cmp(&self, other: &Self) -> Ordering {
        let ratio = match (self.holder_power, other.holder_power) {
            (0, 0) => Ordering::Equal,
            (0, _) => Ordering::Greater,
            (_, 0) => Ordering::Less,
            (hp_a, hp_b) => compare_len_per_power(&self.len, hp_a, &other.len, hp_b),
        };
        ratio
            .then_with(|| self.len.cmp(&other.len))
            // Lower index ranks higher so `last()` is deterministic.
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

/// The selection key of `entries[idx]` as a free function, so batch
/// maintenance can recompute keys while another field of the
/// coordinator is mutably borrowed.
fn priority_key_of(entries: &[IntervalEntry], idx: usize) -> SelectionKey {
    let e = &entries[idx];
    SelectionKey {
        len: e.interval.length(),
        holder_power: e.holder_power(),
        idx,
    }
}

/// Compares `len_a / hp_a` with `len_b / hp_b` (powers must be ≥ 1) —
/// the rational comparison at the heart of every priority-set insert,
/// remove and lookup. Equivalent to cross-multiplying
/// `len_a·hp_b  vs  len_b·hp_a`, but tries three allocation-free fast
/// paths before falling back to the exact `UBig` products
/// ([`compare_len_per_power_exact`], whose two temporaries dominated
/// the per-comparison cost):
///
/// 1. **bit-length screen** — `bits(x·y) ∈ [bits x + bits y − 1,
///    bits x + bits y]`, so products whose bit-length estimates differ
///    by ≥ 2 cannot compare the other way;
/// 2. **u128 widening** — both lengths fit `u64`, so the 128-bit
///    products are exact;
/// 3. **`f64` approximation with a conservative margin** — `to_f64` is
///    a few ulps off at worst (≲ 10⁻¹³ relative even for huge limb
///    counts), so a relative gap above 10⁻⁹ decides the comparison;
///    near-ties fall through.
///
/// Every path is decided only when mathematically certain, so the
/// result is *identical* to the exact comparator — pinned by a property
/// test — which `BTreeSet` correctness requires.
pub fn compare_len_per_power(len_a: &UBig, hp_a: u64, len_b: &UBig, hp_b: u64) -> Ordering {
    debug_assert!(hp_a >= 1 && hp_b >= 1, "holder powers are clamped to ≥ 1");
    let (bits_a, bits_b) = (len_a.bit_len(), len_b.bit_len());
    if bits_a == 0 || bits_b == 0 {
        // A zero length makes its product zero (entries are never empty,
        // but the comparator stays total anyway).
        return bits_a.cmp(&bits_b);
    }
    let bits = |x: u64| 64 - x.leading_zeros() as usize;
    // (1) Bit-length screen on the products len_a·hp_b vs len_b·hp_a.
    let (pa_bits, pb_bits) = (bits_a + bits(hp_b), bits_b + bits(hp_a));
    if pa_bits >= pb_bits + 2 {
        return Ordering::Greater;
    }
    if pb_bits >= pa_bits + 2 {
        return Ordering::Less;
    }
    // (2) Exact u128 widening when both lengths fit a limb.
    if bits_a <= 64 && bits_b <= 64 {
        let pa = len_a.to_u64().expect("bit_len ≤ 64") as u128 * hp_b as u128;
        let pb = len_b.to_u64().expect("bit_len ≤ 64") as u128 * hp_a as u128;
        return pa.cmp(&pb);
    }
    // (3) f64 products with a margin far above the conversion error.
    let pa = len_a.to_f64() * hp_b as f64;
    let pb = len_b.to_f64() * hp_a as f64;
    if pa.is_finite() && pb.is_finite() {
        let margin = pa.max(pb) * 1e-9;
        if (pa - pb).abs() > margin {
            return if pa > pb {
                Ordering::Greater
            } else {
                Ordering::Less
            };
        }
    }
    // (4) Exact fallback for genuine near-ties.
    compare_len_per_power_exact(len_a, hp_a, len_b, hp_b)
}

/// Reference comparison of `len_a / hp_a` vs `len_b / hp_b` by exact
/// cross-multiplication (allocates two `UBig` products). The property
/// tests pin [`compare_len_per_power`] to this.
pub fn compare_len_per_power_exact(len_a: &UBig, hp_a: u64, len_b: &UBig, hp_b: u64) -> Ordering {
    len_a.mul_u64(hp_b).cmp(&len_b.mul_u64(hp_a))
}

impl PartialOrd for SelectionKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The farmer-side state machine (transport-agnostic; both the thread
/// runtime and the grid simulator drive it).
///
/// Invariants maintained (checked by [`Coordinator::check_invariants`]):
///
/// * entries are non-empty intervals within the root range;
/// * entries are pairwise disjoint (duplication shares *one* entry among
///   several holders rather than duplicating the entry — the paper:
///   "the coordinator keeps only one copy of a duplicated interval");
/// * the union of entries covers exactly the not-yet-explored numbers
///   (work conservation: nothing is lost, only redundantly re-explored —
///   only checkable against an external record of explored numbers, so
///   this one is asserted by the state-machine property tests, not by
///   `check_invariants`);
/// * every auxiliary index (priority set, holder map, heartbeat set, the
///   running size total) agrees with the entry vector.
#[derive(Clone, Debug)]
pub struct Coordinator {
    root: Interval,
    entries: Vec<IntervalEntry>,
    /// One key per entry; `last()` is the selection operator's pick.
    by_priority: BTreeSet<SelectionKey>,
    /// `worker → index of the entry it (co-)holds` — at most one, since
    /// every assignment is preceded by a detach or a completion.
    holder_of: HashMap<WorkerId, usize>,
    /// `(last_contact_ns, worker)` for every holder, oldest first.
    heartbeats: BTreeSet<(u64, WorkerId)>,
    /// Σ entry lengths, maintained incrementally (`size()`).
    remaining: UBig,
    solution: Option<Solution>,
    config: CoordinatorConfig,
    stats: CoordinatorStats,
    /// Durability deltas queued since the last drain — `None` while
    /// journaling is disabled (the default; a WAL-attached router turns
    /// it on). Holder churn is deliberately not journaled: recovery
    /// restores every interval unassigned, exactly like
    /// [`Coordinator::restore`].
    journal: Option<Vec<WalOp>>,
}

impl Coordinator {
    /// A coordinator for the whole tree: `INTERVALS` starts as the root
    /// range (paper §4.3). Out-of-contract config values are clamped
    /// (see [`CoordinatorConfig::validate`]).
    pub fn new(root: Interval, config: CoordinatorConfig) -> Self {
        let intervals = if root.is_empty() {
            Vec::new()
        } else {
            vec![root.clone()]
        };
        Self::build(root, intervals, None, config)
    }

    /// Rebuilds a coordinator from checkpointed state (all intervals
    /// restored unassigned; workers will re-request work).
    pub fn restore(
        root: Interval,
        intervals: Vec<Interval>,
        solution: Option<Solution>,
        config: CoordinatorConfig,
    ) -> Self {
        Self::build(root, intervals, solution, config)
    }

    fn build(
        root: Interval,
        intervals: Vec<Interval>,
        solution: Option<Solution>,
        config: CoordinatorConfig,
    ) -> Self {
        let mut coordinator = Coordinator {
            root,
            entries: Vec::new(),
            by_priority: BTreeSet::new(),
            holder_of: HashMap::new(),
            heartbeats: BTreeSet::new(),
            remaining: UBig::zero(),
            solution,
            config: config.sanitized(),
            stats: CoordinatorStats::default(),
            journal: None,
        };
        for interval in intervals {
            if interval.is_empty() {
                continue;
            }
            coordinator.remaining += &interval.length();
            coordinator.entries.push(IntervalEntry {
                interval,
                holders: Vec::new(),
            });
            coordinator.index_insert(coordinator.entries.len() - 1);
        }
        coordinator
    }

    /// Turns on durability journaling: every subsequent interval
    /// mutation and solution improvement queues a [`WalOp`] until
    /// [`Coordinator::drain_journal`] takes it. Idempotent.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Takes the queued durability deltas (always empty while journaling
    /// is disabled). The caller appends them to the shard's WAL segment
    /// before releasing the shard lock — that is what keeps the log in
    /// state order.
    pub fn drain_journal(&mut self) -> Vec<WalOp> {
        match self.journal.as_mut() {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// `true` iff [`Coordinator::enable_journal`] has been called.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Turns journaling back off, discarding any queued deltas (used by
    /// clones, which have no log to drain into).
    pub fn disable_journal(&mut self) {
        self.journal = None;
    }

    /// Handles one worker request at injected time `now_ns`.
    pub fn handle(&mut self, request: Request, now_ns: u64) -> Response {
        match request {
            Request::Join { worker, power } => {
                // A (re-)joining worker must NOT complete anything: a
                // crashed-and-restarted process may reuse an id whose old
                // interval is still unexplored. Detach the id, keep the
                // intervals.
                self.detach_worker(worker);
                self.assign(worker, power.max(1), now_ns)
            }
            Request::RequestWork { worker, power } => {
                // RequestWork is only sent on genuine exhaustion: the
                // worker's live interval is empty, and the coordinator
                // copy is always a subset of the live interval, so the
                // copy is fully explored — drop it.
                self.complete_unit_of(worker);
                self.assign(worker, power.max(1), now_ns)
            }
            Request::Update { worker, interval } => self.update(worker, interval, now_ns),
            Request::ReportSolution {
                worker: _,
                solution,
            } => self.report_solution(solution),
            Request::UpdateAndReport {
                worker,
                interval,
                solution,
            } => {
                // Exactly ReportSolution-then-Update, folded into one
                // contact: the ack's cutoff reflects the merged report.
                if let Some(solution) = solution {
                    let _ = self.report_solution(solution);
                }
                self.update(worker, interval, now_ns)
            }
            Request::Leave { worker } => {
                self.detach_worker(worker);
                Response::LeaveAck
            }
        }
    }

    /// Handles a whole batch of requests at injected time `now_ns` —
    /// the amortized entry point behind one lock acquisition of a
    /// sharded or funneled executor.
    ///
    /// Semantically this is exactly `requests.map(|r| handle(r, now))`
    /// (same responses, same final state, same counters — pinned by a
    /// property test), but the auxiliary indexes are maintained **per
    /// batch, not per op**: a run of interval-shrinking updates defers
    /// its priority-set re-keys and heartbeat refreshes, paying one
    /// `BTreeSet` remove+insert per *touched entry / worker* instead of
    /// one per request. The paper's dominant load — the ~2 M tiny
    /// update operations — collapses to interval arithmetic plus O(1)
    /// map probes per op.
    ///
    /// Deferred state is flushed before any operation that consults or
    /// restructures the indexes (selection for `Join`/`RequestWork`,
    /// entry removal on an empty intersection or unit completion,
    /// holder detach on `Leave`), so every response is computed against
    /// exactly the state sequential handling would see.
    ///
    /// When a work request finds this coordinator drained it returns
    /// [`Response::Terminate`]; a sharded caller must get a chance to
    /// steal before the rest of the batch runs, so the batch **stalls**:
    /// see [`BatchOutcome::stalled`].
    pub fn apply_batch(&mut self, requests: Vec<Request>, now_ns: u64) -> BatchOutcome {
        let mut responses = Vec::with_capacity(requests.len());
        let mut defer = BatchDefer::default();
        let mut queue = requests.into_iter();
        while let Some(request) = queue.next() {
            match request {
                Request::Update { worker, interval } => {
                    responses.push(self.batched_update(worker, interval, now_ns, &mut defer));
                }
                Request::UpdateAndReport {
                    worker,
                    interval,
                    solution,
                } => {
                    if let Some(solution) = solution {
                        let _ = self.report_solution(solution);
                    }
                    responses.push(self.batched_update(worker, interval, now_ns, &mut defer));
                }
                // A solution report touches only `SOLUTION` and its
                // counters — no index interaction, nothing to flush.
                request @ Request::ReportSolution { .. } => {
                    responses.push(self.handle(request, now_ns));
                }
                request @ Request::Leave { .. } => {
                    self.flush_batch(&mut defer);
                    responses.push(self.handle(request, now_ns));
                }
                request @ (Request::Join { .. } | Request::RequestWork { .. }) => {
                    self.flush_batch(&mut defer);
                    let response = self.handle(request.clone(), now_ns);
                    if matches!(response, Response::Terminate) {
                        return BatchOutcome {
                            responses,
                            stalled: Some((request, queue.collect())),
                        };
                    }
                    responses.push(response);
                }
            }
        }
        self.flush_batch(&mut defer);
        BatchOutcome {
            responses,
            stalled: None,
        }
    }

    /// The batched twin of [`Coordinator::update`]: same response, same
    /// interval/size arithmetic, but the priority re-key and heartbeat
    /// refresh are deferred into `defer` (coalescing repeats on the
    /// same entry/worker). The two removal paths flush first, so they
    /// run on clean indexes.
    fn batched_update(
        &mut self,
        worker: WorkerId,
        reported: Interval,
        now_ns: u64,
        defer: &mut BatchDefer,
    ) -> Response {
        self.stats.updates += 1;
        let cutoff = self.cutoff();
        let Some(&idx) = self.holder_of.get(&worker) else {
            return Response::UpdateAck {
                interval: Interval::empty(),
                cutoff,
            };
        };
        // Record the physical heartbeat stamp once, then refresh the
        // holder in place — the set itself is fixed up at flush time.
        {
            let h = self.entries[idx]
                .holders
                .iter_mut()
                .find(|h| h.worker == worker)
                .expect("holder map pointed at an entry without the holder");
            defer.stale_beats.entry(worker).or_insert(h.last_contact_ns);
            h.last_contact_ns = now_ns;
        }
        let met = self.entries[idx].interval.intersect(&reported);
        if met.is_empty() {
            // Removal restructures the entry vector and every index:
            // re-sync them first, then take the sequential path.
            self.flush_batch(defer);
            self.remove_entry(idx);
            return Response::UpdateAck {
                interval: Interval::empty(),
                cutoff,
            };
        }
        if met == self.entries[idx].interval {
            // Heartbeat-only update: nothing moved, nothing to re-key.
            return Response::UpdateAck {
                interval: met,
                cutoff,
            };
        }
        // Shrink in place; the selection key physically in the set is
        // recorded (once) so the flush can retire it.
        defer
            .stale_keys
            .entry(idx)
            .or_insert_with(|| priority_key_of(&self.entries, idx));
        let old_len = self.entries[idx].interval.length();
        let journaled_old = self
            .journal
            .is_some()
            .then(|| self.entries[idx].interval.clone());
        self.remaining += &met.length();
        self.remaining = self.remaining.saturating_sub(&old_len);
        let result = met.clone();
        self.entries[idx].interval = met;
        if let Some(old) = journaled_old {
            self.journal.as_mut().unwrap().push(WalOp::Replace {
                old,
                new: result.clone(),
            });
        }
        Response::UpdateAck {
            interval: result,
            cutoff,
        }
    }

    /// Applies the deferred maintenance of one batch: every dirty entry
    /// gets exactly one priority-set remove+insert, every touched
    /// worker exactly one heartbeat remove+insert — however many times
    /// the batch hit them.
    fn flush_batch(&mut self, defer: &mut BatchDefer) {
        if defer.is_empty() {
            return;
        }
        for (idx, stale) in defer.stale_keys.drain() {
            let removed = self.by_priority.remove(&stale);
            debug_assert!(removed, "deferred key for entry {idx} not in the set");
            let inserted = self.by_priority.insert(priority_key_of(&self.entries, idx));
            debug_assert!(inserted, "duplicate refreshed key for entry {idx}");
        }
        for (worker, stale) in defer.stale_beats.drain() {
            let idx = *self
                .holder_of
                .get(&worker)
                .expect("deferred heartbeat for a detached worker");
            let current = self.entries[idx]
                .holders
                .iter()
                .find(|h| h.worker == worker)
                .expect("holder map pointed at an entry without the holder")
                .last_contact_ns;
            if current != stale {
                self.heartbeats.remove(&(stale, worker));
                self.heartbeats.insert((current, worker));
            }
        }
    }

    /// `true` iff `INTERVALS` is empty: implicit termination (§4.3).
    pub fn is_terminated(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of intervals (the paper's *cardinality* of `INTERVALS`,
    /// roughly the number of live B&B processes during a run).
    pub fn cardinality(&self) -> usize {
        self.entries.len()
    }

    /// Sum of interval lengths (the paper's *size* of `INTERVALS`: the
    /// count of not-yet-explored solutions). Strictly decreasing over a
    /// run; answered from a running total, not a scan.
    pub fn size(&self) -> UBig {
        self.remaining.clone()
    }

    /// Current best cost: the minimum of the initial upper bound and any
    /// reported solution (what workers must strictly beat).
    pub fn cutoff(&self) -> Option<u64> {
        match (&self.solution, self.config.initial_upper_bound) {
            (Some(s), Some(ub)) => Some(s.cost.min(ub)),
            (Some(s), None) => Some(s.cost),
            (None, ub) => ub,
        }
    }

    /// The global best solution (`SOLUTION`).
    pub fn solution(&self) -> Option<&Solution> {
        self.solution.as_ref()
    }

    /// Protocol counters.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// The current entries (for checkpointing and inspection). Order is
    /// arbitrary and changes as entries are removed.
    pub fn entries(&self) -> &[IntervalEntry] {
        &self.entries
    }

    /// The root range this coordinator administers.
    pub fn root(&self) -> &Interval {
        &self.root
    }

    /// Earliest injected-clock instant at which some holder becomes
    /// expirable, or `None` if no entry is held. Executors use this to
    /// schedule [`Coordinator::expire_stale_holders`] exactly instead of
    /// sweeping on a fixed period.
    pub fn next_expiry_at(&self) -> Option<u64> {
        self.heartbeats.first().map(|&(t, _)| {
            t.saturating_add(self.config.holder_timeout_ns)
                .saturating_add(1)
        })
    }

    /// Expires holders whose last contact is **strictly** older than
    /// `holder_timeout_ns` at `now_ns`; their intervals become unassigned
    /// and are handed out *in full* at the next work request — the
    /// paper's recovery of a failed worker's last interval copy. A worker
    /// heard from exactly `holder_timeout_ns` ago is still live (a
    /// heartbeat period equal to the timeout never expires its own
    /// sender). Returns the number of holders expired.
    ///
    /// Only stale holders are visited (oldest-first heartbeat index);
    /// a sweep with nothing to expire is O(1).
    pub fn expire_stale_holders(&mut self, now_ns: u64) -> u64 {
        let timeout = self.config.holder_timeout_ns;
        let mut expired = 0u64;
        while let Some(&(t, worker)) = self.heartbeats.first() {
            if now_ns.saturating_sub(t) <= timeout {
                break; // everything else is at least as recent
            }
            self.detach_worker(worker);
            expired += 1;
        }
        self.stats.holders_expired += expired;
        expired
    }

    /// Index of the entry the selection operator would pick now, or
    /// `None` when `INTERVALS` is empty. O(log n) via the priority set.
    pub fn selection_peek(&self) -> Option<usize> {
        self.by_priority.last().map(|k| k.idx)
    }

    /// Reference implementation of the power-normalized selection rule
    /// as a naive linear scan. Property tests assert it always agrees
    /// with [`Coordinator::selection_peek`]; it is not used on the
    /// request path.
    pub fn selection_oracle(&self) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .map(|(idx, e)| SelectionKey {
                len: e.interval.length(),
                holder_power: e.holder_power(),
                idx,
            })
            .max()
            .map(|k| k.idx)
    }

    /// Verifies the structural invariants — including the agreement of
    /// every auxiliary index with the entry vector — and returns a
    /// description of the first violation. Used by tests after arbitrary
    /// request sequences; O(n²), never on the request path.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut total = UBig::zero();
        let mut holders_seen = 0usize;
        for (i, e) in self.entries.iter().enumerate() {
            if e.interval.is_empty() {
                return Err(format!("entry {i} is empty: {}", e.interval));
            }
            if !self.root.contains_interval(&e.interval) {
                return Err(format!("entry {i} escapes the root range"));
            }
            for other in &self.entries[i + 1..] {
                if e.interval.overlaps(&other.interval) {
                    return Err(format!(
                        "entries overlap: {} and {}",
                        e.interval, other.interval
                    ));
                }
            }
            total += &e.interval.length();
            if !self.by_priority.contains(&self.priority_key(i)) {
                return Err(format!("entry {i} has no (current) priority key"));
            }
            for h in &e.holders {
                holders_seen += 1;
                if self.holder_of.get(&h.worker) != Some(&i) {
                    return Err(format!("holder map does not place {} at {i}", h.worker));
                }
                if !self.heartbeats.contains(&(h.last_contact_ns, h.worker)) {
                    return Err(format!("missing heartbeat for {}", h.worker));
                }
            }
        }
        if self.by_priority.len() != self.entries.len() {
            return Err(format!(
                "priority set has {} keys for {} entries",
                self.by_priority.len(),
                self.entries.len()
            ));
        }
        if self.holder_of.len() != holders_seen {
            return Err(format!(
                "holder map has {} workers for {} holders",
                self.holder_of.len(),
                holders_seen
            ));
        }
        if self.heartbeats.len() != holders_seen {
            return Err(format!(
                "heartbeat set has {} stamps for {} holders",
                self.heartbeats.len(),
                holders_seen
            ));
        }
        if total != self.remaining {
            return Err(format!(
                "running size {} diverged from actual {total}",
                self.remaining
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Index maintenance
    // ------------------------------------------------------------------

    /// The current selection key of entry `idx` (recomputed, not stored:
    /// the key is a pure function of the entry, so remove-before-mutate /
    /// insert-after-mutate pairs stay symmetric).
    fn priority_key(&self, idx: usize) -> SelectionKey {
        priority_key_of(&self.entries, idx)
    }

    fn index_insert(&mut self, idx: usize) {
        let key = self.priority_key(idx);
        let inserted = self.by_priority.insert(key);
        debug_assert!(inserted, "duplicate priority key for entry {idx}");
    }

    fn index_remove(&mut self, idx: usize) {
        let key = self.priority_key(idx);
        let removed = self.by_priority.remove(&key);
        debug_assert!(removed, "stale priority key for entry {idx}");
    }

    /// Runs `mutate` on entry `idx` with its priority key kept in sync.
    fn with_entry<R>(&mut self, idx: usize, mutate: impl FnOnce(&mut IntervalEntry) -> R) -> R {
        self.index_remove(idx);
        let result = mutate(&mut self.entries[idx]);
        self.index_insert(idx);
        result
    }

    /// Registers `holder` on entry `idx` (map + heartbeat + priority).
    fn attach_holder(&mut self, idx: usize, holder: Holder) {
        self.holder_of.insert(holder.worker, idx);
        self.heartbeats
            .insert((holder.last_contact_ns, holder.worker));
        self.with_entry(idx, |e| e.holders.push(holder));
    }

    /// Removes `worker` from the entry it holds (if any) without touching
    /// the interval — graceful leave, expiry, or re-join: the work
    /// remains to be done. O(log n).
    fn detach_worker(&mut self, worker: WorkerId) {
        let Some(idx) = self.holder_of.remove(&worker) else {
            return;
        };
        let stamp = self.with_entry(idx, |e| {
            let pos = e
                .holders
                .iter()
                .position(|h| h.worker == worker)
                .expect("holder map pointed at an entry without the holder");
            e.holders.swap_remove(pos).last_contact_ns
        });
        self.heartbeats.remove(&(stamp, worker));
    }

    /// Drops the entry (co-)held by `worker` — called when that worker
    /// reports completion of its unit. Co-holders of a duplicated entry
    /// lose it too: the numbers are explored, their next update returns
    /// an empty intersection and they will request new work. O(log n).
    fn complete_unit_of(&mut self, worker: WorkerId) {
        if let Some(&idx) = self.holder_of.get(&worker) {
            self.remove_entry(idx);
        }
    }

    /// Removes entry `idx` entirely: detaches all holders, drops its
    /// priority key, subtracts its length from the running size, and
    /// repairs the indexes of the entry swapped into its slot.
    fn remove_entry(&mut self, idx: usize) {
        self.index_remove(idx);
        let last = self.entries.len() - 1;
        if idx != last {
            // The last entry is about to move into slot `idx`: retire its
            // key under the old index first.
            self.index_remove(last);
        }
        let entry = self.entries.swap_remove(idx);
        if let Some(journal) = self.journal.as_mut() {
            journal.push(WalOp::Remove(entry.interval.clone()));
        }
        for h in &entry.holders {
            self.holder_of.remove(&h.worker);
            self.heartbeats.remove(&(h.last_contact_ns, h.worker));
        }
        self.remaining = self.remaining.saturating_sub(&entry.interval.length());
        if idx != last {
            // Re-key the moved entry and re-point its holders.
            self.index_insert(idx);
            for h in &self.entries[idx].holders {
                self.holder_of.insert(h.worker, idx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Load balancing (§4.2)
    // ------------------------------------------------------------------

    /// Assigns a work unit via the selection + partitioning operators.
    /// O(log n): one priority-set max plus index maintenance.
    fn assign(&mut self, worker: WorkerId, power: u64, now_ns: u64) -> Response {
        let Some(idx) = self.selection_peek() else {
            self.stats.terminations_sent += 1;
            return Response::Terminate;
        };
        // Agreement with the linear-scan oracle is pinned by the
        // `indexed_selection_matches_linear_oracle` property test, not
        // asserted here — an O(n) scan per allocation would re-create
        // the very cost this path removes, even in debug builds.
        let response = self.partition(idx, worker, power, now_ns);
        self.stats.work_allocations += 1;
        response
    }

    /// Partitioning operator on entry `idx` for `worker` of `power`.
    fn partition(&mut self, idx: usize, worker: WorkerId, power: u64, now_ns: u64) -> Response {
        let cutoff = self.cutoff();
        let holder = Holder {
            worker,
            power,
            last_contact_ns: now_ns,
        };
        let entry = &self.entries[idx];
        let len = entry.interval.length();

        if entry.holders.is_empty() {
            // Unassigned (virtual null-power holder): C = A, assign all.
            let interval = entry.interval.clone();
            self.attach_holder(idx, holder);
            self.stats.full_assignments += 1;
            return Response::Work { interval, cutoff };
        }

        if len < self.config.duplication_threshold {
            return self.duplicate(idx, holder, cutoff);
        }

        let holder_power = entry.holder_power();
        let steal = len.mul_div_floor(power, holder_power.saturating_add(power).max(1));
        if steal.is_zero() {
            return self.duplicate(idx, holder, cutoff);
        }
        // C = B − steal ; holder keeps [A, C), requester gets [C, B).
        let cut = entry.interval.end().saturating_sub(&steal);
        let (keep, give) = entry.interval.split_at(&cut);
        debug_assert!(!keep.is_empty() && !give.is_empty());
        if let Some(journal) = self.journal.as_mut() {
            journal.push(WalOp::Replace {
                old: entry.interval.clone(),
                new: keep.clone(),
            });
            journal.push(WalOp::Insert(give.clone()));
        }
        self.with_entry(idx, |e| e.interval = keep);
        self.entries.push(IntervalEntry {
            interval: give.clone(),
            holders: Vec::new(),
        });
        let new_idx = self.entries.len() - 1;
        self.index_insert(new_idx);
        self.attach_holder(new_idx, holder);
        self.stats.partitions += 1;
        Response::Work {
            interval: give,
            cutoff,
        }
    }

    /// Duplication: the requester becomes an additional holder of the
    /// *same* entry and receives a full copy of it.
    fn duplicate(&mut self, idx: usize, holder: Holder, cutoff: Option<u64>) -> Response {
        let interval = self.entries[idx].interval.clone();
        self.attach_holder(idx, holder);
        self.stats.duplications += 1;
        Response::Work { interval, cutoff }
    }

    // ------------------------------------------------------------------
    // Work stealing (sharded coordination)
    // ------------------------------------------------------------------

    /// Donates an interval to a draining peer shard: the returned range
    /// leaves this coordinator entirely (no copy is kept, preserving
    /// cross-shard disjointness). Donation tiers, strictly in order —
    /// an undisturbed donation always beats a bigger disturbing one:
    ///
    /// 1. the whole of the longest unassigned entry (nobody's
    ///    exploration is disturbed, no redundancy is created);
    /// 2. only when nothing is unassigned, the back half of the longest
    ///    held entry of length ≥ 2 — exactly like the partitioning
    ///    operator, the holder keeps the front and learns of the shrink
    ///    at its next update (the holder's stale tail may be briefly
    ///    re-explored, the usual shrink-lag redundancy).
    ///
    /// An active holder is never detached: stealing a held entry out
    /// from under its holder would let the same interval ping-pong
    /// between drained shards faster than anyone completes it. When all
    /// entries are held and too short to split, this returns `None` and
    /// the router answers the requester with [`Response::Retry`] — the
    /// holders (or, for crashed holders, expiry followed by a tier-1
    /// steal) finish the endgame. Also `None` when `INTERVALS` is empty.
    /// O(n) scan — stealing only happens when a peer shard drains,
    /// never on the contact path.
    pub fn steal_largest(&mut self) -> Option<Interval> {
        // (tier, donated length, entry) of the best candidate so far —
        // tier-major, so an unassigned donation of any size wins over a
        // holder-disturbing split.
        let mut best: Option<(u8, UBig, usize)> = None;
        for (idx, e) in self.entries.iter().enumerate() {
            let len = e.interval.length();
            let (tier, donated) = if e.holders.is_empty() {
                (2u8, len)
            } else if len > UBig::one() {
                (1u8, len.div_rem_u64(2).0)
            } else {
                continue; // held and unsplittable: leave it to its holder
            };
            let better = match &best {
                None => true,
                Some((b_tier, b_len, _)) => match tier.cmp(b_tier) {
                    Ordering::Greater => true,
                    Ordering::Equal => donated > *b_len,
                    Ordering::Less => false,
                },
            };
            if better {
                best = Some((tier, donated, idx));
            }
        }
        let (tier, donated, idx) = best?;
        Some(self.donate(tier, donated, idx))
    }

    /// Performs the donation a steal scan chose: tier 1 splits the
    /// entry (holders keep the front, the back half leaves), tier 2
    /// removes the whole unassigned entry. Shared by
    /// [`Coordinator::steal_largest`] and
    /// [`Coordinator::steal_ordered`], which differ only in *which*
    /// candidate they pick.
    fn donate(&mut self, tier: u8, donated: UBig, idx: usize) -> Interval {
        let stolen = if tier == 1 {
            // Split: holders keep the front, the back half is donated.
            let cut = self.entries[idx].interval.end().saturating_sub(&donated);
            let (keep, give) = self.entries[idx].interval.split_at(&cut);
            debug_assert!(!keep.is_empty() && !give.is_empty());
            self.remaining = self.remaining.saturating_sub(&donated);
            if let Some(journal) = self.journal.as_mut() {
                journal.push(WalOp::Replace {
                    old: self.entries[idx].interval.clone(),
                    new: keep.clone(),
                });
            }
            self.with_entry(idx, |e| e.interval = keep);
            give
        } else {
            let interval = self.entries[idx].interval.clone();
            self.remove_entry(idx);
            interval
        };
        self.stats.steals_donated += 1;
        stolen
    }

    /// The candidate [`Coordinator::steal_ordered`] would donate:
    /// tier-major like [`Coordinator::steal_largest`] (a whole
    /// unassigned entry always beats a holder-disturbing split), then
    /// largest donated length, then — the replicable refinement —
    /// **lowest left endpoint**. Unlike the plain largest-first scan,
    /// every comparison is a total order on the entry's value, never on
    /// its position in the contention-dependent `entries` vector, so
    /// two runs whose coordinators hold the same interval sets always
    /// donate the same interval.
    fn ordered_steal_candidate(&self) -> Option<(u8, UBig, usize)> {
        let mut best: Option<(u8, UBig, usize)> = None;
        for (idx, e) in self.entries.iter().enumerate() {
            let len = e.interval.length();
            let (tier, donated) = if e.holders.is_empty() {
                (2u8, len)
            } else if len > UBig::one() {
                (1u8, len.div_rem_u64(2).0)
            } else {
                continue; // held and unsplittable: leave it to its holder
            };
            let better = match &best {
                None => true,
                Some((b_tier, b_len, b_idx)) => match tier.cmp(b_tier) {
                    Ordering::Greater => true,
                    Ordering::Less => false,
                    Ordering::Equal => match donated.cmp(b_len) {
                        Ordering::Greater => true,
                        Ordering::Less => false,
                        Ordering::Equal => {
                            e.interval.begin() < self.entries[*b_idx].interval.begin()
                        }
                    },
                },
            };
            if better {
                best = Some((tier, donated, idx));
            }
        }
        best
    }

    /// The left endpoint of the interval [`Coordinator::steal_ordered`]
    /// would donate right now, or `None` when nothing is donatable —
    /// the router's replicable victim scan picks the shard whose
    /// preview is **lowest** (lowest-left-endpoint-first), replacing
    /// the load-dependent most-loaded-victim rule.
    pub fn steal_preview(&self) -> Option<UBig> {
        let (tier, donated, idx) = self.ordered_steal_candidate()?;
        let begin = if tier == 1 {
            // The donated piece is the back half: it starts at the cut.
            self.entries[idx].interval.end().saturating_sub(&donated)
        } else {
            self.entries[idx].interval.begin().clone()
        };
        Some(begin)
    }

    /// Deterministic variant of [`Coordinator::steal_largest`]: donates
    /// the [`Coordinator::ordered_steal_candidate`], whose selection is
    /// a pure function of the held interval sets (tier, then length,
    /// then lowest left endpoint) instead of entry-vector position.
    /// Tier semantics, journaling and counters are identical to the
    /// default rule.
    pub fn steal_ordered(&mut self) -> Option<Interval> {
        let (tier, donated, idx) = self.ordered_steal_candidate()?;
        Some(self.donate(tier, donated, idx))
    }

    /// Adopts a stolen interval as a new unassigned entry — the
    /// receiving side of [`Coordinator::steal_largest`]. The interval
    /// must lie within this coordinator's root range and be disjoint
    /// from every current entry (guaranteed when it came from a peer
    /// shard administering the same root). Empty intervals are ignored.
    pub fn adopt(&mut self, interval: Interval) {
        self.adopt_inner(interval, true);
    }

    /// [`Coordinator::adopt`] minus the journaled `Insert` — the landing
    /// half of a cross-shard steal. The router has already appended the
    /// `Insert` to this shard's log segment *before* the victim's
    /// `Remove`/`Replace` could be logged (the loss-proof steal
    /// ordering), so journaling it again here would duplicate the record.
    pub fn adopt_prelogged(&mut self, interval: Interval) {
        self.adopt_inner(interval, false);
    }

    fn adopt_inner(&mut self, interval: Interval, journal: bool) {
        if interval.is_empty() {
            return;
        }
        debug_assert!(
            self.root.contains_interval(&interval),
            "adopted interval escapes the root range"
        );
        if journal {
            if let Some(journal) = self.journal.as_mut() {
                journal.push(WalOp::Insert(interval.clone()));
            }
        }
        self.remaining += &interval.length();
        self.entries.push(IntervalEntry {
            interval,
            holders: Vec::new(),
        });
        self.index_insert(self.entries.len() - 1);
        self.stats.steals_adopted += 1;
    }

    /// Merges an externally found solution (cross-shard solution
    /// sharing): adopts it iff it strictly improves the current cutoff.
    /// Unlike [`Request::ReportSolution`] this is not a protocol contact,
    /// so no counter moves. Returns whether the solution was adopted.
    pub fn merge_solution(&mut self, solution: &Solution) -> bool {
        let improves = match self.cutoff() {
            Some(c) => solution.cost < c,
            None => true,
        };
        if improves {
            if let Some(journal) = self.journal.as_mut() {
                journal.push(WalOp::Solution(solution.clone()));
            }
            self.solution = Some(solution.clone());
        }
        improves
    }

    // ------------------------------------------------------------------
    // Fault tolerance (§4.1)
    // ------------------------------------------------------------------

    /// Intersection update (equation 14): the worker's live `[A, B)`
    /// meets the coordinator copy `[A', B')`; both sides adopt
    /// `[max(A,A'), min(B,B'))`. O(log n) via the holder map.
    fn update(&mut self, worker: WorkerId, reported: Interval, now_ns: u64) -> Response {
        self.stats.updates += 1;
        let cutoff = self.cutoff();
        let Some(&idx) = self.holder_of.get(&worker) else {
            // Stale worker (expired or restored coordinator): its unit is
            // no longer tracked — the empty ack sends it back for work.
            return Response::UpdateAck {
                interval: Interval::empty(),
                cutoff,
            };
        };
        // Refresh the heartbeat.
        let entry = &mut self.entries[idx];
        let h = entry
            .holders
            .iter_mut()
            .find(|h| h.worker == worker)
            .expect("holder map pointed at an entry without the holder");
        self.heartbeats.remove(&(h.last_contact_ns, worker));
        h.last_contact_ns = now_ns;
        self.heartbeats.insert((now_ns, worker));

        let met = entry.interval.intersect(&reported);
        if met.is_empty() {
            // Paper §4.3: "any empty interval of INTERVALS is
            // automatically removed" — and with it, its holders.
            self.remove_entry(idx);
            return Response::UpdateAck {
                interval: Interval::empty(),
                cutoff,
            };
        }
        if met == entry.interval {
            // Heartbeat-only update (no progress, nothing stolen): the
            // key and the running size are unchanged — skip the
            // re-index and the size arithmetic entirely.
            return Response::UpdateAck {
                interval: met,
                cutoff,
            };
        }
        let old_len = entry.interval.length();
        let journaled_old = self.journal.is_some().then(|| entry.interval.clone());
        self.remaining += &met.length();
        self.remaining = self.remaining.saturating_sub(&old_len);
        let result = met.clone();
        self.with_entry(idx, |e| e.interval = met);
        if let Some(old) = journaled_old {
            self.journal.as_mut().unwrap().push(WalOp::Replace {
                old,
                new: result.clone(),
            });
        }
        Response::UpdateAck {
            interval: result,
            cutoff,
        }
    }

    // ------------------------------------------------------------------
    // Solution sharing (§4.4)
    // ------------------------------------------------------------------

    fn report_solution(&mut self, solution: Solution) -> Response {
        self.stats.solution_reports += 1;
        let improves = match self.cutoff() {
            Some(c) => solution.cost < c,
            None => true,
        };
        if improves {
            if let Some(journal) = self.journal.as_mut() {
                journal.push(WalOp::Solution(solution.clone()));
            }
            self.solution = Some(solution);
            self.stats.improvements += 1;
        }
        Response::SolutionAck {
            cutoff: self.cutoff(),
        }
    }
}
