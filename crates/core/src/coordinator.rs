//! The coordinator (farmer) state machine: `INTERVALS`, `SOLUTION`, and
//! the selection / partitioning / intersection operators of §4.

use crate::{Request, Response, WorkerId};
use gridbnb_coding::{Interval, IntervalSet, UBig};
use gridbnb_engine::Solution;

/// Coordinator tuning knobs.
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// Intervals shorter than this are **duplicated** instead of split
    /// (paper §4.2): the requester gets a full copy and both processes
    /// race, at the price of redundant exploration. Must be ≥ 1.
    pub duplication_threshold: UBig,
    /// Holders that have not contacted the coordinator for this long
    /// (nanoseconds of the injected clock) may be expired by
    /// [`Coordinator::expire_stale_holders`], making their interval
    /// reassignable in full — the recovery path for crashed workers.
    pub holder_timeout_ns: u64,
    /// Initial upper bound (e.g. from iterated greedy — the paper used
    /// 3681 then 3680). Solutions must *strictly* improve it.
    pub initial_upper_bound: Option<u64>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            duplication_threshold: UBig::from(64u64),
            holder_timeout_ns: 60_000_000_000, // 60 s
            initial_upper_bound: None,
        }
    }
}

/// One member of `INTERVALS`: the coordinator-side copy of a work unit.
#[derive(Clone, Debug)]
pub struct IntervalEntry {
    /// The copy `[A', B')`.
    pub interval: Interval,
    /// Holders currently exploring (a duplicated interval has several;
    /// an unassigned interval — after a restore or an expiry — has none
    /// and behaves as held by the paper's *virtual process of null
    /// power*).
    pub holders: Vec<Holder>,
}

/// One holder of an interval copy.
#[derive(Clone, Debug)]
pub struct Holder {
    /// The worker exploring the interval.
    pub worker: WorkerId,
    /// Its relative power (proportional partitioning weight).
    pub power: u64,
    /// Injected-clock timestamp of its last contact.
    pub last_contact_ns: u64,
}

/// Protocol and bookkeeping counters (feeds the Table 2 reproduction).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoordinatorStats {
    /// Work units handed out (paper: "work allocations", 129 958).
    pub work_allocations: u64,
    /// Interval splits performed.
    pub partitions: u64,
    /// Interval duplications performed (redundancy source).
    pub duplications: u64,
    /// Whole-interval assignments (unassigned → requester).
    pub full_assignments: u64,
    /// Update (checkpoint) requests processed.
    pub updates: u64,
    /// Solution reports received.
    pub solution_reports: u64,
    /// Solution reports that improved `SOLUTION`.
    pub improvements: u64,
    /// Terminate responses issued.
    pub terminations_sent: u64,
    /// Holders expired as presumed dead.
    pub holders_expired: u64,
}

/// The farmer-side state machine (transport-agnostic; both the thread
/// runtime and the grid simulator drive it).
///
/// Invariants maintained (checked by [`Coordinator::check_invariants`]):
///
/// * entries are non-empty intervals within the root range;
/// * entries are pairwise disjoint (duplication shares *one* entry among
///   several holders rather than duplicating the entry — the paper:
///   "the coordinator keeps only one copy of a duplicated interval");
/// * the union of entries covers exactly the not-yet-explored numbers
///   (work conservation: nothing is lost, only redundantly re-explored).
#[derive(Clone, Debug)]
pub struct Coordinator {
    root: Interval,
    entries: Vec<IntervalEntry>,
    solution: Option<Solution>,
    config: CoordinatorConfig,
    stats: CoordinatorStats,
}

impl Coordinator {
    /// A coordinator for the whole tree: `INTERVALS` starts as the root
    /// range (paper §4.3).
    pub fn new(root: Interval, config: CoordinatorConfig) -> Self {
        assert!(
            config.duplication_threshold >= UBig::one(),
            "duplication threshold must be ≥ 1"
        );
        let entries = if root.is_empty() {
            Vec::new()
        } else {
            vec![IntervalEntry {
                interval: root.clone(),
                holders: Vec::new(),
            }]
        };
        Coordinator {
            root,
            entries,
            solution: None,
            config,
            stats: CoordinatorStats::default(),
        }
    }

    /// Rebuilds a coordinator from checkpointed state (all intervals
    /// restored unassigned; workers will re-request work).
    pub fn restore(
        root: Interval,
        intervals: Vec<Interval>,
        solution: Option<Solution>,
        config: CoordinatorConfig,
    ) -> Self {
        let entries = intervals
            .into_iter()
            .filter(|i| !i.is_empty())
            .map(|interval| IntervalEntry {
                interval,
                holders: Vec::new(),
            })
            .collect();
        Coordinator {
            root,
            entries,
            solution,
            config,
            stats: CoordinatorStats::default(),
        }
    }

    /// Handles one worker request at injected time `now_ns`.
    pub fn handle(&mut self, request: Request, now_ns: u64) -> Response {
        match request {
            Request::Join { worker, power } => {
                // A (re-)joining worker must NOT complete anything: a
                // crashed-and-restarted process may reuse an id whose old
                // interval is still unexplored. Detach the id, keep the
                // intervals.
                self.remove_holder_everywhere(worker);
                self.assign(worker, power.max(1), now_ns)
            }
            Request::RequestWork { worker, power } => {
                // RequestWork is only sent on genuine exhaustion: the
                // worker's live interval is empty, and the coordinator
                // copy is always a subset of the live interval, so the
                // copy is fully explored — drop it.
                self.complete_units_of(worker);
                self.assign(worker, power.max(1), now_ns)
            }
            Request::Update { worker, interval } => self.update(worker, interval, now_ns),
            Request::ReportSolution { worker: _, solution } => self.report_solution(solution),
            Request::Leave { worker } => {
                self.remove_holder_everywhere(worker);
                Response::LeaveAck
            }
        }
    }

    /// `true` iff `INTERVALS` is empty: implicit termination (§4.3).
    pub fn is_terminated(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of intervals (the paper's *cardinality* of `INTERVALS`,
    /// roughly the number of live B&B processes during a run).
    pub fn cardinality(&self) -> usize {
        self.entries.len()
    }

    /// Sum of interval lengths (the paper's *size* of `INTERVALS`: the
    /// count of not-yet-explored solutions). Strictly decreasing over a
    /// run.
    pub fn size(&self) -> UBig {
        let mut total = UBig::zero();
        for e in &self.entries {
            total += &e.interval.length();
        }
        total
    }

    /// Current best cost: the minimum of the initial upper bound and any
    /// reported solution (what workers must strictly beat).
    pub fn cutoff(&self) -> Option<u64> {
        match (&self.solution, self.config.initial_upper_bound) {
            (Some(s), Some(ub)) => Some(s.cost.min(ub)),
            (Some(s), None) => Some(s.cost),
            (None, ub) => ub,
        }
    }

    /// The global best solution (`SOLUTION`).
    pub fn solution(&self) -> Option<&Solution> {
        self.solution.as_ref()
    }

    /// Protocol counters.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// The current entries (for checkpointing and inspection).
    pub fn entries(&self) -> &[IntervalEntry] {
        &self.entries
    }

    /// The root range this coordinator administers.
    pub fn root(&self) -> &Interval {
        &self.root
    }

    /// Expires holders not heard from since `now_ns −
    /// holder_timeout_ns`; their intervals become unassigned and are
    /// handed out *in full* at the next work request — the paper's
    /// recovery of a failed worker's last interval copy. Returns the
    /// number of holders expired.
    pub fn expire_stale_holders(&mut self, now_ns: u64) -> u64 {
        let timeout = self.config.holder_timeout_ns;
        let mut expired = 0;
        for entry in &mut self.entries {
            entry.holders.retain(|h| {
                let stale = now_ns.saturating_sub(h.last_contact_ns) > timeout;
                if stale {
                    expired += 1;
                }
                !stale
            });
        }
        self.stats.holders_expired += expired;
        expired
    }

    /// Verifies the structural invariants; returns a description of the
    /// first violation. Used by tests after arbitrary request sequences.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut set = IntervalSet::new();
        for (i, e) in self.entries.iter().enumerate() {
            if e.interval.is_empty() {
                return Err(format!("entry {i} is empty: {}", e.interval));
            }
            if !self.root.contains_interval(&e.interval) {
                return Err(format!("entry {i} escapes the root range"));
            }
            for other in &self.entries[i + 1..] {
                if e.interval.overlaps(&other.interval) {
                    return Err(format!(
                        "entries overlap: {} and {}",
                        e.interval, other.interval
                    ));
                }
            }
            set.insert(e.interval.clone());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Load balancing (§4.2)
    // ------------------------------------------------------------------

    /// Assigns a work unit via the selection + partitioning operators.
    fn assign(&mut self, worker: WorkerId, power: u64, now_ns: u64) -> Response {
        if self.entries.is_empty() {
            self.stats.terminations_sent += 1;
            return Response::Terminate;
        }

        // Selection operator: not the longest interval, but the one that
        // yields the longest assigned part [C, B) for this requester.
        let mut best: Option<(usize, UBig)> = None;
        for (idx, entry) in self.entries.iter().enumerate() {
            let produced = self.candidate_steal_length(entry, power);
            match &best {
                Some((_, len)) if *len >= produced => {}
                _ => best = Some((idx, produced)),
            }
        }
        let (idx, _) = best.expect("non-empty INTERVALS");
        let response = self.partition(idx, worker, power, now_ns);
        self.stats.work_allocations += 1;
        response
    }

    /// Length of `[C, B)` the requester would get from this entry.
    fn candidate_steal_length(&self, entry: &IntervalEntry, power: u64) -> UBig {
        let len = entry.interval.length();
        if entry.holders.is_empty() {
            // Virtual process of null power: C = A, whole interval.
            return len;
        }
        if len < self.config.duplication_threshold {
            // Duplication hands over a full copy.
            return len;
        }
        let holder_power: u64 = entry.holders.iter().map(|h| h.power.max(1)).sum();
        let steal = len.mul_div_floor(power, holder_power.saturating_add(power).max(1));
        if steal.is_zero() {
            len // would degenerate to duplication
        } else {
            steal
        }
    }

    /// Partitioning operator on entry `idx` for `worker` of `power`.
    fn partition(&mut self, idx: usize, worker: WorkerId, power: u64, now_ns: u64) -> Response {
        let cutoff = self.cutoff();
        let holder = Holder {
            worker,
            power,
            last_contact_ns: now_ns,
        };
        let entry = &mut self.entries[idx];
        let len = entry.interval.length();

        if entry.holders.is_empty() {
            // Unassigned (virtual null-power holder): C = A, assign all.
            entry.holders.push(holder);
            self.stats.full_assignments += 1;
            return Response::Work {
                interval: entry.interval.clone(),
                cutoff,
            };
        }

        if len < self.config.duplication_threshold {
            return self.duplicate(idx, holder, cutoff);
        }

        let holder_power: u64 = entry.holders.iter().map(|h| h.power.max(1)).sum();
        let steal = len.mul_div_floor(power, holder_power.saturating_add(power).max(1));
        if steal.is_zero() {
            return self.duplicate(idx, holder, cutoff);
        }
        // C = B − steal ; holder keeps [A, C), requester gets [C, B).
        let cut = entry.interval.end().saturating_sub(&steal);
        let (keep, give) = entry.interval.split_at(&cut);
        debug_assert!(!keep.is_empty() && !give.is_empty());
        entry.interval = keep;
        self.entries.push(IntervalEntry {
            interval: give.clone(),
            holders: vec![holder],
        });
        self.stats.partitions += 1;
        Response::Work {
            interval: give,
            cutoff,
        }
    }

    /// Duplication: the requester becomes an additional holder of the
    /// *same* entry and receives a full copy of it.
    fn duplicate(&mut self, idx: usize, holder: Holder, cutoff: Option<u64>) -> Response {
        let entry = &mut self.entries[idx];
        entry.holders.push(holder);
        self.stats.duplications += 1;
        Response::Work {
            interval: entry.interval.clone(),
            cutoff,
        }
    }

    /// Drops every entry (co-)held by `worker` — called when that worker
    /// reports completion of its unit. Co-holders of a duplicated entry
    /// lose it too: the numbers are explored, their next update returns
    /// an empty intersection and they will request new work.
    fn complete_units_of(&mut self, worker: WorkerId) {
        self.entries
            .retain(|e| !e.holders.iter().any(|h| h.worker == worker));
    }

    /// Removes `worker` from all holder lists without touching the
    /// intervals (graceful leave: the work remains to be done).
    fn remove_holder_everywhere(&mut self, worker: WorkerId) {
        for entry in &mut self.entries {
            entry.holders.retain(|h| h.worker != worker);
        }
    }

    // ------------------------------------------------------------------
    // Fault tolerance (§4.1)
    // ------------------------------------------------------------------

    /// Intersection update (equation 14): the worker's live `[A, B)`
    /// meets the coordinator copy `[A', B')`; both sides adopt
    /// `[max(A,A'), min(B,B'))`.
    fn update(&mut self, worker: WorkerId, reported: Interval, now_ns: u64) -> Response {
        self.stats.updates += 1;
        let cutoff = self.cutoff();
        let mut result = Interval::empty();
        let mut found = false;
        for entry in &mut self.entries {
            if let Some(h) = entry.holders.iter_mut().find(|h| h.worker == worker) {
                h.last_contact_ns = now_ns;
                let met = entry.interval.intersect(&reported);
                entry.interval = met.clone();
                result = met;
                found = true;
                break;
            }
        }
        if !found {
            // Stale worker (expired or restored coordinator): its unit is
            // no longer tracked — the empty ack sends it back for work.
            return Response::UpdateAck {
                interval: Interval::empty(),
                cutoff,
            };
        }
        // Drop entries emptied by the intersection (paper §4.3: "any
        // empty interval of INTERVALS is automatically removed").
        self.entries.retain(|e| !e.interval.is_empty());
        Response::UpdateAck {
            interval: result,
            cutoff,
        }
    }

    // ------------------------------------------------------------------
    // Solution sharing (§4.4)
    // ------------------------------------------------------------------

    fn report_solution(&mut self, solution: Solution) -> Response {
        self.stats.solution_reports += 1;
        let improves = match self.cutoff() {
            Some(c) => solution.cost < c,
            None => true,
        };
        if improves {
            self.solution = Some(solution);
            self.stats.improvements += 1;
        }
        Response::SolutionAck {
            cutoff: self.cutoff(),
        }
    }
}
