//! Replayable run-traces for the replicable search mode.
//!
//! A [`RunTrace`] records the scheduling history of a sharded run as a
//! flat ordered event stream: every interval-state delta (splits,
//! shrinks, removals, solution adoptions — the same [`WalOp`] deltas the
//! durable log journals), every work handout, every cross-shard steal
//! and every cutoff broadcast. Two goals drive the design:
//!
//! * **Equivalence proofs.** Two replicable runs with the same seed must
//!   produce byte-identical traces; [`diff_traces`] pinpoints the first
//!   divergent event when they do not. A [`TraceReplayer`] re-applies a
//!   recorded trace onto shadow per-shard interval multisets, checking
//!   state consistency at *every* event (a `Remove` must find its
//!   interval, a handout must name a live entry, a cutoff must match the
//!   replayed solution), and finally compares the reconstruction against
//!   a router snapshot.
//! * **Cheap enough to leave on.** An event is a few machine words plus
//!   its intervals; recording is one mutex push gated by the
//!   `gbnb_trace_events_total` counter. Text encoding (the
//!   checkpoint/WAL decimal interval codec with a per-line CRC-32 and a
//!   counted `end` footer) happens only on [`RunTrace::encode`].
//!
//! The text format, one event per line, CRC first:
//!
//! ```text
//! gridbnb-trace v1
//! <crc32> meta <seed> <workers> <shards>
//! <crc32> op <shard> ins <begin> <end>
//! <crc32> hand <worker> <shard> <begin> <end>
//! <crc32> steal <victim> <dest> <begin> <end>
//! <crc32> cut <shard> <cost>
//! <crc32> end <events>
//! ```
//!
//! Every line after the magic carries the CRC-32 of its body, so a
//! single corrupted byte anywhere — magic, meta, an event, the footer,
//! even a newline — is refused loudly ([`TraceError::Corrupt`]), never
//! silently replayed; the counted footer catches truncation.

use crate::checkpoint::{decode_interval_line, encode_interval_line};
use crate::storage::StorageBackend;
use crate::wal::{crc32, WalOp};
use gridbnb_coding::Interval;
use gridbnb_engine::Solution;
use gridbnb_metrics::{Counter, MetricsRegistry};
use std::fmt;
use std::sync::Mutex;

/// Magic first line of the text encoding.
const TRACE_MAGIC: &str = "gridbnb-trace v1";

/// Run identity recorded in the trace header: replaying or diffing
/// traces from different configurations is a usage error worth catching
/// before the first event comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// The replicable policy's seed.
    pub seed: u64,
    /// Worker count of the run.
    pub workers: u64,
    /// Shard count of the run.
    pub shards: u64,
}

/// One recorded scheduling event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An interval-state delta on one shard — the coordinator's
    /// journaled [`WalOp`] stream verbatim (splits, shrinks, removals,
    /// solution adoptions), in state order.
    Op {
        /// The shard whose state changed.
        shard: u32,
        /// The delta, same codec as the WAL.
        op: WalOp,
    },
    /// A work unit handed to a worker. Recorded *after* the ops of the
    /// contact that produced it, so at replay time the handed interval
    /// names an existing entry of the shard.
    Handout {
        /// The receiving worker's id.
        worker: u64,
        /// The serving (home) shard.
        shard: u32,
        /// The assigned interval, exactly as responded.
        interval: Interval,
    },
    /// A cross-shard steal: `interval` left `victim` (its `Remove` /
    /// `Replace` precedes this event as [`TraceEvent::Op`]s) and is
    /// adopted by `dest`.
    Steal {
        /// The shard the interval was taken from.
        victim: u32,
        /// The drained shard adopting it.
        dest: u32,
        /// The stolen interval.
        interval: Interval,
    },
    /// A cutoff broadcast: `shard` adopted an externally reported
    /// solution of cost `cost` (the matching [`WalOp::Solution`]
    /// precedes this event).
    Cutoff {
        /// The shard whose cutoff tightened.
        shard: u32,
        /// The broadcast solution's cost.
        cost: u64,
    },
}

impl TraceEvent {
    /// Encodes the event as one line body (no CRC, no newline).
    pub fn encode(&self) -> String {
        match self {
            TraceEvent::Op { shard, op } => format!("op {shard} {}", op.encode()),
            TraceEvent::Handout {
                worker,
                shard,
                interval,
            } => format!("hand {worker} {shard} {}", encode_interval_line(interval)),
            TraceEvent::Steal {
                victim,
                dest,
                interval,
            } => format!("steal {victim} {dest} {}", encode_interval_line(interval)),
            TraceEvent::Cutoff { shard, cost } => format!("cut {shard} {cost}"),
        }
    }

    /// Decodes one line body (the inverse of [`TraceEvent::encode`]).
    pub fn decode(body: &str) -> Result<TraceEvent, String> {
        let interval_of = |a: &str, b: &str| -> Result<Interval, String> {
            decode_interval_line(&format!("{a} {b}")).map_err(|e| e.to_string())
        };
        let parse_u32 = |s: &str, what: &str| -> Result<u32, String> {
            s.parse::<u32>().map_err(|e| format!("bad {what}: {e}"))
        };
        let fields: Vec<&str> = body.split_whitespace().collect();
        match fields.as_slice() {
            ["op", shard, rest @ ..] => {
                let shard = parse_u32(shard, "shard")?;
                let op = WalOp::decode(&rest.join(" "))?;
                Ok(TraceEvent::Op { shard, op })
            }
            ["hand", worker, shard, a, b] => Ok(TraceEvent::Handout {
                worker: worker
                    .parse::<u64>()
                    .map_err(|e| format!("bad worker: {e}"))?,
                shard: parse_u32(shard, "shard")?,
                interval: interval_of(a, b)?,
            }),
            ["steal", victim, dest, a, b] => Ok(TraceEvent::Steal {
                victim: parse_u32(victim, "victim")?,
                dest: parse_u32(dest, "dest")?,
                interval: interval_of(a, b)?,
            }),
            ["cut", shard, cost] => Ok(TraceEvent::Cutoff {
                shard: parse_u32(shard, "shard")?,
                cost: cost.parse::<u64>().map_err(|e| format!("bad cost: {e}"))?,
            }),
            _ => Err(format!("unrecognized trace event: {body:?}")),
        }
    }
}

/// What can go wrong loading, decoding or replaying a trace.
#[derive(Debug)]
pub enum TraceError {
    /// The storage backend failed.
    Io(std::io::Error),
    /// A line failed its CRC, failed to parse, or the magic/footer is
    /// wrong — the trace is refused whole, never partially replayed.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// Replay found an event inconsistent with the reconstructed state
    /// (e.g. a `Remove` of an interval no replayed shard holds).
    Replay {
        /// 0-based index of the inconsistent event.
        at: usize,
        /// The inconsistency.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace storage failed: {e}"),
            TraceError::Corrupt { line, reason } => {
                write!(f, "corrupt trace at line {line}: {reason}")
            }
            TraceError::Replay { at, reason } => {
                write!(f, "trace replay diverged at event {at}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// An append-only recorder of [`TraceEvent`]s, shared across the
/// threads of a run behind an `Arc`. Recording is one mutex push;
/// `gbnb_trace_events_total` counts events as they land and
/// `gbnb_trace_bytes_total` counts encoded bytes when the trace is
/// serialized, so a scrape shows both the live event rate and the
/// serialization cost actually paid.
#[derive(Debug)]
pub struct RunTrace {
    meta: TraceMeta,
    events: Mutex<Vec<TraceEvent>>,
    events_total: Counter,
    bytes_total: Counter,
}

impl RunTrace {
    /// An empty trace for a run with this identity, its `gbnb_trace_*`
    /// instruments registered on `registry`.
    pub fn new(meta: TraceMeta, registry: &MetricsRegistry) -> Self {
        RunTrace {
            meta,
            events: Mutex::new(Vec::new()),
            events_total: registry.counter("gbnb_trace_events_total", &[]),
            bytes_total: registry.counter("gbnb_trace_bytes_total", &[]),
        }
    }

    /// The run identity recorded in the header.
    pub fn meta(&self) -> TraceMeta {
        self.meta
    }

    /// Records one shard's drained journal deltas, in state order.
    pub fn record_ops(&self, shard: usize, ops: &[WalOp]) {
        if ops.is_empty() {
            return;
        }
        let mut events = self.events.lock().expect("poisoned trace");
        for op in ops {
            events.push(TraceEvent::Op {
                shard: shard as u32,
                op: op.clone(),
            });
        }
        self.events_total.add(ops.len() as u64);
    }

    /// Records a work handout.
    pub fn record_handout(&self, worker: u64, shard: usize, interval: &Interval) {
        self.push(TraceEvent::Handout {
            worker,
            shard: shard as u32,
            interval: interval.clone(),
        });
    }

    /// Records a cross-shard steal.
    pub fn record_steal(&self, victim: usize, dest: usize, interval: &Interval) {
        self.push(TraceEvent::Steal {
            victim: victim as u32,
            dest: dest as u32,
            interval: interval.clone(),
        });
    }

    /// Records a cutoff broadcast adoption.
    pub fn record_cutoff(&self, shard: usize, cost: u64) {
        self.push(TraceEvent::Cutoff {
            shard: shard as u32,
            cost,
        });
    }

    fn push(&self, event: TraceEvent) {
        self.events.lock().expect("poisoned trace").push(event);
        self.events_total.inc();
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("poisoned trace").len()
    }

    /// `true` when nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of recorded [`TraceEvent::Steal`] events — must always
    /// equal [`crate::ShardRouter::steals`] on the recording router
    /// (pinned by a test).
    pub fn steal_count(&self) -> u64 {
        self.events
            .lock()
            .expect("poisoned trace")
            .iter()
            .filter(|e| matches!(e, TraceEvent::Steal { .. }))
            .count() as u64
    }

    /// A snapshot of the recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("poisoned trace").clone()
    }

    /// Serializes the whole trace (see the module doc for the format).
    pub fn encode(&self) -> String {
        let events = self.events.lock().expect("poisoned trace");
        let mut out = String::new();
        out.push_str(TRACE_MAGIC);
        out.push('\n');
        let line = |body: String, out: &mut String| {
            out.push_str(&format!("{:08x} {body}\n", crc32(body.as_bytes())));
        };
        line(
            format!(
                "meta {} {} {}",
                self.meta.seed, self.meta.workers, self.meta.shards
            ),
            &mut out,
        );
        for event in events.iter() {
            line(event.encode(), &mut out);
        }
        line(format!("end {}", events.len()), &mut out);
        self.bytes_total.add(out.len() as u64);
        out
    }

    /// Decodes a serialized trace, verifying the magic, every line's
    /// CRC, and the counted footer. Any mismatch — including invalid
    /// UTF-8 from a flipped byte — is [`TraceError::Corrupt`].
    pub fn decode(bytes: &[u8]) -> Result<RunTrace, TraceError> {
        let text = std::str::from_utf8(bytes).map_err(|e| TraceError::Corrupt {
            line: 0,
            reason: format!("not UTF-8: {e}"),
        })?;
        let mut lines = text.split('\n').enumerate();
        let (_, magic) = lines.next().ok_or(TraceError::Corrupt {
            line: 1,
            reason: "empty trace".into(),
        })?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::Corrupt {
                line: 1,
                reason: format!("bad magic {magic:?}"),
            });
        }
        let mut meta: Option<TraceMeta> = None;
        let mut events = Vec::new();
        let mut footer: Option<u64> = None;
        for (i, raw) in lines {
            let lineno = i + 1;
            if raw.is_empty() {
                // Only the single trailing newline may leave an empty
                // tail segment; anything after the footer is corruption.
                continue;
            }
            if footer.is_some() {
                return Err(TraceError::Corrupt {
                    line: lineno,
                    reason: "data after the end footer".into(),
                });
            }
            let corrupt = |reason: String| TraceError::Corrupt {
                line: lineno,
                reason,
            };
            let (crc_hex, body) = raw
                .split_once(' ')
                .ok_or_else(|| corrupt("missing CRC field".into()))?;
            let expected =
                u32::from_str_radix(crc_hex, 16).map_err(|e| corrupt(format!("bad CRC: {e}")))?;
            if crc_hex.len() != 8 || crc32(body.as_bytes()) != expected {
                return Err(corrupt("CRC mismatch".into()));
            }
            let fields: Vec<&str> = body.split_whitespace().collect();
            match fields.as_slice() {
                ["meta", seed, workers, shards] if meta.is_none() => {
                    let parse = |s: &str| {
                        s.parse::<u64>()
                            .map_err(|e| corrupt(format!("bad meta field: {e}")))
                    };
                    meta = Some(TraceMeta {
                        seed: parse(seed)?,
                        workers: parse(workers)?,
                        shards: parse(shards)?,
                    });
                }
                ["end", count] => {
                    footer = Some(
                        count
                            .parse::<u64>()
                            .map_err(|e| corrupt(format!("bad footer count: {e}")))?,
                    );
                }
                _ if meta.is_some() => {
                    events.push(TraceEvent::decode(body).map_err(corrupt)?);
                }
                _ => return Err(corrupt("event before the meta line".into())),
            }
        }
        let meta = meta.ok_or(TraceError::Corrupt {
            line: 2,
            reason: "missing meta line".into(),
        })?;
        match footer {
            Some(count) if count == events.len() as u64 => {}
            Some(count) => {
                return Err(TraceError::Corrupt {
                    line: 0,
                    reason: format!("footer counts {count} events, found {}", events.len()),
                })
            }
            None => {
                return Err(TraceError::Corrupt {
                    line: 0,
                    reason: "truncated: no end footer".into(),
                })
            }
        }
        let trace = RunTrace::new(meta, &MetricsRegistry::new());
        trace.events_total.add(events.len() as u64);
        *trace.events.lock().expect("poisoned trace") = events;
        Ok(trace)
    }

    /// Writes the serialized trace to `backend` under `name`
    /// (atomically, via the backend's `put`).
    pub fn save(&self, backend: &dyn StorageBackend, name: &str) -> Result<(), TraceError> {
        backend.put(name, self.encode().as_bytes())?;
        Ok(())
    }

    /// Loads and decodes a trace previously [`RunTrace::save`]d.
    pub fn load(backend: &dyn StorageBackend, name: &str) -> Result<RunTrace, TraceError> {
        let bytes = backend.get(name)?.ok_or_else(|| {
            TraceError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no trace blob {name:?}"),
            ))
        })?;
        RunTrace::decode(&bytes)
    }
}

/// The first point where two traces disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDivergence {
    /// 0-based index of the first differing event.
    pub index: usize,
    /// The left trace's event there (`None` = left ended early).
    pub left: Option<TraceEvent>,
    /// The right trace's event there (`None` = right ended early).
    pub right: Option<TraceEvent>,
}

impl fmt::Display for TraceDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |e: &Option<TraceEvent>| match e {
            Some(e) => e.encode(),
            None => "<end of trace>".into(),
        };
        write!(
            f,
            "event {}: {} != {}",
            self.index,
            show(&self.left),
            show(&self.right)
        )
    }
}

/// Compares two event streams; `None` means they are identical.
pub fn diff_traces(left: &[TraceEvent], right: &[TraceEvent]) -> Option<TraceDivergence> {
    let n = left.len().max(right.len());
    for i in 0..n {
        let l = left.get(i);
        let r = right.get(i);
        if l != r {
            return Some(TraceDivergence {
                index: i,
                left: l.cloned(),
                right: r.cloned(),
            });
        }
    }
    None
}

/// Re-applies a recorded trace onto shadow per-shard interval
/// multisets, checking consistency at every event; after the last
/// event, [`TraceReplayer::verify_snapshot`] compares the
/// reconstruction against a live router's
/// [`crate::ShardRouter::snapshot`].
#[derive(Clone, Debug)]
pub struct TraceReplayer {
    shards: Vec<Vec<Interval>>,
    cutoffs: Vec<Option<u64>>,
    solutions: Vec<Option<Solution>>,
    applied: usize,
}

impl TraceReplayer {
    /// A replayer seeded with the same initial per-shard partition a
    /// fresh router over `root` would start from.
    pub fn new(root: &Interval, shards: usize) -> Self {
        TraceReplayer::from_intervals(crate::shard::partition_root(root, shards))
    }

    /// A replayer seeded with explicit per-shard intervals (a restored
    /// or checkpointed starting state).
    pub fn from_intervals(shards: Vec<Vec<Interval>>) -> Self {
        let n = shards.len();
        TraceReplayer {
            shards,
            cutoffs: vec![None; n],
            solutions: vec![None; n],
            applied: 0,
        }
    }

    /// Events applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// The replayed per-shard interval multisets.
    pub fn shards(&self) -> &[Vec<Interval>] {
        &self.shards
    }

    /// The best replayed solution across shards.
    pub fn solution(&self) -> Option<&Solution> {
        self.solutions.iter().flatten().min_by_key(|s| s.cost)
    }

    /// Applies one event, failing loudly on the first inconsistency.
    pub fn apply(&mut self, event: &TraceEvent) -> Result<(), TraceError> {
        let at = self.applied;
        let fail = |reason: String| TraceError::Replay { at, reason };
        let shard_of = |shards: &Vec<Vec<Interval>>, k: u32| -> Result<usize, TraceError> {
            let k = k as usize;
            if k >= shards.len() {
                Err(TraceError::Replay {
                    at,
                    reason: format!("event names shard {k}, replay has {}", shards.len()),
                })
            } else {
                Ok(k)
            }
        };
        match event {
            TraceEvent::Op { shard, op } => {
                let k = shard_of(&self.shards, *shard)?;
                match op {
                    WalOp::Insert(iv) => self.shards[k].push(iv.clone()),
                    WalOp::Remove(iv) => {
                        let pos = self.shards[k]
                            .iter()
                            .position(|e| e == iv)
                            .ok_or_else(|| fail(format!("remove of absent interval {iv}")))?;
                        self.shards[k].swap_remove(pos);
                    }
                    WalOp::Replace { old, new } => {
                        let pos = self.shards[k]
                            .iter()
                            .position(|e| e == old)
                            .ok_or_else(|| fail(format!("replace of absent interval {old}")))?;
                        self.shards[k][pos] = new.clone();
                    }
                    WalOp::Solution(s) => {
                        let improves = match self.cutoffs[k] {
                            Some(c) => s.cost < c,
                            None => true,
                        };
                        if !improves {
                            return Err(fail(format!(
                                "solution of cost {} does not improve shard cutoff {:?}",
                                s.cost, self.cutoffs[k]
                            )));
                        }
                        self.cutoffs[k] = Some(s.cost);
                        self.solutions[k] = Some(s.clone());
                    }
                }
            }
            TraceEvent::Handout {
                shard, interval, ..
            } => {
                let k = shard_of(&self.shards, *shard)?;
                if !self.shards[k].iter().any(|e| e == interval) {
                    return Err(fail(format!(
                        "handout of {interval} which is not an entry of shard {k}"
                    )));
                }
            }
            TraceEvent::Steal {
                victim,
                dest,
                interval,
            } => {
                shard_of(&self.shards, *victim)?;
                let d = shard_of(&self.shards, *dest)?;
                if self.shards[d].iter().any(|e| e == interval) {
                    return Err(fail(format!(
                        "steal lands {interval} on shard {d} which already holds it"
                    )));
                }
                self.shards[d].push(interval.clone());
            }
            TraceEvent::Cutoff { shard, cost } => {
                let k = shard_of(&self.shards, *shard)?;
                if self.cutoffs[k] != Some(*cost) {
                    return Err(fail(format!(
                        "cutoff broadcast of {cost} but shard {k} replays at {:?}",
                        self.cutoffs[k]
                    )));
                }
            }
        }
        self.applied += 1;
        Ok(())
    }

    /// Applies a whole event stream.
    pub fn replay(&mut self, events: &[TraceEvent]) -> Result<(), TraceError> {
        for event in events {
            self.apply(event)?;
        }
        Ok(())
    }

    /// Compares the reconstruction against a live router snapshot
    /// (per-shard interval multisets, order-insensitive, plus the best
    /// solution). `Err` carries the first difference found.
    pub fn verify_snapshot(
        &self,
        snapshot: &(Vec<Vec<Interval>>, Option<Solution>),
    ) -> Result<(), String> {
        let (shards, solution) = snapshot;
        if shards.len() != self.shards.len() {
            return Err(format!(
                "snapshot has {} shards, replay has {}",
                shards.len(),
                self.shards.len()
            ));
        }
        for (k, (mine, theirs)) in self.shards.iter().zip(shards).enumerate() {
            let mut a: Vec<String> = mine.iter().map(encode_interval_line).collect();
            let mut b: Vec<String> = theirs.iter().map(encode_interval_line).collect();
            a.sort();
            b.sort();
            if a != b {
                return Err(format!(
                    "shard {k}: replayed entries {a:?} != snapshot entries {b:?}"
                ));
            }
        }
        let mine = self.solution();
        match (mine, solution) {
            (None, None) => Ok(()),
            (Some(a), Some(b)) if a == b => Ok(()),
            (a, b) => Err(format!(
                "replayed solution {a:?} != snapshot solution {b:?}"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbnb_coding::UBig;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(UBig::from(a), UBig::from(b))
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Op {
                shard: 0,
                op: WalOp::Replace {
                    old: iv(0, 100),
                    new: iv(0, 60),
                },
            },
            TraceEvent::Op {
                shard: 1,
                op: WalOp::Insert(iv(60, 100)),
            },
            TraceEvent::Handout {
                worker: 7,
                shard: 1,
                interval: iv(60, 100),
            },
            TraceEvent::Op {
                shard: 0,
                op: WalOp::Remove(iv(0, 60)),
            },
            TraceEvent::Steal {
                victim: 0,
                dest: 2,
                interval: iv(0, 60),
            },
            TraceEvent::Op {
                shard: 2,
                op: WalOp::Solution(Solution::new(42, vec![1, 2, 3])),
            },
            TraceEvent::Cutoff { shard: 2, cost: 42 },
        ]
    }

    fn sample_trace() -> RunTrace {
        let trace = RunTrace::new(
            TraceMeta {
                seed: 99,
                workers: 8,
                shards: 4,
            },
            &MetricsRegistry::new(),
        );
        for e in sample_events() {
            match e {
                TraceEvent::Op { shard, op } => trace.record_ops(shard as usize, &[op]),
                TraceEvent::Handout {
                    worker,
                    shard,
                    interval,
                } => trace.record_handout(worker, shard as usize, &interval),
                TraceEvent::Steal {
                    victim,
                    dest,
                    interval,
                } => trace.record_steal(victim as usize, dest as usize, &interval),
                TraceEvent::Cutoff { shard, cost } => trace.record_cutoff(shard as usize, cost),
            }
        }
        trace
    }

    #[test]
    fn encode_decode_round_trip() {
        let trace = sample_trace();
        let decoded = RunTrace::decode(trace.encode().as_bytes()).expect("decode");
        assert_eq!(decoded.meta(), trace.meta());
        assert_eq!(decoded.events(), trace.events());
        assert_eq!(decoded.len(), 7);
        assert_eq!(decoded.steal_count(), 1);
    }

    #[test]
    fn factorial_scale_intervals_round_trip() {
        let trace = RunTrace::new(
            TraceMeta {
                seed: 1,
                workers: 1,
                shards: 1,
            },
            &MetricsRegistry::new(),
        );
        let huge = Interval::new(UBig::factorial(49), UBig::factorial(50));
        trace.record_handout(3, 0, &huge);
        trace.record_ops(0, &[WalOp::Remove(huge.clone())]);
        let decoded = RunTrace::decode(trace.encode().as_bytes()).expect("decode");
        assert_eq!(decoded.events(), trace.events());
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = RunTrace::new(
            TraceMeta {
                seed: 0,
                workers: 2,
                shards: 2,
            },
            &MetricsRegistry::new(),
        );
        let decoded = RunTrace::decode(trace.encode().as_bytes()).expect("decode");
        assert!(decoded.is_empty());
        assert_eq!(decoded.meta().workers, 2);
    }

    #[test]
    fn truncated_trace_is_refused() {
        let encoded = sample_trace().encode();
        // Drop the footer line.
        let cut = encoded.rfind("end").unwrap();
        let err = RunTrace::decode(&encoded.as_bytes()[..cut]).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn replay_reconstructs_and_checks() {
        let mut replayer = TraceReplayer::from_intervals(vec![
            vec![iv(0, 100)],
            vec![iv(100, 200)],
            vec![],
            vec![iv(200, 300)],
        ]);
        replayer.replay(&sample_events()).expect("replay");
        // Shard 0 gave [0,60) away (to shard 2 via the steal) and kept
        // nothing; shard 1 gained [60,100).
        assert_eq!(replayer.shards()[0], Vec::<Interval>::new());
        assert_eq!(replayer.solution().map(|s| s.cost), Some(42));
        let snapshot = (
            vec![
                vec![],
                vec![iv(100, 200), iv(60, 100)],
                vec![iv(0, 60)],
                vec![iv(200, 300)],
            ],
            Some(Solution::new(42, vec![1, 2, 3])),
        );
        replayer.verify_snapshot(&snapshot).expect("snapshot match");
    }

    #[test]
    fn replay_refuses_inconsistent_events() {
        let mut replayer = TraceReplayer::from_intervals(vec![vec![iv(0, 10)]]);
        let bad = TraceEvent::Op {
            shard: 0,
            op: WalOp::Remove(iv(5, 9)),
        };
        let err = replayer.apply(&bad).unwrap_err();
        assert!(matches!(err, TraceError::Replay { at: 0, .. }), "{err}");
    }

    #[test]
    fn diff_pinpoints_first_divergence() {
        let a = sample_events();
        let mut b = a.clone();
        b[4] = TraceEvent::Steal {
            victim: 0,
            dest: 3,
            interval: iv(0, 60),
        };
        let d = diff_traces(&a, &b).expect("divergence");
        assert_eq!(d.index, 4);
        assert!(diff_traces(&a, &a).is_none());
        // Length mismatch diverges at the shorter trace's end.
        let d = diff_traces(&a, &a[..4]).expect("divergence");
        assert_eq!(d.index, 4);
        assert_eq!(d.right, None);
    }
}
