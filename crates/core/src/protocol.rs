//! The pull-model message protocol between B&B processes (workers) and
//! the coordinator (farmer).
//!
//! Workers always initiate (the paper assumes workers behind firewalls,
//! exchanging "according to the pull model"); the coordinator never
//! contacts a worker. Every exchange doubles as a solution-sharing
//! opportunity: responses carry the current global cutoff.

use gridbnb_coding::Interval;
use gridbnb_engine::Solution;

/// Identifies one B&B process (one worker processor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u64);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifies one coordinator shard behind a [`crate::ShardRouter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A request stamped with the shard that must serve it: the shard-aware
/// envelope of the sharded protocol surface. [`crate::ShardRouter::envelope`]
/// resolves a worker's home shard once; executors that queue contacts
/// per shard (instead of re-hashing on every hop) carry this envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardEnvelope {
    /// The home shard the router resolved for the requesting worker.
    pub shard: ShardId,
    /// The worker request to serve there.
    pub request: Request,
}

/// A worker-initiated message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// First contact of a worker (or re-contact after a simulated
    /// failure): asks for an interval. `power` is the relative speed of
    /// the hosting processor, used by the proportional partitioning
    /// operator.
    Join {
        /// The contacting worker.
        worker: WorkerId,
        /// Relative processor power (e.g. MHz); clamped to ≥ 1.
        power: u64,
    },
    /// The worker finished its interval and asks for another one.
    RequestWork {
        /// The contacting worker.
        worker: WorkerId,
        /// Relative processor power.
        power: u64,
    },
    /// Periodic checkpoint: the worker reports its live interval; the
    /// coordinator intersects it with its copy (equation 14) and returns
    /// the result, which the worker adopts.
    Update {
        /// The contacting worker.
        worker: WorkerId,
        /// The worker's live interval `[position, end)`.
        interval: Interval,
    },
    /// The worker found a solution improving its local best (solution
    /// sharing rule 2: inform the coordinator immediately).
    ReportSolution {
        /// The contacting worker.
        worker: WorkerId,
        /// The improving solution.
        solution: Solution,
    },
    /// Combined checkpoint + solution report: exactly equivalent to a
    /// [`Request::ReportSolution`] (when `solution` is `Some`) followed
    /// by a [`Request::Update`], but one contact instead of two — the
    /// paper's dominant operation pair at the end of every slice that
    /// found an improvement. Answered by [`Response::UpdateAck`] whose
    /// cutoff already reflects the merged solution.
    UpdateAndReport {
        /// The contacting worker.
        worker: WorkerId,
        /// The worker's live interval `[position, end)`.
        interval: Interval,
        /// An improving solution found during the slice, if any (`None`
        /// makes this identical to a plain [`Request::Update`]).
        solution: Option<Solution>,
    },
    /// Graceful departure (cycle stealing reclaimed the host). The
    /// worker's interval copy stays in `INTERVALS` and becomes
    /// immediately reassignable.
    Leave {
        /// The departing worker.
        worker: WorkerId,
    },
}

impl Request {
    /// The worker issuing this request.
    pub fn worker(&self) -> WorkerId {
        match self {
            Request::Join { worker, .. }
            | Request::RequestWork { worker, .. }
            | Request::Update { worker, .. }
            | Request::ReportSolution { worker, .. }
            | Request::UpdateAndReport { worker, .. }
            | Request::Leave { worker } => *worker,
        }
    }
}

/// The coordinator's reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A work unit: explore `interval` starting from the current global
    /// cutoff (solution sharing rule 1: initialize the local best from
    /// `SOLUTION`).
    Work {
        /// The assigned interval.
        interval: Interval,
        /// Current global cutoff (best known cost), if any.
        cutoff: Option<u64>,
    },
    /// The intersected interval copy after an update, plus the global
    /// cutoff (solution sharing rule 3: regularly re-read `SOLUTION`).
    /// If the interval comes back empty the worker's unit was fully
    /// stolen or completed elsewhere: request new work next.
    UpdateAck {
        /// `worker ∩ coordinator` interval (equation 14).
        interval: Interval,
        /// Current global cutoff.
        cutoff: Option<u64>,
    },
    /// Acknowledges a reported solution, returning the (possibly better)
    /// global cutoff.
    SolutionAck {
        /// Current global cutoff after merging the report.
        cutoff: Option<u64>,
    },
    /// `INTERVALS` is empty: the whole tree is explored, resolution over
    /// (the paper's implicit termination detection, §4.3). Under a
    /// sharded router this means empty *everywhere* — a worker never
    /// sees `Terminate` while any shard still holds work.
    Terminate,
    /// Sharded endgame backpressure: the requester's home shard is
    /// empty and nothing could be stolen right now (the remaining
    /// intervals are all held and too short to split), but the global
    /// computation is not over. Ask again shortly; the holders — or
    /// expiry, for crashed holders — will release the rest. A
    /// single-shard coordinator never sends this.
    Retry,
    /// Acknowledges a graceful leave.
    LeaveAck,
}
