//! The [`Transport`] abstraction: how a worker's request bundles reach
//! a coordinator, wherever it lives.
//!
//! The paper's workers are remote processes contacting the farmer over
//! the network; this workspace grew *in-process* contact paths first
//! (direct [`ShardRouter`] calls and the [`ContactGateway`] — which
//! fronts either the router or the classic farmer channel) and a socket
//! path in the `gridbnb-net` crate. All of them implement this one
//! trait, so the runtime's `worker_loop` — and every exactness test
//! driving it — runs identically over any of them:
//!
//! | impl | where the coordinator lives |
//! |---|---|
//! | [`RouterTransport`] | sharded router called directly |
//! | [`GatewayTransport`] | shared gateway fronting a router or the farmer channel |
//! | `gridbnb_net::SocketTransport` | a TCP server, possibly remote |
//!
//! Failures are typed, not sentinel values: a contact returns
//! [`TransportError`], whose [`TransportError::is_transient`] split
//! drives the worker loop's retry-with-backoff policy (a flaky socket
//! is retried; a closed coordinator or a protocol violation is not).

use crate::{BundleHandler, ContactGateway, Request, Response, ShardRouter};
use crossbeam::channel::Sender;
use std::time::Instant;

/// A violation of the coordinator protocol itself — malformed wire
/// frames or out-of-contract message sequences. Protocol errors are
/// never transient: retrying the same exchange cannot repair a peer
/// that speaks a different dialect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// A frame did not start with the expected magic bytes.
    BadMagic {
        /// The four bytes actually read.
        got: [u8; 4],
    },
    /// The frame header carried an unsupported codec version.
    UnsupportedVersion {
        /// Version byte on the wire.
        got: u8,
        /// The one version this build speaks.
        want: u8,
    },
    /// The frame kind byte named no known message type.
    UnknownKind(u8),
    /// A declared payload length exceeded the codec's hard cap (a
    /// corrupt or hostile header; honoring it would allocate the cap).
    Oversized {
        /// Declared payload length.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// The payload ended before its declared structure did, or carried
    /// values no encoder produces (bad tags, bad decimal digits, ...).
    BadPayload(String),
    /// The peer answered a request with a response variant the protocol
    /// does not allow there (e.g. a `Work` reply to an `Update`).
    UnexpectedResponse {
        /// What the request admits.
        expected: &'static str,
        /// Debug rendering of what arrived.
        got: String,
    },
    /// A bundle of `sent` requests came back with a different number of
    /// responses — the one-response-per-request contract is broken.
    ResponseCount {
        /// Requests in the bundle.
        sent: usize,
        /// Responses received.
        got: usize,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadMagic { got } => write!(f, "bad frame magic {got:?}"),
            ProtocolError::UnsupportedVersion { got, want } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {want})"
                )
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            ProtocolError::Oversized { len, max } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {max}-byte cap"
                )
            }
            ProtocolError::BadPayload(m) => write!(f, "bad payload: {m}"),
            ProtocolError::UnexpectedResponse { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            ProtocolError::ResponseCount { sent, got } => {
                write!(f, "sent {sent} requests but received {got} responses")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Why a contact failed. The [`TransportError::is_transient`] split is
/// the retry contract: transient errors are worth re-sending the same
/// bundle after a backoff; permanent ones end the worker's run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The far side is gone for good: the channel hung up, the gateway
    /// was torn down, or the server refused further business. This is
    /// the typed form of the old "dead transport" sentinel — normal at
    /// the end of a run, fatal in the middle of one.
    Closed,
    /// An I/O-level failure (connection reset, refused, interrupted
    /// write, ...). Transient: the coordinator may well still be there.
    Io(String),
    /// The peer did not answer within the configured deadline.
    /// Transient: a slow coordinator is not a dead one.
    Timeout,
    /// The exchange violated the protocol. Permanent.
    Protocol(ProtocolError),
}

impl TransportError {
    /// `true` iff re-sending the same bundle after a backoff could
    /// plausibly succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, TransportError::Io(_) | TransportError::Timeout)
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "transport closed"),
            TransportError::Io(m) => write!(f, "transport I/O error: {m}"),
            TransportError::Timeout => write!(f, "transport timed out"),
            TransportError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtocolError> for TransportError {
    fn from(e: ProtocolError) -> Self {
        TransportError::Protocol(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::Timeout
            }
            _ => TransportError::Io(e.to_string()),
        }
    }
}

/// One worker's path to the coordinator: send a request bundle, block
/// until the matching response bundle arrives.
///
/// The contract every implementation honors (and the wire codec's
/// property tests pin): responses come back **one per request, in
/// request order**, and a bundle is served atomically with respect to
/// other bundles on the same coordinator.
pub trait Transport {
    /// Sends `requests` as one contact and blocks for the responses.
    fn contact(&self, requests: Vec<Request>) -> Result<Vec<Response>, TransportError>;
}

/// One farmer-channel contact: a request bundle and the reply slot. A
/// classic single request is a bundle of one; the farmer folds the
/// whole bundle through `Coordinator::apply_batch` and answers all of
/// it in one round-trip. Since the classic runtime routed its workers
/// through the [`ContactGateway`], these are sent by the gateway's
/// farmer-channel handler, one per flush.
pub(crate) type Envelope = (Vec<Request>, Sender<Vec<Response>>);

/// Direct sharded contacts: each bundle goes straight into the worker's
/// home shard of a [`ShardRouter`] (no farmer funnel).
pub struct RouterTransport<'r> {
    router: &'r ShardRouter,
    started: Instant,
}

impl<'r> RouterTransport<'r> {
    /// A transport calling `router` directly, with contact timestamps
    /// measured from `started` (the run's injected clock origin).
    pub fn new(router: &'r ShardRouter, started: Instant) -> Self {
        RouterTransport { router, started }
    }
}

impl Transport for RouterTransport<'_> {
    fn contact(&self, mut requests: Vec<Request>) -> Result<Vec<Response>, TransportError> {
        let now_ns = self.started.elapsed().as_nanos() as u64;
        if requests.len() == 1 {
            let request = requests.pop().expect("one request");
            return Ok(vec![self.router.handle(request, now_ns)]);
        }
        let bundle = requests
            .into_iter()
            .map(|r| self.router.envelope(r))
            .collect();
        Ok(self
            .router
            .handle_bundle(bundle, now_ns)
            .into_iter()
            .map(|(_, response)| response)
            .collect())
    }
}

/// Aggregated contacts: bundles are submitted to a shared
/// [`ContactGateway`] that merges many workers' batches into one
/// combined bundle per flush — fronting a [`ShardRouter`] or the
/// farmer channel, whichever [`BundleHandler`] the gateway wraps.
pub struct GatewayTransport<'g, H: BundleHandler> {
    gateway: &'g ContactGateway<H>,
    started: Instant,
}

impl<'g, H: BundleHandler> GatewayTransport<'g, H> {
    /// A transport submitting to `gateway`, with submission timestamps
    /// measured from `started`.
    pub fn new(gateway: &'g ContactGateway<H>, started: Instant) -> Self {
        GatewayTransport { gateway, started }
    }
}

impl<H: BundleHandler> Transport for GatewayTransport<'_, H> {
    fn contact(&self, requests: Vec<Request>) -> Result<Vec<Response>, TransportError> {
        let sent = requests.len();
        let now_ns = self.started.elapsed().as_nanos() as u64;
        let responses = self.gateway.submit(requests, now_ns);
        if responses.is_empty() && sent > 0 {
            // The gateway was torn down with this submission unflushed —
            // the typed form of its empty-reply sentinel.
            return Err(TransportError::Closed);
        }
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_split() {
        assert!(TransportError::Io("reset".into()).is_transient());
        assert!(TransportError::Timeout.is_transient());
        assert!(!TransportError::Closed.is_transient());
        assert!(
            !TransportError::Protocol(ProtocolError::UnknownKind(9)).is_transient(),
            "protocol violations must never be retried"
        );
    }

    #[test]
    fn io_error_kinds_map_to_timeout_or_io() {
        let timed_out: TransportError =
            std::io::Error::new(std::io::ErrorKind::TimedOut, "slow").into();
        assert_eq!(timed_out, TransportError::Timeout);
        let reset: TransportError =
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "rst").into();
        assert!(matches!(reset, TransportError::Io(_)));
    }
}
