//! Pluggable storage backends for durable coordinator state.
//!
//! The write-ahead log and snapshot machinery in [`crate::wal`] never touch
//! the filesystem directly: everything goes through the [`StorageBackend`]
//! trait, a tiny named-blob store with atomic replacement and append
//! semantics. That keeps the recovery logic testable (the in-memory backend
//! makes crash/restart a pure data-structure exercise), lets deployments pick
//! a layout (one flat directory, or a directory per shard), and gives the
//! fault-injection backend a single choke point at which to return IO errors
//! or tear a write mid-record.
//!
//! Blob names are flat strings chosen by the caller (`MANIFEST`,
//! `snap-3`, `shard-2-gen-3.wal`, ...). Backends may map them onto any
//! physical layout as long as the observable contract holds:
//!
//! - [`StorageBackend::put`] atomically replaces the whole blob — after a
//!   crash a reader sees either the old or the new contents, never a mix.
//! - [`StorageBackend::append`] extends a blob (creating it if absent) and
//!   may tear: a crash mid-append leaves a prefix of the appended bytes.
//!   The WAL's CRC framing is what detects that.
//! - [`StorageBackend::truncate`] cuts a blob back to a known-good length
//!   (used to repair a torn tail).

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A named-blob store: the only interface the durability layer uses to
/// reach stable storage.
///
/// Implementations must be safe to share across threads; the shard router
/// appends from several shard locks concurrently (always to *different*
/// blobs — per-blob append ordering is the caller's responsibility and is
/// guaranteed by appending under the owning shard's lock).
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Atomically replaces `name` with `bytes` (write-temp-then-rename or
    /// equivalent). Readers never observe a partial blob.
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `name`, creating the blob if it does not exist.
    /// A crash may persist any prefix of `bytes`.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Reads the full contents of `name`, or `None` if it does not exist.
    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Truncates `name` to `len` bytes. A no-op if the blob is already
    /// shorter. Errors if the blob does not exist.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;

    /// Deletes `name`. Deleting a missing blob is not an error (recovery
    /// retries cleanup that a crash may have half-finished).
    fn delete(&self, name: &str) -> io::Result<()>;

    /// Lists every blob name in the store, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// A heap-backed [`StorageBackend`]: blobs live in a mutex-guarded map.
///
/// Used by the recovery property tests (crashes become byte-slicing on the
/// stored `Vec<u8>`) and by the WAL benchmark (no disk noise).
#[derive(Debug, Default)]
pub struct MemoryBackend {
    blobs: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemoryBackend {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a deep copy of every blob — the test harness uses this to
    /// model "what is on disk at the instant of the crash".
    pub fn dump(&self) -> HashMap<String, Vec<u8>> {
        self.blobs.lock().unwrap().clone()
    }

    /// Replaces the entire store contents (restoring a crash image captured
    /// with [`MemoryBackend::dump`]).
    pub fn load(&self, blobs: HashMap<String, Vec<u8>>) {
        *self.blobs.lock().unwrap() = blobs;
    }
}

impl StorageBackend for MemoryBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.blobs
            .lock()
            .unwrap()
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.blobs
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self.blobs.lock().unwrap().get(name).cloned())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut blobs = self.blobs.lock().unwrap();
        match blobs.get_mut(name) {
            Some(blob) => {
                if (blob.len() as u64) > len {
                    blob.truncate(len as usize);
                }
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such blob: {name}"),
            )),
        }
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.blobs.lock().unwrap().remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.blobs.lock().unwrap().keys().cloned().collect())
    }
}

// ---------------------------------------------------------------------------
// Filesystem backends
// ---------------------------------------------------------------------------

/// Maps a blob name to a path under `root`, optionally splitting
/// `shard-K-...` names into a `shard-K/` subdirectory.
fn blob_path(root: &Path, name: &str, shard_dirs: bool) -> PathBuf {
    if shard_dirs {
        if let Some(rest) = name.strip_prefix("shard-") {
            if let Some(dash) = rest.find('-') {
                if rest[..dash].bytes().all(|b| b.is_ascii_digit()) {
                    return root
                        .join(format!("shard-{}", &rest[..dash]))
                        .join(&rest[dash + 1..]);
                }
            }
        }
    }
    root.join(name)
}

/// Reverses [`blob_path`] for directory listings.
fn blob_name(name: &std::ffi::OsStr, shard_dir: Option<&str>) -> Option<String> {
    let name = name.to_str()?;
    // Skip temp files left behind by a crash mid-`put`.
    if name.ends_with(".tmp") {
        return None;
    }
    Some(match shard_dir {
        Some(dir) => format!("{dir}-{name}"),
        None => name.to_string(),
    })
}

fn file_put(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    // Append `.tmp` to the full file name rather than replacing the
    // extension: `snap-3.intervals` and `snap-3.solution` must not both
    // stage through the same `snap-3.tmp`.
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        PathBuf::from(os)
    };
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Removes stray `*.tmp` files a crash mid-[`file_put`] may have left in
/// `dir`. They are invisible to `list` (so recovery already ignores
/// them), but would otherwise accumulate forever; best-effort, run at
/// backend construction.
fn sweep_tmp(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let is_tmp = entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".tmp"));
        if is_tmp && entry.file_type().is_ok_and(|t| t.is_file()) {
            let _ = fs::remove_file(entry.path());
        }
    }
}

fn file_append(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    f.write_all(bytes)?;
    f.sync_data()
}

fn file_get(path: &Path) -> io::Result<Option<Vec<u8>>> {
    match fs::read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

fn file_truncate(path: &Path, len: u64) -> io::Result<()> {
    let f = fs::OpenOptions::new().write(true).open(path)?;
    let current = f.metadata()?.len();
    if current > len {
        f.set_len(len)?;
        f.sync_data()?;
    }
    Ok(())
}

fn file_delete(path: &Path) -> io::Result<()> {
    match fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e),
    }
}

/// A [`StorageBackend`] storing every blob as a file in one flat directory.
///
/// `put` is write-temp-then-rename (same atomicity as the checkpoint
/// store); `append` is `O_APPEND` + `fdatasync`.
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
}

impl FileBackend {
    /// Creates (if needed) `root` and stores blobs inside it.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        sweep_tmp(&root);
        Ok(FileBackend { root })
    }
}

impl StorageBackend for FileBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        file_put(&blob_path(&self.root, name, false), bytes)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        file_append(&blob_path(&self.root, name, false), bytes)
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        file_get(&blob_path(&self.root, name, false))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        file_truncate(&blob_path(&self.root, name, false), len)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        file_delete(&blob_path(&self.root, name, false))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = blob_name(&entry.file_name(), None) {
                    names.push(name);
                }
            }
        }
        Ok(names)
    }
}

/// A [`StorageBackend`] that gives every shard its own subdirectory:
/// blob `shard-2-gen-7.wal` lands at `<root>/shard-2/gen-7.wal`, while
/// non-shard blobs (`MANIFEST`, `snap-*`) stay at the top level.
///
/// This is the deployment layout: per-shard directories keep each shard's
/// segments together and make it obvious on disk which shard wrote what.
#[derive(Debug)]
pub struct ShardDirBackend {
    root: PathBuf,
}

impl ShardDirBackend {
    /// Creates (if needed) `root` and stores blobs inside it, one
    /// subdirectory per shard.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        sweep_tmp(&root);
        if let Ok(entries) = fs::read_dir(&root) {
            for entry in entries.flatten() {
                if entry.file_type().is_ok_and(|t| t.is_dir()) {
                    sweep_tmp(&entry.path());
                }
            }
        }
        Ok(ShardDirBackend { root })
    }
}

impl StorageBackend for ShardDirBackend {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        file_put(&blob_path(&self.root, name, true), bytes)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        file_append(&blob_path(&self.root, name, true), bytes)
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        file_get(&blob_path(&self.root, name, true))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        file_truncate(&blob_path(&self.root, name, true), len)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        file_delete(&blob_path(&self.root, name, true))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let file_name = entry.file_name();
            if entry.file_type()?.is_file() {
                if let Some(name) = blob_name(&file_name, None) {
                    names.push(name);
                }
            } else if entry.file_type()?.is_dir() {
                let dir = match file_name.to_str() {
                    Some(d) if d.starts_with("shard-") => d.to_string(),
                    _ => continue,
                };
                for sub in fs::read_dir(entry.path())? {
                    let sub = sub?;
                    if sub.file_type()?.is_file() {
                        if let Some(name) = blob_name(&sub.file_name(), Some(&dir)) {
                            names.push(name);
                        }
                    }
                }
            }
        }
        Ok(names)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What the [`FaultBackend`] should do to the next matching write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Return `io::ErrorKind::Other` without touching the inner backend.
    Error,
    /// Persist only the first `n` bytes of the write, then return an
    /// error — a torn write, as a crash mid-`append` would leave it.
    Torn(usize),
}

/// A [`StorageBackend`] wrapper that injects failures on command.
///
/// Faults are armed with [`FaultBackend::fail_after`]: the first `after`
/// matching writes succeed, then `count` consecutive writes fail with the
/// armed [`Fault`]. `put` faults always surface as clean errors (a
/// half-renamed `put` is not observable); `append` faults honor
/// [`Fault::Torn`] by persisting a prefix, which is exactly the condition
/// the WAL's CRC framing must detect on recovery.
#[derive(Debug)]
pub struct FaultBackend<B: StorageBackend> {
    inner: B,
    plan: Mutex<Option<FaultPlan>>,
    /// Writes (put + append) attempted, whether or not they failed.
    writes: AtomicU64,
    /// Writes that were failed or torn by the armed plan.
    injected: AtomicU64,
}

#[derive(Debug)]
struct FaultPlan {
    fault: Fault,
    remaining_ok: u64,
    remaining_faults: u64,
}

impl<B: StorageBackend> FaultBackend<B> {
    /// Wraps `inner` with no fault armed.
    pub fn new(inner: B) -> Self {
        FaultBackend {
            inner,
            plan: Mutex::new(None),
            writes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Arms a fault: the next `after` writes succeed, then `count` writes
    /// fail with `fault`. Re-arming replaces any previous plan.
    pub fn fail_after(&self, after: u64, count: u64, fault: Fault) {
        *self.plan.lock().unwrap() = Some(FaultPlan {
            fault,
            remaining_ok: after,
            remaining_faults: count,
        });
    }

    /// Disarms any pending fault.
    pub fn clear_faults(&self) {
        *self.plan.lock().unwrap() = None;
    }

    /// Number of writes that were failed or torn so far.
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total writes attempted (including failed ones).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Access to the wrapped backend (e.g. to inspect blobs after a fault).
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Decides the fate of one write. Returns the fault to apply, if any.
    fn next_fault(&self) -> Option<Fault> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.plan.lock().unwrap();
        let plan = guard.as_mut()?;
        if plan.remaining_ok > 0 {
            plan.remaining_ok -= 1;
            return None;
        }
        if plan.remaining_faults == 0 {
            *guard = None;
            return None;
        }
        plan.remaining_faults -= 1;
        let fault = plan.fault;
        if plan.remaining_faults == 0 {
            *guard = None;
        }
        drop(guard);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    fn injected_error() -> io::Error {
        io::Error::other("injected storage fault")
    }
}

impl<B: StorageBackend> StorageBackend for FaultBackend<B> {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault() {
            // A torn `put` is indistinguishable from a clean failure: the
            // rename never happened, so the old blob is intact.
            Some(_) => Err(Self::injected_error()),
            None => self.inner.put(name, bytes),
        }
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault() {
            Some(Fault::Error) => Err(Self::injected_error()),
            Some(Fault::Torn(n)) => {
                let n = n.min(bytes.len());
                // Persist the prefix, then report failure — the caller sees
                // an error but the tear is on "disk".
                self.inner.append(name, &bytes[..n])?;
                Err(Self::injected_error())
            }
            None => self.inner.append(name, bytes),
        }
    }

    fn get(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        self.inner.get(name)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        self.inner.truncate(name, len)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.inner.delete(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gridbnb-storage-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn exercise(backend: &dyn StorageBackend) {
        assert_eq!(backend.get("a").unwrap(), None);
        backend.put("a", b"hello").unwrap();
        assert_eq!(backend.get("a").unwrap().unwrap(), b"hello");
        backend.put("a", b"world").unwrap();
        assert_eq!(backend.get("a").unwrap().unwrap(), b"world");
        backend.append("log", b"one").unwrap();
        backend.append("log", b"two").unwrap();
        assert_eq!(backend.get("log").unwrap().unwrap(), b"onetwo");
        backend.truncate("log", 3).unwrap();
        assert_eq!(backend.get("log").unwrap().unwrap(), b"one");
        backend.truncate("log", 100).unwrap(); // no-op beyond end
        assert_eq!(backend.get("log").unwrap().unwrap(), b"one");
        let mut names = backend.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a".to_string(), "log".to_string()]);
        backend.delete("a").unwrap();
        backend.delete("a").unwrap(); // idempotent
        assert_eq!(backend.get("a").unwrap(), None);
        backend.delete("log").unwrap();
        assert!(backend.list().unwrap().is_empty());
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&MemoryBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let dir = tempdir("file");
        exercise(&FileBackend::new(&dir).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_dir_backend_contract() {
        let dir = tempdir("sharddir");
        exercise(&ShardDirBackend::new(&dir).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_dir_backend_splits_shard_blobs() {
        let dir = tempdir("sharddir-split");
        let backend = ShardDirBackend::new(&dir).unwrap();
        backend.append("shard-3-gen-0.wal", b"ops").unwrap();
        backend.put("MANIFEST", b"0").unwrap();
        assert!(dir.join("shard-3").join("gen-0.wal").is_file());
        assert!(dir.join("MANIFEST").is_file());
        let mut names = backend.list().unwrap();
        names.sort();
        assert_eq!(
            names,
            vec!["MANIFEST".to_string(), "shard-3-gen-0.wal".to_string()]
        );
        assert_eq!(backend.get("shard-3-gen-0.wal").unwrap().unwrap(), b"ops");
        backend.delete("shard-3-gen-0.wal").unwrap();
        assert!(!dir.join("shard-3").join("gen-0.wal").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn put_temp_paths_never_collide_across_same_stem_blobs() {
        // `snap-1.intervals` and `snap-1.solution` must stage through
        // *different* temp files — with `with_extension("tmp")` they both
        // mapped to `snap-1.tmp` and a concurrent put could corrupt one
        // with the other's bytes.
        let dir = tempdir("tmp-collide");
        let backend = FileBackend::new(&dir).unwrap();
        backend.put("snap-1.intervals", b"intervals").unwrap();
        backend.put("snap-1.solution", b"solution").unwrap();
        assert_eq!(
            backend.get("snap-1.intervals").unwrap().unwrap(),
            b"intervals"
        );
        assert_eq!(
            backend.get("snap-1.solution").unwrap().unwrap(),
            b"solution"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stray_tmp_files_are_swept_at_construction() {
        let dir = tempdir("tmp-sweep");
        fs::write(dir.join("snap-1.intervals.tmp"), b"torn").unwrap();
        let backend = FileBackend::new(&dir).unwrap();
        assert!(!dir.join("snap-1.intervals.tmp").exists());
        assert!(backend.list().unwrap().is_empty());

        fs::write(dir.join("MANIFEST.tmp"), b"torn").unwrap();
        fs::create_dir_all(dir.join("shard-0")).unwrap();
        fs::write(dir.join("shard-0").join("gen-2.wal.tmp"), b"torn").unwrap();
        let backend = ShardDirBackend::new(&dir).unwrap();
        assert!(!dir.join("MANIFEST.tmp").exists());
        assert!(!dir.join("shard-0").join("gen-2.wal.tmp").exists());
        assert!(backend.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_backend_errors_and_tears() {
        let backend = FaultBackend::new(MemoryBackend::new());
        backend.append("log", b"good").unwrap();

        backend.fail_after(0, 1, Fault::Error);
        assert!(backend.append("log", b"bad").is_err());
        assert_eq!(backend.get("log").unwrap().unwrap(), b"good");

        backend.fail_after(0, 1, Fault::Torn(2));
        assert!(backend.append("log", b"torn").is_err());
        assert_eq!(backend.get("log").unwrap().unwrap(), b"goodto");

        // Plan exhausted: writes succeed again.
        backend.append("log", b"!").unwrap();
        assert_eq!(backend.get("log").unwrap().unwrap(), b"goodto!");
        assert_eq!(backend.injected_faults(), 2);
    }

    #[test]
    fn fault_backend_counts_down_before_failing() {
        let backend = FaultBackend::new(MemoryBackend::new());
        backend.fail_after(2, 1, Fault::Error);
        backend.put("a", b"1").unwrap();
        backend.put("a", b"2").unwrap();
        assert!(backend.put("a", b"3").is_err());
        assert_eq!(backend.get("a").unwrap().unwrap(), b"2");
        backend.put("a", b"4").unwrap();
    }
}
