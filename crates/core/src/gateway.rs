//! Cross-worker contact gateway: many workers' request batches merged
//! into shared per-shard bundles.
//!
//! PR 4's coalescing lets one worker fold its *own* requests into a
//! bundle, but every worker still pays its own
//! [`ShardRouter::handle_bundle`] call — one lock acquisition per shard
//! it touches. With `W` workers and `S ≪ W` shards, the same shard's
//! lock is taken up to `W/S` times per contact window for work that
//! [`crate::Coordinator::apply_batch`] could fold in one pass (it
//! already accepts mixed-worker groups). The [`ContactGateway`] adds the
//! missing collection tier:
//!
//! ```text
//!   w0 ─┐                                  ┌─ shard 0 (1 lock/flush)
//!   w1 ─┤   submit(Vec<Request>)           ├─ shard 1 (1 lock/flush)
//!   ..  ├─► gateway buffer ──── flush ────►│     ...
//!   w15─┘   (size / deadline /             └─ shard S-1
//!            termination-sensitive)
//! ```
//!
//! * **Submission** — [`ContactGateway::submit`] stamps each request
//!   with its home shard and appends the batch to a shared buffer; the
//!   calling worker blocks until a flush serves it. Because a worker's
//!   requests all hash to the same home shard, a submission never
//!   straddles shards.
//! * **Flush triggers** — a flush fires when the buffer reaches the
//!   policy's fan-in (size), when the oldest submission has waited
//!   longer than the policy's delay ([`ContactGateway::flush_stale`],
//!   driven by the runtime's supervisor), when a submission carries a
//!   termination-sensitive request (`Join` / `RequestWork` / `Leave` —
//!   deferring one could stall the endgame behind an idle deadline), or
//!   when the backing coordinator is already terminated (never strand a
//!   late submitter). Empty flushes are free: no contact, no work.
//! * **Flush execution** — the buffered submissions are concatenated
//!   (arrival order, each submission's internal order preserved) into
//!   one [`BundleHandler::handle_bundle`] call: one lock acquisition per
//!   *touched shard* per flush, however many workers contributed. The
//!   responses come back in input order and are routed to each
//!   submitting worker over its reply channel, in its request order.
//!
//! The gateway fronts anything that can serve a combined bundle — the
//! [`BundleHandler`] trait. Production uses two implementations: the
//! [`ShardRouter`] (the sharded path), and the runtime's farmer channel
//! (the classic single-coordinator path, so PR 3's funnel amortizes
//! contacts exactly like the sharded tier).
//!
//! Semantics are pinned by the property oracle in
//! `tests/gateway_props.rs`: a flush's outcome — every worker's
//! responses and the router state left behind — is identical to
//! replaying each submission through its own `handle_bundle` call,
//! submissions ordered by (home shard ascending, arrival order). That
//! replay order is exactly the grouped order `handle_bundle` already
//! guarantees for one combined bundle, so the gateway inherits the
//! batch oracle's guarantees (steal-and-retry at the sequential point,
//! endgame `Retry` in place, best-of-group solution broadcasts between
//! shard runs) without new coordinator code.
//!
//! **Observability.** Every counter the gateway keeps lives on the
//! handler's [`MetricsRegistry`] — `gbnb_gateway_*` families — and
//! [`ContactGateway::stats`] merely reads those cells back, so there is
//! exactly one source of truth for flush-cause accounting. The
//! [`GatewayMode::Adaptive`] policy closes the loop: it reads the
//! buffered-age and shard lock-hold signals and resizes the effective
//! fan-in, recording every decision as a metric
//! (`gbnb_gateway_fanin_grow_total` / `..._shrink_total`, current value
//! in the `gbnb_gateway_fan_in` gauge) so a run's policy trajectory is
//! reconstructable from a scrape.
//!
//! The same aggregation exists event-driven in the grid simulator
//! (`SimConfig::gateway_fan_in`): per-shard queues collect many
//! simulated workers' update snapshots and deliver each queue as one
//! shared bundle per flush event.

use crate::{Request, Response, ShardEnvelope, ShardId, ShardRouter};
use crossbeam::channel::{unbounded, Sender};
use gridbnb_metrics::{
    exponential_buckets, latency_buckets_ns, Counter, Gauge, Histogram, MetricsRegistry,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Anything a [`ContactGateway`] can flush combined bundles into: the
/// sharded router, or the classic farmer channel. The contract is the
/// router's: responses come back one per envelope, in input order.
pub trait BundleHandler {
    /// Stamps a request with the shard that will serve it.
    fn envelope(&self, request: Request) -> ShardEnvelope;

    /// Serves one combined bundle at injected time `now_ns`; responses
    /// in input order, each stamped with the serving shard. A handler
    /// that can no longer serve (torn down mid-run) may return fewer
    /// responses; the gateway then answers every submitter with an
    /// empty reply — the dead-transport sentinel.
    fn handle_bundle(&self, bundle: Vec<ShardEnvelope>, now_ns: u64) -> Vec<(ShardId, Response)>;

    /// `true` iff the computation behind this handler is globally over
    /// — a terminated handler never buffers (nobody may come along to
    /// flush a late straggler).
    fn is_terminated(&self) -> bool;

    /// The registry the gateway registers its `gbnb_gateway_*` metrics
    /// on, so one scrape covers the whole serving path.
    fn metrics(&self) -> MetricsRegistry;

    /// Mean nanoseconds a backing shard lock is held per contact — the
    /// contention signal the adaptive policy grows on. Zero when the
    /// handler has no such measurement.
    fn contention_ns(&self) -> u64 {
        0
    }
}

impl BundleHandler for &ShardRouter {
    fn envelope(&self, request: Request) -> ShardEnvelope {
        ShardRouter::envelope(self, request)
    }

    fn handle_bundle(&self, bundle: Vec<ShardEnvelope>, now_ns: u64) -> Vec<(ShardId, Response)> {
        ShardRouter::handle_bundle(self, bundle, now_ns)
    }

    fn is_terminated(&self) -> bool {
        ShardRouter::is_terminated(self)
    }

    fn metrics(&self) -> MetricsRegistry {
        ShardRouter::metrics(self).clone()
    }

    fn contention_ns(&self) -> u64 {
        ShardRouter::mean_lock_hold_ns(self)
    }
}

/// How a [`ContactGateway`] sizes its fan-in over a run's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GatewayMode {
    /// The fan-in is [`GatewayPolicy::fan_in`], forever.
    Fixed,
    /// The effective fan-in starts at [`GatewayPolicy::fan_in`] and is
    /// resized after each flush from the measured signals: it doubles
    /// (up to `max_fan_in`) while size-triggered flushes fill fast
    /// (buffered age ≤ delay/4) and the shards show lock contention,
    /// and halves (down to `min_fan_in`) on deadline flushes, endgame
    /// `Retry` backpressure, or termination — aggregation pressure is
    /// only worth its latency while many workers are actually pushing.
    Adaptive {
        /// Floor the fan-in never shrinks below.
        min_fan_in: usize,
        /// Ceiling the fan-in never grows past.
        max_fan_in: usize,
    },
}

/// Fan-in policy of a [`ContactGateway`].
#[derive(Clone, Copy, Debug)]
pub struct GatewayPolicy {
    /// Buffered request (envelope) count that triggers a size flush —
    /// the fan-in the gateway tries to aggregate per shared bundle
    /// (the *starting* fan-in under [`GatewayMode::Adaptive`]).
    /// Clamped to ≥ 1 (1 degenerates to per-submission delivery).
    pub fan_in: usize,
    /// Deadline flush: the oldest buffered submission never waits
    /// longer than this (injected-clock nanoseconds). A submitting
    /// worker is silent towards the coordinator while it waits, so this
    /// must stay well below
    /// [`crate::CoordinatorConfig::holder_timeout_ns`] — the runtime
    /// asserts it.
    pub max_delay_ns: u64,
    /// Fixed fan-in, or adaptive resizing from measured signals.
    pub mode: GatewayMode,
}

impl GatewayPolicy {
    /// A fixed policy flushing at `fan_in` buffered requests or after
    /// `max_delay_ns`, whichever comes first.
    pub fn new(fan_in: usize, max_delay_ns: u64) -> Self {
        GatewayPolicy {
            fan_in: fan_in.max(1),
            max_delay_ns: max_delay_ns.max(1),
            mode: GatewayMode::Fixed,
        }
    }

    /// An adaptive policy: fan-in starts at `fan_in`, resized within
    /// `[1, max_fan_in]` from the measured buffered-age / contention /
    /// backpressure signals (see [`GatewayMode::Adaptive`]).
    pub fn adaptive(fan_in: usize, max_fan_in: usize, max_delay_ns: u64) -> Self {
        let max_fan_in = max_fan_in.max(1);
        GatewayPolicy {
            fan_in: fan_in.clamp(1, max_fan_in),
            max_delay_ns: max_delay_ns.max(1),
            mode: GatewayMode::Adaptive {
                min_fan_in: 1,
                max_fan_in,
            },
        }
    }

    /// Checks this policy against the coordinator it would front: the
    /// flush delay must stay strictly below the holder timeout, or
    /// routing contacts through the gateway would get healthy workers
    /// expired (and their work redone) every flush window. Every
    /// construction path that pairs a gateway with a coordinator — the
    /// runtime, and the socket server in `gridbnb-net` — funnels
    /// through this one check.
    pub fn validate_against(
        &self,
        coordinator: &crate::CoordinatorConfig,
    ) -> Result<(), crate::ConfigError> {
        if self.max_delay_ns >= coordinator.holder_timeout_ns {
            return Err(crate::ConfigError::GatewayDelayTooLong {
                delay_ns: self.max_delay_ns,
                timeout_ns: coordinator.holder_timeout_ns,
            });
        }
        Ok(())
    }

    /// The largest fan-in this policy can reach (`fan_in` when fixed).
    pub fn max_fan_in(&self) -> usize {
        match self.mode {
            GatewayMode::Fixed => self.fan_in,
            GatewayMode::Adaptive { max_fan_in, .. } => max_fan_in,
        }
    }

    fn clamped(self) -> Self {
        match self.mode {
            GatewayMode::Fixed => GatewayPolicy::new(self.fan_in, self.max_delay_ns),
            GatewayMode::Adaptive { max_fan_in, .. } => {
                GatewayPolicy::adaptive(self.fan_in, max_fan_in, self.max_delay_ns)
            }
        }
    }
}

/// Aggregation counters of one [`ContactGateway`] — a point-in-time
/// read of the `gbnb_gateway_*` metrics (the registry cells are the
/// only bookkeeping; this struct is just their report form).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Worker batches submitted.
    pub submissions: u64,
    /// Requests those batches carried.
    pub requests: u64,
    /// Non-empty flushes executed (empty flushes are free and not
    /// counted — there is nothing they could have amortized).
    pub flushes: u64,
    /// Flushes triggered by the fan-in size threshold.
    pub size_flushes: u64,
    /// Flushes forced by a termination-sensitive request.
    pub sensitive_flushes: u64,
    /// Flushes forced by the deadline ([`ContactGateway::flush_stale`]).
    pub deadline_flushes: u64,
    /// Unconditional flushes ([`ContactGateway::flush_now`], and
    /// submissions arriving after global termination).
    pub forced_flushes: u64,
    /// Requests in the largest shared bundle flushed so far.
    pub largest_bundle: u64,
    /// Adaptive fan-in increases ([`GatewayMode::Adaptive`] only).
    pub fanin_grows: u64,
    /// Adaptive fan-in decreases ([`GatewayMode::Adaptive`] only).
    pub fanin_shrinks: u64,
}

/// Why a flush fired (tallied into the per-cause flush counters).
#[derive(Clone, Copy, Debug)]
enum FlushCause {
    Size,
    Sensitive,
    Deadline,
    Forced,
}

/// The gateway's registered instrument handles — resolved once at
/// construction so the submit/flush paths are pure atomics.
#[derive(Debug)]
struct GatewayMetrics {
    submissions: Counter,
    requests: Counter,
    size_flushes: Counter,
    sensitive_flushes: Counter,
    deadline_flushes: Counter,
    forced_flushes: Counter,
    bundle_requests: Histogram,
    largest_bundle: Gauge,
    buffered_age_ns: Gauge,
    flush_age_ns: Histogram,
    fan_in: Gauge,
    fanin_grows: Counter,
    fanin_shrinks: Counter,
    retry_backpressure: Counter,
}

impl GatewayMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        GatewayMetrics {
            submissions: registry.counter("gbnb_gateway_submissions_total", &[]),
            requests: registry.counter("gbnb_gateway_requests_total", &[]),
            size_flushes: registry.counter("gbnb_gateway_flushes_total", &[("cause", "size")]),
            sensitive_flushes: registry
                .counter("gbnb_gateway_flushes_total", &[("cause", "sensitive")]),
            deadline_flushes: registry
                .counter("gbnb_gateway_flushes_total", &[("cause", "deadline")]),
            forced_flushes: registry.counter("gbnb_gateway_flushes_total", &[("cause", "forced")]),
            bundle_requests: registry.histogram(
                "gbnb_gateway_bundle_requests",
                &[],
                &exponential_buckets(1, 2, 11),
            ),
            largest_bundle: registry.gauge("gbnb_gateway_largest_bundle", &[]),
            buffered_age_ns: registry.gauge("gbnb_gateway_buffered_age_ns", &[]),
            flush_age_ns: registry.histogram(
                "gbnb_gateway_flush_age_ns",
                &[],
                &latency_buckets_ns(),
            ),
            fan_in: registry.gauge("gbnb_gateway_fan_in", &[]),
            fanin_grows: registry.counter("gbnb_gateway_fanin_grow_total", &[]),
            fanin_shrinks: registry.counter("gbnb_gateway_fanin_shrink_total", &[]),
            retry_backpressure: registry.counter("gbnb_gateway_retry_backpressure_total", &[]),
        }
    }
}

/// One worker's buffered batch, with the channel its responses go back
/// over.
#[derive(Debug)]
struct PendingSubmission {
    envelopes: Vec<ShardEnvelope>,
    reply: Sender<Vec<Response>>,
}

#[derive(Debug, Default)]
struct Buffer {
    pending: Vec<PendingSubmission>,
    /// Total envelopes across `pending`.
    buffered: usize,
    /// Injected-clock stamp of the oldest pending submission.
    oldest_ns: u64,
}

/// Mean lock-hold (ns) below which the shards are considered
/// uncontended and the adaptive policy stops growing: batching buys
/// nothing when each serviced contact is this cheap.
const GROW_CONTENTION_NS: u64 = 200;

/// The shared collection tier in front of a [`BundleHandler`]: many
/// workers submit request batches, the gateway flushes them as combined
/// bundles (see the module docs for triggers and semantics).
///
/// All methods take `&self`; the buffer lives behind one mutex that is
/// held across the flush's `handle_bundle` call, so a submission can
/// never slip in between the buffer swap and the router contact and be
/// silently skipped by a final flush. Submitters that don't trigger a
/// flush only hold the lock long enough to append.
#[derive(Debug)]
pub struct ContactGateway<H: BundleHandler> {
    handler: H,
    policy: GatewayPolicy,
    /// The effective (possibly adaptively resized) size trigger.
    fan_in: AtomicUsize,
    metrics: GatewayMetrics,
    inner: Mutex<Buffer>,
}

impl<H: BundleHandler> ContactGateway<H> {
    /// A gateway collecting contacts for `handler` under `policy`,
    /// registering its `gbnb_gateway_*` metrics on the handler's
    /// registry.
    pub fn new(handler: H, policy: GatewayPolicy) -> Self {
        let policy = policy.clamped();
        let metrics = GatewayMetrics::register(&handler.metrics());
        metrics.fan_in.set(policy.fan_in as u64);
        ContactGateway {
            handler,
            policy,
            fan_in: AtomicUsize::new(policy.fan_in),
            metrics,
            inner: Mutex::new(Buffer::default()),
        }
    }

    /// The handler this gateway flushes into.
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// The configured fan-in policy.
    pub fn policy(&self) -> &GatewayPolicy {
        &self.policy
    }

    /// The effective fan-in right now — [`GatewayPolicy::fan_in`] under
    /// [`GatewayMode::Fixed`], the adaptively resized value otherwise.
    pub fn fan_in(&self) -> usize {
        self.fan_in.load(Ordering::Relaxed)
    }

    /// Requests currently buffered (waiting for a flush).
    pub fn buffered(&self) -> usize {
        self.inner.lock().expect("poisoned gateway").buffered
    }

    /// A copy of the aggregation counters, read back from the registry
    /// cells (the single source of truth).
    pub fn stats(&self) -> GatewayStats {
        let m = &self.metrics;
        let size_flushes = m.size_flushes.get();
        let sensitive_flushes = m.sensitive_flushes.get();
        let deadline_flushes = m.deadline_flushes.get();
        let forced_flushes = m.forced_flushes.get();
        GatewayStats {
            submissions: m.submissions.get(),
            requests: m.requests.get(),
            flushes: size_flushes + sensitive_flushes + deadline_flushes + forced_flushes,
            size_flushes,
            sensitive_flushes,
            deadline_flushes,
            forced_flushes,
            largest_bundle: m.largest_bundle.get(),
            fanin_grows: m.fanin_grows.get(),
            fanin_shrinks: m.fanin_shrinks.get(),
        }
    }

    /// Submits one worker's request batch at injected time `now_ns` and
    /// blocks until a flush serves it, returning one response per
    /// request in request order. An empty batch returns an empty reply
    /// without touching the buffer.
    ///
    /// The calling thread itself executes the flush when its submission
    /// trips a trigger; otherwise it parks on its reply channel until a
    /// later submitter, the deadline sweep ([`ContactGateway::flush_stale`])
    /// or a final [`ContactGateway::flush_now`] serves it.
    pub fn submit(&self, requests: Vec<Request>, now_ns: u64) -> Vec<Response> {
        if requests.is_empty() {
            return Vec::new();
        }
        let sensitive = requests.iter().any(|r| {
            matches!(
                r,
                Request::Join { .. } | Request::RequestWork { .. } | Request::Leave { .. }
            )
        });
        let envelopes: Vec<ShardEnvelope> = requests
            .into_iter()
            .map(|r| self.handler.envelope(r))
            .collect();
        let count = envelopes.len();
        let (tx, rx) = unbounded::<Vec<Response>>();
        {
            let mut buffer = self.inner.lock().expect("poisoned gateway");
            if buffer.pending.is_empty() {
                buffer.oldest_ns = now_ns;
            }
            self.metrics.submissions.inc();
            self.metrics.requests.add(count as u64);
            buffer.buffered += count;
            buffer.pending.push(PendingSubmission {
                envelopes,
                reply: tx,
            });
            // Trigger order mirrors urgency: a termination-sensitive
            // request must go out now whatever the buffer holds; a full
            // buffer flushes by size; a terminated handler never buffers
            // (nobody may come along later to flush a late straggler).
            let cause = if sensitive {
                Some(FlushCause::Sensitive)
            } else if buffer.buffered >= self.fan_in.load(Ordering::Relaxed) {
                Some(FlushCause::Size)
            } else if self.handler.is_terminated() {
                Some(FlushCause::Forced)
            } else {
                None
            };
            if let Some(cause) = cause {
                self.flush_locked(&mut buffer, now_ns, cause);
            }
        }
        // A closed channel means the gateway was torn down with the
        // submission unflushed; answer like a dead transport (the
        // worker loop treats an empty reply as termination).
        rx.recv().unwrap_or_default()
    }

    /// Flushes iff the oldest buffered submission has waited at least
    /// the policy delay at `now_ns` — the deadline trigger, driven
    /// periodically by the runtime's supervisor thread. Returns whether
    /// a flush happened. An empty buffer is free: no lock beyond the
    /// check, no router contact.
    pub fn flush_stale(&self, now_ns: u64) -> bool {
        let mut buffer = self.inner.lock().expect("poisoned gateway");
        if buffer.pending.is_empty() {
            return false;
        }
        let age = now_ns.saturating_sub(buffer.oldest_ns);
        self.metrics.buffered_age_ns.set(age);
        if age < self.policy.max_delay_ns {
            return false;
        }
        self.flush_locked(&mut buffer, now_ns, FlushCause::Deadline)
    }

    /// Unconditionally flushes whatever is buffered (the supervisor's
    /// final sweep before it exits, so no blocked submitter is ever
    /// stranded). Returns whether anything was flushed; an empty buffer
    /// is free.
    pub fn flush_now(&self, now_ns: u64) -> bool {
        let mut buffer = self.inner.lock().expect("poisoned gateway");
        self.flush_locked(&mut buffer, now_ns, FlushCause::Forced)
    }

    /// Concatenates the pending submissions into one shared bundle,
    /// serves it through the handler, and routes each slice of the
    /// reply back to its submitter. Called with the buffer lock held,
    /// so a concurrent submission either made it into this flush or
    /// observes the emptied buffer — never neither.
    fn flush_locked(&self, buffer: &mut Buffer, now_ns: u64, cause: FlushCause) -> bool {
        if buffer.pending.is_empty() {
            // An empty flush is free: no contact is counted anywhere
            // (pinned by a unit test alongside the router's own
            // empty-bundle guard).
            return false;
        }
        let age_ns = now_ns.saturating_sub(buffer.oldest_ns);
        let pending = std::mem::take(&mut buffer.pending);
        let mut bundle = Vec::with_capacity(buffer.buffered);
        buffer.buffered = 0;
        let mut splits: Vec<(usize, Sender<Vec<Response>>)> = Vec::with_capacity(pending.len());
        let mut total = 0usize;
        for submission in pending {
            total += submission.envelopes.len();
            splits.push((submission.envelopes.len(), submission.reply));
            bundle.extend(submission.envelopes);
        }
        let served = self.handler.handle_bundle(bundle, now_ns);
        let complete = served.len() == total;
        let mut retries = 0u64;
        let mut responses = served.into_iter();
        for (len, reply) in splits {
            let slice: Vec<Response> = if complete {
                responses
                    .by_ref()
                    .take(len)
                    .map(|(_, response)| response)
                    .collect()
            } else {
                // The handler died under this flush (a torn-down farmer
                // channel): every submitter gets the empty dead-transport
                // reply rather than someone else's responses.
                Vec::new()
            };
            retries += slice
                .iter()
                .filter(|r| matches!(r, Response::Retry))
                .count() as u64;
            // A dropped receiver (the submitter crashed between send
            // and reply) is fine — the coordinator effects stand.
            let _ = reply.send(slice);
        }
        self.metrics.largest_bundle.max(total as u64);
        self.metrics.bundle_requests.observe(total as u64);
        self.metrics.buffered_age_ns.set(age_ns);
        self.metrics.flush_age_ns.observe(age_ns);
        if retries > 0 {
            self.metrics.retry_backpressure.add(retries);
        }
        match cause {
            FlushCause::Size => self.metrics.size_flushes.inc(),
            FlushCause::Sensitive => self.metrics.sensitive_flushes.inc(),
            FlushCause::Deadline => self.metrics.deadline_flushes.inc(),
            FlushCause::Forced => self.metrics.forced_flushes.inc(),
        }
        self.adapt(cause, age_ns, retries);
        true
    }

    /// One adaptive-policy step after a flush: the decision inputs are
    /// the flush cause, how long the oldest submission waited, endgame
    /// `Retry` backpressure in the served bundle, and the handler's
    /// lock-contention hint. No-op under [`GatewayMode::Fixed`].
    fn adapt(&self, cause: FlushCause, age_ns: u64, retries: u64) {
        let GatewayMode::Adaptive {
            min_fan_in,
            max_fan_in,
        } = self.policy.mode
        else {
            return;
        };
        let current = self.fan_in.load(Ordering::Relaxed);
        let shrink =
            retries > 0 || self.handler.is_terminated() || matches!(cause, FlushCause::Deadline);
        let filled_fast = age_ns.saturating_mul(4) <= self.policy.max_delay_ns;
        let contended = self.handler.contention_ns() >= GROW_CONTENTION_NS;
        let next = if shrink {
            (current / 2).max(min_fan_in)
        } else if matches!(cause, FlushCause::Size) && filled_fast && contended {
            current.saturating_mul(2).min(max_fan_in)
        } else {
            current
        };
        if next == current {
            return;
        }
        if next > current {
            self.metrics.fanin_grows.inc();
        } else {
            self.metrics.fanin_shrinks.inc();
        }
        self.fan_in.store(next, Ordering::Relaxed);
        self.metrics.fan_in.set(next as u64);
    }
}

impl<'r> ContactGateway<&'r ShardRouter> {
    /// The router this gateway flushes into.
    pub fn router(&self) -> &'r ShardRouter {
        self.handler
    }
}
