//! Cross-worker contact gateway: many workers' request batches merged
//! into shared per-shard bundles.
//!
//! PR 4's coalescing lets one worker fold its *own* requests into a
//! bundle, but every worker still pays its own
//! [`ShardRouter::handle_bundle`] call — one lock acquisition per shard
//! it touches. With `W` workers and `S ≪ W` shards, the same shard's
//! lock is taken up to `W/S` times per contact window for work that
//! [`crate::Coordinator::apply_batch`] could fold in one pass (it
//! already accepts mixed-worker groups). The [`ContactGateway`] adds the
//! missing collection tier:
//!
//! ```text
//!   w0 ─┐                                  ┌─ shard 0 (1 lock/flush)
//!   w1 ─┤   submit(Vec<Request>)           ├─ shard 1 (1 lock/flush)
//!   ..  ├─► gateway buffer ──── flush ────►│     ...
//!   w15─┘   (size / deadline /             └─ shard S-1
//!            termination-sensitive)
//! ```
//!
//! * **Submission** — [`ContactGateway::submit`] stamps each request
//!   with its home shard and appends the batch to a shared buffer; the
//!   calling worker blocks until a flush serves it. Because a worker's
//!   requests all hash to the same home shard, a submission never
//!   straddles shards.
//! * **Flush triggers** — a flush fires when the buffer reaches the
//!   policy's fan-in (size), when the oldest submission has waited
//!   longer than the policy's delay ([`ContactGateway::flush_stale`],
//!   driven by the runtime's supervisor), when a submission carries a
//!   termination-sensitive request (`Join` / `RequestWork` / `Leave` —
//!   deferring one could stall the endgame behind an idle deadline), or
//!   when the router is already terminated (never strand a late
//!   submitter). Empty flushes are free: no router contact, no work.
//! * **Flush execution** — the buffered submissions are concatenated
//!   (arrival order, each submission's internal order preserved) into
//!   one [`ShardRouter::handle_bundle`] call: one lock acquisition per
//!   *touched shard* per flush, however many workers contributed. The
//!   responses come back in input order and are routed to each
//!   submitting worker over its reply channel, in its request order.
//!
//! Semantics are pinned by the property oracle in
//! `tests/gateway_props.rs`: a flush's outcome — every worker's
//! responses and the router state left behind — is identical to
//! replaying each submission through its own `handle_bundle` call,
//! submissions ordered by (home shard ascending, arrival order). That
//! replay order is exactly the grouped order `handle_bundle` already
//! guarantees for one combined bundle, so the gateway inherits the
//! batch oracle's guarantees (steal-and-retry at the sequential point,
//! endgame `Retry` in place, best-of-group solution broadcasts between
//! shard runs) without new coordinator code.
//!
//! The same aggregation exists event-driven in the grid simulator
//! (`SimConfig::gateway_fan_in`): per-shard queues collect many
//! simulated workers' update snapshots and deliver each queue as one
//! shared bundle per flush event.

use crate::{Request, Response, ShardEnvelope, ShardRouter};
use crossbeam::channel::{unbounded, Sender};
use std::sync::Mutex;

/// Fan-in policy of a [`ContactGateway`].
#[derive(Clone, Copy, Debug)]
pub struct GatewayPolicy {
    /// Buffered request (envelope) count that triggers a size flush —
    /// the fan-in the gateway tries to aggregate per shared bundle.
    /// Clamped to ≥ 1 (1 degenerates to per-submission delivery).
    pub fan_in: usize,
    /// Deadline flush: the oldest buffered submission never waits
    /// longer than this (injected-clock nanoseconds). A submitting
    /// worker is silent towards the coordinator while it waits, so this
    /// must stay well below
    /// [`crate::CoordinatorConfig::holder_timeout_ns`] — the runtime
    /// asserts it.
    pub max_delay_ns: u64,
}

impl GatewayPolicy {
    /// A policy flushing at `fan_in` buffered requests or after
    /// `max_delay_ns`, whichever comes first.
    pub fn new(fan_in: usize, max_delay_ns: u64) -> Self {
        GatewayPolicy {
            fan_in: fan_in.max(1),
            max_delay_ns: max_delay_ns.max(1),
        }
    }

    /// Checks this policy against the coordinator it would front: the
    /// flush delay must stay strictly below the holder timeout, or
    /// routing contacts through the gateway would get healthy workers
    /// expired (and their work redone) every flush window. Every
    /// construction path that pairs a gateway with a coordinator — the
    /// runtime, and the socket server in `gridbnb-net` — funnels
    /// through this one check.
    pub fn validate_against(
        &self,
        coordinator: &crate::CoordinatorConfig,
    ) -> Result<(), crate::ConfigError> {
        if self.max_delay_ns >= coordinator.holder_timeout_ns {
            return Err(crate::ConfigError::GatewayDelayTooLong {
                delay_ns: self.max_delay_ns,
                timeout_ns: coordinator.holder_timeout_ns,
            });
        }
        Ok(())
    }
}

/// Aggregation counters of one [`ContactGateway`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Worker batches submitted.
    pub submissions: u64,
    /// Requests those batches carried.
    pub requests: u64,
    /// Non-empty flushes executed (empty flushes are free and not
    /// counted — there is nothing they could have amortized).
    pub flushes: u64,
    /// Flushes triggered by the fan-in size threshold.
    pub size_flushes: u64,
    /// Flushes forced by a termination-sensitive request.
    pub sensitive_flushes: u64,
    /// Flushes forced by the deadline ([`ContactGateway::flush_stale`]).
    pub deadline_flushes: u64,
    /// Unconditional flushes ([`ContactGateway::flush_now`], and
    /// submissions arriving after global termination).
    pub forced_flushes: u64,
    /// Requests in the largest shared bundle flushed so far.
    pub largest_bundle: u64,
}

/// Why a flush fired (internal; tallied into [`GatewayStats`]).
#[derive(Clone, Copy, Debug)]
enum FlushCause {
    Size,
    Sensitive,
    Deadline,
    Forced,
}

/// One worker's buffered batch, with the channel its responses go back
/// over.
#[derive(Debug)]
struct PendingSubmission {
    envelopes: Vec<ShardEnvelope>,
    reply: Sender<Vec<Response>>,
}

#[derive(Debug, Default)]
struct Buffer {
    pending: Vec<PendingSubmission>,
    /// Total envelopes across `pending`.
    buffered: usize,
    /// Injected-clock stamp of the oldest pending submission.
    oldest_ns: u64,
    stats: GatewayStats,
}

/// The shared collection tier in front of a [`ShardRouter`]: many
/// workers submit request batches, the gateway flushes them as combined
/// bundles (see the module docs for triggers and semantics).
///
/// All methods take `&self`; the buffer lives behind one mutex that is
/// held across the flush's `handle_bundle` call, so a submission can
/// never slip in between the buffer swap and the router contact and be
/// silently skipped by a final flush. Submitters that don't trigger a
/// flush only hold the lock long enough to append.
#[derive(Debug)]
pub struct ContactGateway<'r> {
    router: &'r ShardRouter,
    policy: GatewayPolicy,
    inner: Mutex<Buffer>,
}

impl<'r> ContactGateway<'r> {
    /// A gateway collecting contacts for `router` under `policy`.
    pub fn new(router: &'r ShardRouter, policy: GatewayPolicy) -> Self {
        ContactGateway {
            router,
            policy: GatewayPolicy::new(policy.fan_in, policy.max_delay_ns),
            inner: Mutex::new(Buffer::default()),
        }
    }

    /// The router this gateway flushes into.
    pub fn router(&self) -> &ShardRouter {
        self.router
    }

    /// The active fan-in policy.
    pub fn policy(&self) -> &GatewayPolicy {
        &self.policy
    }

    /// Requests currently buffered (waiting for a flush).
    pub fn buffered(&self) -> usize {
        self.inner.lock().expect("poisoned gateway").buffered
    }

    /// A copy of the aggregation counters.
    pub fn stats(&self) -> GatewayStats {
        self.inner.lock().expect("poisoned gateway").stats
    }

    /// Submits one worker's request batch at injected time `now_ns` and
    /// blocks until a flush serves it, returning one response per
    /// request in request order. An empty batch returns an empty reply
    /// without touching the buffer.
    ///
    /// The calling thread itself executes the flush when its submission
    /// trips a trigger; otherwise it parks on its reply channel until a
    /// later submitter, the deadline sweep ([`ContactGateway::flush_stale`])
    /// or a final [`ContactGateway::flush_now`] serves it.
    pub fn submit(&self, requests: Vec<Request>, now_ns: u64) -> Vec<Response> {
        if requests.is_empty() {
            return Vec::new();
        }
        let sensitive = requests.iter().any(|r| {
            matches!(
                r,
                Request::Join { .. } | Request::RequestWork { .. } | Request::Leave { .. }
            )
        });
        let envelopes: Vec<ShardEnvelope> = requests
            .into_iter()
            .map(|r| self.router.envelope(r))
            .collect();
        let count = envelopes.len();
        let (tx, rx) = unbounded::<Vec<Response>>();
        {
            let mut buffer = self.inner.lock().expect("poisoned gateway");
            if buffer.pending.is_empty() {
                buffer.oldest_ns = now_ns;
            }
            buffer.stats.submissions += 1;
            buffer.stats.requests += count as u64;
            buffer.buffered += count;
            buffer.pending.push(PendingSubmission {
                envelopes,
                reply: tx,
            });
            // Trigger order mirrors urgency: a termination-sensitive
            // request must go out now whatever the buffer holds; a full
            // buffer flushes by size; a terminated router never buffers
            // (nobody may come along later to flush a late straggler).
            let cause = if sensitive {
                Some(FlushCause::Sensitive)
            } else if buffer.buffered >= self.policy.fan_in {
                Some(FlushCause::Size)
            } else if self.router.is_terminated() {
                Some(FlushCause::Forced)
            } else {
                None
            };
            if let Some(cause) = cause {
                self.flush_locked(&mut buffer, now_ns, cause);
            }
        }
        // A closed channel means the gateway was torn down with the
        // submission unflushed; answer like a dead transport (the
        // worker loop treats an empty reply as termination).
        rx.recv().unwrap_or_default()
    }

    /// Flushes iff the oldest buffered submission has waited at least
    /// the policy delay at `now_ns` — the deadline trigger, driven
    /// periodically by the runtime's supervisor thread. Returns whether
    /// a flush happened. An empty buffer is free: no lock beyond the
    /// check, no router contact.
    pub fn flush_stale(&self, now_ns: u64) -> bool {
        let mut buffer = self.inner.lock().expect("poisoned gateway");
        if buffer.pending.is_empty()
            || now_ns.saturating_sub(buffer.oldest_ns) < self.policy.max_delay_ns
        {
            return false;
        }
        self.flush_locked(&mut buffer, now_ns, FlushCause::Deadline)
    }

    /// Unconditionally flushes whatever is buffered (the supervisor's
    /// final sweep before it exits, so no blocked submitter is ever
    /// stranded). Returns whether anything was flushed; an empty buffer
    /// is free.
    pub fn flush_now(&self, now_ns: u64) -> bool {
        let mut buffer = self.inner.lock().expect("poisoned gateway");
        self.flush_locked(&mut buffer, now_ns, FlushCause::Forced)
    }

    /// Concatenates the pending submissions into one shared bundle,
    /// serves it through the router, and routes each slice of the reply
    /// back to its submitter. Called with the buffer lock held, so a
    /// concurrent submission either made it into this flush or observes
    /// the emptied buffer — never neither.
    fn flush_locked(&self, buffer: &mut Buffer, now_ns: u64, cause: FlushCause) -> bool {
        if buffer.pending.is_empty() {
            // An empty flush is free: no contact is counted anywhere
            // (pinned by a unit test alongside the router's own
            // empty-bundle guard).
            return false;
        }
        let pending = std::mem::take(&mut buffer.pending);
        let mut bundle = Vec::with_capacity(buffer.buffered);
        buffer.buffered = 0;
        let mut splits: Vec<(usize, Sender<Vec<Response>>)> = Vec::with_capacity(pending.len());
        let mut total = 0usize;
        for submission in pending {
            total += submission.envelopes.len();
            splits.push((submission.envelopes.len(), submission.reply));
            bundle.extend(submission.envelopes);
        }
        let mut responses = self.router.handle_bundle(bundle, now_ns).into_iter();
        for (len, reply) in splits {
            let slice: Vec<Response> = responses
                .by_ref()
                .take(len)
                .map(|(_, response)| response)
                .collect();
            debug_assert_eq!(slice.len(), len, "a response per submitted request");
            // A dropped receiver (the submitter crashed between send
            // and reply) is fine — the coordinator effects stand.
            let _ = reply.send(slice);
        }
        buffer.stats.flushes += 1;
        buffer.stats.largest_bundle = buffer.stats.largest_bundle.max(total as u64);
        match cause {
            FlushCause::Size => buffer.stats.size_flushes += 1,
            FlushCause::Sensitive => buffer.stats.sensitive_flushes += 1,
            FlushCause::Deadline => buffer.stats.deadline_flushes += 1,
            FlushCause::Forced => buffer.stats.forced_flushes += 1,
        }
        true
    }
}
