//! Multi-threaded farmer–worker runtime over crossbeam channels.
//!
//! One farmer thread owns the [`Coordinator`]; worker threads run
//! [`IntervalExplorer`]s and speak the pull-model protocol: every message
//! is worker-initiated, the farmer only replies. Workers interleave
//! exploration (`poll_nodes` node visits per slice) with protocol
//! contacts, exactly like the paper's B&B processes that "regularly
//! contact the coordinator to update their interval".
//!
//! Fault tolerance is exercisable in-process: a [`ChaosConfig`] makes
//! chosen workers "crash" (silently abandon their explorer, losing all
//! state) and optionally rejoin under a fresh identity. Recovery follows
//! the paper: the coordinator still holds the crashed worker's last
//! interval copy; once the holder is expired (or the interval is
//! duplicated below the threshold) the work is redistributed. Runs with
//! crashes must still return the exact optimum — the integration tests
//! assert it.

use crate::checkpoint::CheckpointStore;
use crate::{Coordinator, CoordinatorConfig, CoordinatorStats, Request, Response, WorkerId};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gridbnb_bigint::UBig;
use gridbnb_coding::Interval;
use gridbnb_engine::{IntervalExplorer, Problem, SearchStats, Solution};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Periodic farmer checkpointing policy.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Where the two files go.
    pub store: CheckpointStore,
    /// Save period (the paper's coordinator checkpointed every 30 min).
    pub every: Duration,
}

/// One scripted worker crash.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// Index of the worker thread that crashes.
    pub worker_index: usize,
    /// The crash fires once the worker has explored this many nodes
    /// (across all its units).
    pub after_nodes: u64,
    /// Whether the host comes back (rejoining under a fresh worker id).
    pub rejoin: bool,
}

/// Fault-injection script.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Crashes to inject (at most one per worker index is honored).
    pub crashes: Vec<CrashPlan>,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Node visits explored between two coordinator contacts.
    pub poll_nodes: u64,
    /// Coordinator knobs (threshold, timeout, initial upper bound).
    pub coordinator: CoordinatorConfig,
    /// Relative worker powers (cycled if shorter than `workers`);
    /// defaults to homogeneous 100.
    pub worker_powers: Vec<u64>,
    /// Optional periodic checkpointing.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Optional fault injection.
    pub chaos: Option<ChaosConfig>,
}

impl RuntimeConfig {
    /// A sensible default for `workers` threads.
    pub fn new(workers: usize) -> Self {
        RuntimeConfig {
            workers,
            poll_nodes: 2_000,
            coordinator: CoordinatorConfig::default(),
            worker_powers: vec![100],
            checkpoint: None,
            chaos: None,
        }
    }

    /// Sets the initial upper bound (from a heuristic, like the paper's
    /// 3681 from iterated greedy).
    pub fn with_initial_upper_bound(mut self, ub: u64) -> Self {
        self.coordinator.initial_upper_bound = Some(ub);
        self
    }
}

/// Per-worker outcome.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Work units this thread processed.
    pub units: u64,
    /// Search counters summed over its units.
    pub stats: SearchStats,
    /// Update (checkpoint) messages it sent.
    pub checkpoint_ops: u64,
    /// Crashes it simulated.
    pub crashes: u64,
    /// Node visits presumed redundant: explored in slices whose update
    /// ack came back empty (the unit had already been completed
    /// elsewhere) or lost in a crash (someone re-explores them).
    pub redundant_nodes: u64,
    /// Total interval length it consumed (including progress lost in
    /// crashes, which other workers re-explore).
    pub consumed: UBig,
    /// Time spent exploring (busy), as opposed to waiting on the farmer.
    pub busy: Duration,
    /// Wall time of the thread.
    pub wall: Duration,
}

/// Outcome of a parallel resolution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Best solution found (none if the initial bound was optimal).
    pub solution: Option<Solution>,
    /// `min(initial upper bound, best found)`: the proven optimum once
    /// the run completes.
    pub proven_optimum: Option<u64>,
    /// Farmer-side protocol counters.
    pub coordinator_stats: CoordinatorStats,
    /// Per-worker outcomes.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Total time the farmer spent handling requests and checkpointing.
    pub farmer_busy: Duration,
    /// Checkpoint files written by the farmer.
    pub farmer_checkpoints: u64,
    /// Length of the root interval (for redundancy accounting).
    pub root_length: UBig,
}

impl RunReport {
    /// Total nodes explored by all workers.
    pub fn total_explored(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.explored).sum()
    }

    /// Total worker busy time.
    pub fn worker_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }

    /// Mean worker CPU exploitation: busy time over wall time (the
    /// paper reports 97 %).
    pub fn worker_exploitation(&self) -> f64 {
        let wall: f64 = self.workers.iter().map(|w| w.wall.as_secs_f64()).sum();
        if wall == 0.0 {
            return 0.0;
        }
        self.worker_busy().as_secs_f64() / wall
    }

    /// Farmer CPU exploitation: farmer busy time over run wall time (the
    /// paper reports 1.7 %).
    pub fn farmer_exploitation(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.farmer_busy.as_secs_f64() / self.wall.as_secs_f64()
    }

    /// Fraction of consumed interval length that was covered more than
    /// once (duplication, shrink lag, crash re-exploration). Measured in
    /// leaf numbers, so a single pruned-subtree jump across a stolen
    /// boundary inflates it — see [`RunReport::node_redundancy`] for the
    /// node-visit measure the paper's Table 2 reports (0.39 %).
    pub fn redundancy(&self) -> f64 {
        let mut consumed = UBig::zero();
        for w in &self.workers {
            consumed += &w.consumed;
        }
        if consumed.is_zero() {
            return 0.0;
        }
        let redundant = consumed.saturating_sub(&self.root_length);
        redundant.ratio(&consumed)
    }

    /// Estimated fraction of node visits that were redundant — slices
    /// whose result was discarded (unit already completed elsewhere, or
    /// crash-lost work that someone re-explored). Comparable to the
    /// paper's "Redundant nodes: 0.39 %".
    pub fn node_redundancy(&self) -> f64 {
        let total = self.total_explored();
        if total == 0 {
            return 0.0;
        }
        let redundant: u64 = self.workers.iter().map(|w| w.redundant_nodes).sum();
        redundant as f64 / total as f64
    }
}

type Envelope = (Request, Sender<Response>);

/// Runs the grid-enabled B&B on `problem` with real threads.
///
/// Blocks until the whole root interval is explored or eliminated, then
/// returns the proof-of-optimality report.
pub fn run<P: Problem>(problem: &P, config: &RuntimeConfig) -> RunReport {
    let shape = problem.shape();
    let root = shape.root_range();
    run_on(problem, root, config)
}

/// Runs on an explicit root interval (used to resume from a checkpoint:
/// restore the coordinator yourself and call [`run_with_coordinator`]).
pub fn run_on<P: Problem>(problem: &P, root: Interval, config: &RuntimeConfig) -> RunReport {
    let coordinator = Coordinator::new(root, config.coordinator.clone());
    run_with_coordinator(problem, coordinator, config)
}

/// Runs with a pre-built coordinator (fresh or restored from a
/// [`CheckpointStore`]).
pub fn run_with_coordinator<P: Problem>(
    problem: &P,
    coordinator: Coordinator,
    config: &RuntimeConfig,
) -> RunReport {
    assert!(config.workers > 0, "need at least one worker");
    let started = Instant::now();
    let root_length = coordinator.root().length();
    let (req_tx, req_rx) = unbounded::<Envelope>();
    let fresh_ids = AtomicU64::new(config.workers as u64);

    let mut worker_reports: Vec<WorkerReport> = Vec::new();
    let mut farmer_out: Option<(Coordinator, Duration, u64)> = None;

    crossbeam::thread::scope(|scope| {
        let farmer = scope.spawn(|_| farmer_loop(coordinator, req_rx, config, started));
        let mut handles = Vec::new();
        for index in 0..config.workers {
            let req_tx = req_tx.clone();
            let fresh_ids = &fresh_ids;
            let power = config.worker_powers[index % config.worker_powers.len().max(1)];
            let crash = config
                .chaos
                .as_ref()
                .and_then(|c| c.crashes.iter().find(|p| p.worker_index == index))
                .copied();
            handles.push(scope.spawn(move |_| {
                worker_loop(problem, index, power, crash, req_tx, fresh_ids, config)
            }));
        }
        // The farmer's receiver disconnects when every worker sender is
        // dropped — including ours.
        drop(req_tx);
        for h in handles {
            worker_reports.push(h.join().expect("worker thread panicked"));
        }
        farmer_out = Some(farmer.join().expect("farmer thread panicked"));
    })
    .expect("scope panicked");

    let (coordinator, farmer_busy, farmer_checkpoints) = farmer_out.expect("farmer result");
    let solution = coordinator.solution().cloned();
    RunReport {
        proven_optimum: coordinator.cutoff(),
        solution,
        coordinator_stats: *coordinator.stats(),
        workers: worker_reports,
        wall: started.elapsed(),
        farmer_busy,
        farmer_checkpoints,
        root_length,
    }
}

fn farmer_loop(
    mut coordinator: Coordinator,
    req_rx: Receiver<Envelope>,
    config: &RuntimeConfig,
    started: Instant,
) -> (Coordinator, Duration, u64) {
    let mut busy = Duration::ZERO;
    let mut checkpoints = 0u64;
    let mut last_checkpoint = Instant::now();
    let tick = config
        .checkpoint
        .as_ref()
        .map(|p| p.every)
        .unwrap_or(Duration::from_millis(50));
    loop {
        // Sleep until a request arrives, the next checkpoint is due, or
        // the earliest holder becomes expirable — the coordinator's
        // heartbeat index makes that instant an O(1) query, so no
        // periodic full sweep is needed.
        let now_ns = started.elapsed().as_nanos() as u64;
        let wait = coordinator
            .next_expiry_at()
            .map(|t| Duration::from_nanos(t.saturating_sub(now_ns)).max(Duration::from_millis(1)))
            .unwrap_or(tick)
            .min(tick);
        match req_rx.recv_timeout(wait) {
            Ok((request, reply_tx)) => {
                let t0 = Instant::now();
                let now_ns = started.elapsed().as_nanos() as u64;
                let response = coordinator.handle(request, now_ns);
                busy += t0.elapsed();
                // A dropped worker (crash between send and reply) is fine.
                let _ = reply_tx.send(response);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        let t0 = Instant::now();
        {
            // Expiry visits only holders that are actually stale; with
            // none due this is a constant-time check.
            let now_ns = started.elapsed().as_nanos() as u64;
            coordinator.expire_stale_holders(now_ns);
        }
        if let Some(policy) = &config.checkpoint {
            if last_checkpoint.elapsed() >= policy.every {
                if policy.store.save(&coordinator).is_ok() {
                    checkpoints += 1;
                }
                last_checkpoint = Instant::now();
            }
        }
        busy += t0.elapsed();
    }
    // Final checkpoint so a restart sees the terminal state.
    if let Some(policy) = &config.checkpoint {
        let t0 = Instant::now();
        if policy.store.save(&coordinator).is_ok() {
            checkpoints += 1;
        }
        busy += t0.elapsed();
    }
    (coordinator, busy, checkpoints)
}

fn worker_loop<P: Problem>(
    problem: &P,
    index: usize,
    power: u64,
    crash: Option<CrashPlan>,
    req_tx: Sender<Envelope>,
    fresh_ids: &AtomicU64,
    config: &RuntimeConfig,
) -> WorkerReport {
    let thread_start = Instant::now();
    let (reply_tx, reply_rx) = unbounded::<Response>();
    let mut report = WorkerReport::default();
    let mut id = WorkerId(index as u64);
    let mut joining = true;
    let mut crash = crash;

    let send = |req: Request| -> Option<Response> {
        req_tx.send((req, reply_tx.clone())).ok()?;
        reply_rx.recv().ok()
    };

    'units: loop {
        let request = if joining {
            Request::Join { worker: id, power }
        } else {
            Request::RequestWork { worker: id, power }
        };
        joining = false;
        let Some(response) = send(request) else {
            break;
        };
        let (interval, cutoff) = match response {
            Response::Work { interval, cutoff } => (interval, cutoff),
            Response::Terminate => break,
            other => unreachable!("unexpected work response: {other:?}"),
        };
        report.units += 1;
        let mut explorer = IntervalExplorer::new(problem, &interval, cutoff);
        let unit_start_position = explorer.position().clone();

        loop {
            let t0 = Instant::now();
            explorer.run(config.poll_nodes);
            report.busy += t0.elapsed();

            // Solution sharing rule 2: report improvements immediately.
            if let Some(solution) = explorer.take_fresh_best() {
                if let Some(Response::SolutionAck { cutoff: Some(c) }) =
                    send(Request::ReportSolution {
                        worker: id,
                        solution,
                    })
                {
                    explorer.observe_external_cutoff(c);
                }
            }

            // Scripted crash: silently lose everything.
            if let Some(plan) = crash {
                if report.stats.explored + explorer.stats().explored >= plan.after_nodes {
                    crash = None;
                    report.crashes += 1;
                    report.consumed += &explorer.position().saturating_sub(&unit_start_position);
                    report.stats.merge(explorer.stats());
                    if plan.rejoin {
                        id = WorkerId(fresh_ids.fetch_add(1, Ordering::Relaxed));
                        joining = true;
                        continue 'units;
                    }
                    break 'units;
                }
            }

            if explorer.is_exhausted() {
                break;
            }

            // Pull-model checkpoint: report the live interval, adopt the
            // intersection, refresh the cutoff (solution sharing rule 3).
            let Some(ack) = send(Request::Update {
                worker: id,
                interval: explorer.current_interval(),
            }) else {
                break 'units;
            };
            report.checkpoint_ops += 1;
            match ack {
                Response::UpdateAck { interval, cutoff } => {
                    explorer.intersect_with(&interval);
                    if let Some(c) = cutoff {
                        explorer.observe_external_cutoff(c);
                    }
                }
                Response::Terminate => break 'units,
                other => unreachable!("unexpected update response: {other:?}"),
            }
        }

        report.consumed += &explorer.position().saturating_sub(&unit_start_position);
        report.stats.merge(explorer.stats());
    }
    report.wall = thread_start.elapsed();
    report
}
