//! Multi-threaded farmer–worker runtime.
//!
//! With one shard (the default), a farmer thread owns the
//! [`Coordinator`] and worker threads speak the pull-model protocol over
//! crossbeam channels: every message is worker-initiated, the farmer
//! only replies. Workers interleave exploration (`poll_nodes` node
//! visits per slice) with protocol contacts, exactly like the paper's
//! B&B processes that "regularly contact the coordinator to update
//! their interval".
//!
//! With [`RuntimeConfig::shards`] > 1, the farmer funnel disappears:
//! workers contact their home shard of a [`ShardRouter`] directly (each
//! shard is an independently locked [`Coordinator`]), so contacts to
//! different shards proceed in parallel instead of serializing through
//! one channel. A light supervisor thread takes over the farmer's
//! housekeeping (stale-holder expiry, periodic checkpoints). Work
//! stealing between shards and the shared non-empty count keep the
//! exactness guarantee: runs terminate only when every shard's
//! `INTERVALS` is empty.
//!
//! Fault tolerance is exercisable in-process: a [`ChaosConfig`] makes
//! chosen workers "crash" (silently abandon their explorer, losing all
//! state) and optionally rejoin under a fresh identity. Recovery follows
//! the paper: the coordinator still holds the crashed worker's last
//! interval copy; once the holder is expired (or the interval is
//! duplicated below the threshold) the work is redistributed. Runs with
//! crashes must still return the exact optimum — the integration tests
//! assert it.

use crate::checkpoint::CheckpointStore;
use crate::storage::StorageBackend;
use crate::trace::{RunTrace, TraceMeta};
use crate::transport::{
    Envelope, GatewayTransport, ProtocolError, RouterTransport, Transport, TransportError,
};
use crate::wal::WalStore;
use crate::{
    BundleHandler, ConfigError, ContactGateway, Coordinator, CoordinatorConfig, CoordinatorStats,
    GatewayPolicy, GatewayStats, Request, Response, ShardEnvelope, ShardId, ShardRouter, WorkerId,
};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gridbnb_bigint::UBig;
use gridbnb_coding::Interval;
use gridbnb_engine::{IntervalExplorer, Problem, SearchStats, Solution};
use gridbnb_metrics::{latency_buckets_ns, Counter, Histogram, MetricsRegistry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Periodic farmer checkpointing policy.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Where the two files go.
    pub store: CheckpointStore,
    /// Save period (the paper's coordinator checkpointed every 30 min).
    pub every: Duration,
}

/// Durable coordinator state: a write-ahead operation log plus
/// generational snapshots behind a pluggable [`StorageBackend`] (see
/// [`crate::wal`]).
///
/// With a policy, the run journals every coordinator state change
/// (interval inserts/removes/shrinks, solution improvements) into
/// per-shard CRC-framed segments as it happens, and the supervisor
/// folds the log into a fresh snapshot every `compact_every`. A process
/// killed at any instant recovers to its exact pre-crash interval sets
/// with [`WalStore::recover`] — rebuild the router via
/// [`ShardRouter::restore`] and run again with the same policy; the new
/// run opens a fresh log epoch on top of the old one.
#[derive(Clone, Debug)]
pub struct DurabilityPolicy {
    /// Where the manifest, snapshots and per-shard log segments live
    /// ([`crate::MemoryBackend`], [`crate::FileBackend`],
    /// [`crate::ShardDirBackend`], or anything else implementing
    /// [`StorageBackend`]).
    pub backend: Arc<dyn StorageBackend>,
    /// Compaction period: how often the grown log is folded into a
    /// snapshot, bounding recovery replay time. The paper's coordinator
    /// checkpointed every 30 min; tests compact every few milliseconds.
    pub compact_every: Duration,
}

/// One scripted worker crash.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// Index of the worker thread that crashes.
    pub worker_index: usize,
    /// The crash fires once the worker has explored this many nodes
    /// (across all its units).
    pub after_nodes: u64,
    /// Whether the host comes back (rejoining under a fresh worker id).
    pub rejoin: bool,
}

/// Fault-injection script.
#[derive(Clone, Debug, Default)]
pub struct ChaosConfig {
    /// Crashes to inject (at most one per worker index is honored).
    pub crashes: Vec<CrashPlan>,
}

/// Contact-coalescing policy: how many exploration slices a worker
/// folds into one coordinator contact.
///
/// With no policy a worker contacts the coordinator after **every**
/// `poll_nodes` slice (the paper's behavior — which is exactly how its
/// farmer ended up handling ~2 M update operations). With a policy, the
/// worker keeps exploring and ships one combined checkpoint per
/// `slices_per_contact` slices; an improving solution still flushes
/// immediately (solution sharing rule 2) as a single
/// [`Request::UpdateAndReport`], and termination-sensitive requests
/// (`RequestWork`, `Join`, `Leave`) always flush the buffer — carrying
/// any unreported solution in the same bundle.
#[derive(Clone, Debug)]
pub struct CoalescePolicy {
    /// Exploration slices folded into one periodic contact (≥ 1; 1 is
    /// the classic one-contact-per-slice behavior).
    pub slices_per_contact: u64,
    /// Deadline flush: a worker holding work never stays silent longer
    /// than this, whatever the slice count says — it must keep beating
    /// the coordinator's holder timeout or coalescing would get healthy
    /// workers expired. Keep it well below
    /// [`CoordinatorConfig::holder_timeout_ns`].
    pub max_silence: Duration,
}

/// Retry policy for transient transport failures: how a worker reacts
/// when a contact fails with an error whose
/// [`TransportError::is_transient`] is `true` (I/O hiccups, timeouts).
/// The worker re-sends the same bundle after an exponentially growing
/// backoff; permanent errors ([`TransportError::Closed`], protocol
/// violations) are never retried. Irrelevant for the in-process
/// transports, which never fail transiently — this exists for the
/// socket transport in `gridbnb-net`, where a reconnect between two
/// attempts is routine.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per contact (the first try included); clamped to
    /// ≥ 1. The default of 4 rides out a coordinator restart at the
    /// default backoff without approaching any sane holder timeout.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
        }
    }
}

/// Replicable-search policy (after Archibald et al., *Replicable
/// Parallel Branch and Bound Search*): same seed, same search.
///
/// A replicable run replaces the throughput-tuned heuristics whose
/// outcome depends on thread timing with **ordered rules** that are
/// pure functions of the interval state:
///
/// * steal victim = the shard whose donatable piece has the lowest
///   left endpoint (seed-rotated scan breaks exact ties);
/// * donation = the largest *ordered* candidate
///   ([`Coordinator::steal_ordered`] — tier, then length, then lowest
///   left endpoint) instead of entry-vector position.
///
/// With [`ReplicablePolicy::deterministic`] set the run is driven by a
/// single-threaded scheduler over logical workers on a logical clock —
/// two runs with the same seed produce **byte-identical** traces and
/// identical per-shard counters (the headline property test). With it
/// clear, the ordered rules and the trace run on real threads: the
/// trace stays replayable (every event is recorded inside the shard
/// critical section that produced it), but event *order* may vary
/// between runs — that's the configuration the throughput benchmark
/// gates, since byte-identity is impossible with racing threads.
#[derive(Clone, Copy, Debug)]
pub struct ReplicablePolicy {
    /// Tie-break seed: rotates the victim scan and the deterministic
    /// scheduler's worker permutation.
    pub seed: u64,
    /// Record a [`RunTrace`] of every handout, journal delta, steal
    /// and cutoff broadcast (returned in [`RunReport::trace`]).
    pub record_trace: bool,
    /// Drive the run on one thread over a logical clock for
    /// byte-identical traces (see the type docs).
    pub deterministic: bool,
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Number of coordinator shards. `1` (the default) runs the classic
    /// single farmer thread behind a request channel; `> 1` partitions
    /// the root range across a [`ShardRouter`] that workers contact
    /// directly, multiplying contact throughput.
    pub shards: usize,
    /// Node visits explored between two coordinator contacts.
    pub poll_nodes: u64,
    /// Optional contact coalescing (`None` = contact every slice).
    pub coalesce: Option<CoalescePolicy>,
    /// Optional cross-worker contact gateway (`None` = every worker
    /// contacts its home shard directly). With a policy, workers submit
    /// their request batches to a shared [`ContactGateway`] that merges
    /// many workers' contacts into one bundle per flush — one lock
    /// acquisition per *touched shard* per flush instead of one per
    /// worker. Orthogonal to [`RuntimeConfig::coalesce`] (which folds
    /// one worker's slices); the two compose. A gateway at `shards = 1`
    /// runs through a single-shard [`ShardRouter`] (response-identical
    /// to the bare coordinator, property-pinned).
    pub gateway: Option<GatewayPolicy>,
    /// Coordinator knobs (threshold, timeout, initial upper bound).
    pub coordinator: CoordinatorConfig,
    /// Relative worker powers (cycled if shorter than `workers`);
    /// defaults to homogeneous 100.
    pub worker_powers: Vec<u64>,
    /// Optional periodic checkpointing.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Optional durable operation log (see [`DurabilityPolicy`]). Runs
    /// with a policy always take the router path, whatever the shard
    /// count — the journal hangs off the [`ShardRouter`].
    pub durability: Option<DurabilityPolicy>,
    /// Optional fault injection.
    pub chaos: Option<ChaosConfig>,
    /// Pooled frontier exploration (the default): workers expand whole
    /// sibling pools and bound them through one
    /// [`Problem::lower_bound_batch`] call per pool instead of one
    /// scalar call per node. Decision-equivalent to scalar exploration
    /// (property-pinned), so this only changes throughput, never the
    /// search. `false` restores the node-at-a-time explorer.
    pub pooling: bool,
    /// Optional replicable mode (see [`ReplicablePolicy`]): ordered
    /// steal rules, an event trace, and — when `deterministic` — a
    /// single-threaded logical-clock driver producing byte-identical
    /// traces per seed. Runs with a policy always take the router
    /// path.
    pub replicable: Option<ReplicablePolicy>,
    /// How workers retry contacts that fail transiently (see
    /// [`RetryPolicy`]).
    pub transport_retry: RetryPolicy,
    /// Registry every layer of the run records into (`None` = a private
    /// registry per run, still populated — [`RunReport`] totals come
    /// from the same cells either way). Inject one to scrape worker,
    /// coordinator, gateway and router series together, e.g. over the
    /// wire through `gridbnb-net`.
    pub metrics: Option<MetricsRegistry>,
}

impl RuntimeConfig {
    /// A sensible default for `workers` threads.
    pub fn new(workers: usize) -> Self {
        RuntimeConfig {
            workers,
            shards: 1,
            poll_nodes: 2_000,
            coalesce: None,
            gateway: None,
            coordinator: CoordinatorConfig::default(),
            worker_powers: vec![100],
            checkpoint: None,
            durability: None,
            chaos: None,
            pooling: true,
            replicable: None,
            transport_retry: RetryPolicy::default(),
            metrics: None,
        }
    }

    /// Enables fully deterministic replicable mode: ordered steal
    /// rules, a recorded [`RunTrace`], and the single-threaded
    /// logical-clock driver — two runs with the same `seed` produce
    /// byte-identical traces (see [`ReplicablePolicy`]).
    pub fn with_replicable(mut self, seed: u64) -> Self {
        self.replicable = Some(ReplicablePolicy {
            seed,
            record_trace: true,
            deterministic: true,
        });
        self
    }

    /// Replicable *rules* on real threads: ordered steals and a
    /// replayable trace, but OS scheduling still orders the events —
    /// the configuration the trace-overhead benchmark measures.
    pub fn with_replicable_threads(mut self, seed: u64) -> Self {
        self.replicable = Some(ReplicablePolicy {
            seed,
            record_trace: true,
            deterministic: false,
        });
        self
    }

    /// Records the run into `registry` (see [`RuntimeConfig::metrics`]).
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// Enables or disables pooled frontier exploration (see
    /// [`RuntimeConfig::pooling`]; on by default).
    pub fn with_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Sets the initial upper bound (from a heuristic, like the paper's
    /// 3681 from iterated greedy).
    pub fn with_initial_upper_bound(mut self, ub: u64) -> Self {
        self.coordinator.initial_upper_bound = Some(ub);
        self
    }

    /// Sets the shard count (see [`RuntimeConfig::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Attaches a durable operation log on `backend`, compacted every
    /// `compact_every` (see [`DurabilityPolicy`]).
    pub fn with_durability(
        mut self,
        backend: Arc<dyn StorageBackend>,
        compact_every: Duration,
    ) -> Self {
        self.durability = Some(DurabilityPolicy {
            backend,
            compact_every,
        });
        self
    }

    /// Enables contact coalescing at `slices_per_contact` slices per
    /// periodic contact, with a deadline flush at a quarter of the
    /// holder timeout (so coalescing can never starve the heartbeat
    /// that keeps this worker un-expired).
    pub fn with_coalescing(mut self, slices_per_contact: u64) -> Self {
        // Strictly proportional — no absolute floor: a floor could meet
        // or exceed a very short holder timeout, and a worker that used
        // its whole allowed silence would then be expired as dead. A
        // tiny quotient just degenerates to contact-every-slice, which
        // is always safe.
        let max_silence = Duration::from_nanos((self.coordinator.holder_timeout_ns / 4).max(1));
        self.coalesce = Some(CoalescePolicy {
            slices_per_contact: slices_per_contact.max(1),
            max_silence,
        });
        self
    }

    /// Enables the cross-worker contact gateway at `fan_in` buffered
    /// requests per flush, with a deadline at an eighth of the holder
    /// timeout. A worker waiting in the gateway is silent towards the
    /// coordinator, so — like the coalescing deadline — the delay is
    /// strictly proportional to the timeout: even stacked on a
    /// coalescing window of a quarter timeout, total worker silence
    /// stays well inside the expiry horizon.
    pub fn with_gateway(mut self, fan_in: usize) -> Self {
        let max_delay_ns = (self.coordinator.holder_timeout_ns / 8).max(1);
        self.gateway = Some(GatewayPolicy::new(fan_in, max_delay_ns));
        self
    }

    /// Like [`RuntimeConfig::with_gateway`], but the fan-in adapts at
    /// run time between 1 and `max_fan_in` (see [`crate::GatewayMode`]):
    /// growing while flushes fill fast and the shard locks show
    /// contention, shrinking on backpressure and towards termination.
    pub fn with_adaptive_gateway(mut self, fan_in: usize, max_fan_in: usize) -> Self {
        let max_delay_ns = (self.coordinator.holder_timeout_ns / 8).max(1);
        self.gateway = Some(GatewayPolicy::adaptive(fan_in, max_fan_in, max_delay_ns));
        self
    }

    /// Checks the whole configuration stack — worker/shard counts, the
    /// coalescing silence window, the gateway delay against the holder
    /// timeout (via [`GatewayPolicy::validate_against`]), and the
    /// coordinator knobs — through the one shared [`ConfigError`]
    /// hierarchy. Every construction path (the run entry points here,
    /// and the socket server in `gridbnb-net`) funnels through these
    /// same checks, so no entry point can be started with, e.g., a
    /// gateway delay at or above the holder timeout.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.worker_powers.is_empty() {
            return Err(ConfigError::EmptyWorkerPowers);
        }
        if let Some(policy) = &self.coalesce {
            if policy.slices_per_contact == 0 {
                return Err(ConfigError::ZeroCoalesceSlices);
            }
            // The documented invariant behind the silence deadline: a
            // worker that uses its whole allowed silence must still be
            // comfortably inside the holder timeout, or coalescing gets
            // healthy workers expired (and their work redone) every
            // window.
            let silence_ns = policy.max_silence.as_nanos() as u64;
            if silence_ns >= self.coordinator.holder_timeout_ns {
                return Err(ConfigError::CoalesceSilenceTooLong {
                    silence_ns,
                    timeout_ns: self.coordinator.holder_timeout_ns,
                });
            }
        }
        if let Some(policy) = &self.gateway {
            policy.validate_against(&self.coordinator)?;
        }
        if self.gateway.is_some() && self.replicable.is_some_and(|p| p.deterministic) {
            return Err(ConfigError::ReplicableGatewayUnsupported);
        }
        self.coordinator.validate()
    }

    /// Fails fast on out-of-contract configuration instead of letting
    /// the coordinator silently clamp it. Every run entry point calls
    /// this before building any coordinator state.
    fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            match e {
                ConfigError::ZeroDuplicationThreshold => {
                    panic!("invalid coordinator config: {e}")
                }
                other => panic!("invalid runtime config: {other}"),
            }
        }
    }
}

/// Per-worker outcome.
#[derive(Clone, Debug, Default)]
pub struct WorkerReport {
    /// Work units this thread processed.
    pub units: u64,
    /// Search counters summed over its units.
    pub stats: SearchStats,
    /// Update (checkpoint) messages it sent — counting the update op
    /// inside a combined [`Request::UpdateAndReport`] too.
    pub checkpoint_ops: u64,
    /// Coordinator contacts this thread made: one per request or
    /// request bundle sent, whatever it carried. With coalescing this
    /// grows markedly slower than `checkpoint_ops + units` — the
    /// amortization the batched protocol buys, pinned by a test.
    pub contacts: u64,
    /// Crashes it simulated.
    pub crashes: u64,
    /// Contacts re-sent after a transient transport failure (see
    /// [`RetryPolicy`]); always 0 over the in-process transports.
    pub transport_retries: u64,
    /// The transport error that ended this worker's run, if one did:
    /// `None` means the worker exited cleanly (a `Terminate` reply, a
    /// scripted crash, or the spent-unit path). A mid-run socket
    /// failure that exhausted its retries lands here instead of
    /// panicking the thread.
    pub transport_failure: Option<TransportError>,
    /// Node visits presumed redundant: explored in slices whose update
    /// ack came back empty (the unit had already been completed
    /// elsewhere) or lost in a crash (someone re-explores them).
    pub redundant_nodes: u64,
    /// Total interval length it consumed (including progress lost in
    /// crashes, which other workers re-explore).
    pub consumed: UBig,
    /// Time spent exploring (busy), as opposed to waiting on the farmer.
    pub busy: Duration,
    /// Wall time of the thread.
    pub wall: Duration,
}

/// Outcome of a parallel resolution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Best solution found (none if the initial bound was optimal).
    pub solution: Option<Solution>,
    /// `min(initial upper bound, best found)`: the proven optimum once
    /// the run completes.
    pub proven_optimum: Option<u64>,
    /// Farmer-side protocol counters (summed over shards when sharded).
    pub coordinator_stats: CoordinatorStats,
    /// The same counters per shard, in shard order (a single-shard or
    /// classic farmer run reports one entry). Replicability tests
    /// compare these across same-seed runs — the aggregated sum could
    /// mask two runs that distributed the work differently.
    pub shard_stats: Vec<CoordinatorStats>,
    /// Cross-shard work steals (0 on single-shard runs).
    pub steals: u64,
    /// Lock-acquiring router contacts actually served
    /// ([`ShardRouter::contacts`]); 0 on classic single-farmer runs
    /// (the farmer channel has no shard locks to count). With a
    /// gateway this is the amortized number — far below the workers'
    /// own submission count ([`RunReport::total_contacts`]).
    pub router_contacts: u64,
    /// Gateway aggregation counters, when a gateway was configured.
    pub gateway: Option<GatewayStats>,
    /// Per-worker outcomes.
    pub workers: Vec<WorkerReport>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Total time the farmer spent handling requests and checkpointing.
    pub farmer_busy: Duration,
    /// Checkpoint files written by the farmer.
    pub farmer_checkpoints: u64,
    /// Checkpoint writes that **failed** (also counted on
    /// `gbnb_checkpoint_failures_total`). Non-zero means the on-disk
    /// checkpoint may be stale — a run that silently kept going on a
    /// dead store used to look identical to a healthy one.
    pub checkpoint_failures: u64,
    /// Length of the root interval (for redundancy accounting).
    pub root_length: UBig,
    /// The recorded run trace, when [`ReplicablePolicy::record_trace`]
    /// asked for one — encode it, diff it against another run's, or
    /// replay it through [`crate::TraceReplayer`].
    pub trace: Option<Arc<RunTrace>>,
}

impl RunReport {
    /// Total nodes explored by all workers.
    pub fn total_explored(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.explored).sum()
    }

    /// Total states evaluated by the bounding operator across all
    /// workers — at fill time in pooled mode, so under steals this can
    /// exceed [`RunReport::total_bound_calls`] (bounds truncated away
    /// with the un-consumed pool tail were still computed).
    pub fn total_nodes_bounded(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.nodes_bounded).sum()
    }

    /// Total bound results consumed by the elimination test (equals
    /// branched + pruned in both explorer modes).
    pub fn total_bound_calls(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.bound_calls).sum()
    }

    /// Total `lower_bound_batch` invocations (0 when pooling is off).
    pub fn total_bound_batches(&self) -> u64 {
        self.workers.iter().map(|w| w.stats.bound_batches).sum()
    }

    /// Bounding throughput: states bounded per second of worker busy
    /// time — the number the pool benchmarks gate on.
    pub fn nodes_bounded_per_sec(&self) -> f64 {
        let busy = self.worker_busy().as_secs_f64();
        if busy == 0.0 {
            return 0.0;
        }
        self.total_nodes_bounded() as f64 / busy
    }

    /// Total coordinator contacts made by all workers (bundles count
    /// once however many requests they carry).
    pub fn total_contacts(&self) -> u64 {
        self.workers.iter().map(|w| w.contacts).sum()
    }

    /// Total contacts re-sent after transient transport failures.
    pub fn total_transport_retries(&self) -> u64 {
        self.workers.iter().map(|w| w.transport_retries).sum()
    }

    /// Every worker whose run was ended by a transport error, with the
    /// error that ended it. Empty on a healthy run — the e2e tests
    /// assert it, so a socket run that silently lost workers (and leant
    /// on expiry to stay exact) cannot masquerade as a clean one.
    pub fn transport_failures(&self) -> Vec<(usize, &TransportError)> {
        self.workers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.transport_failure.as_ref().map(|e| (i, e)))
            .collect()
    }

    /// Total worker busy time.
    pub fn worker_busy(&self) -> Duration {
        self.workers.iter().map(|w| w.busy).sum()
    }

    /// Mean worker CPU exploitation: busy time over wall time (the
    /// paper reports 97 %).
    pub fn worker_exploitation(&self) -> f64 {
        let wall: f64 = self.workers.iter().map(|w| w.wall.as_secs_f64()).sum();
        if wall == 0.0 {
            return 0.0;
        }
        self.worker_busy().as_secs_f64() / wall
    }

    /// Farmer CPU exploitation: farmer busy time over run wall time (the
    /// paper reports 1.7 %).
    pub fn farmer_exploitation(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.farmer_busy.as_secs_f64() / self.wall.as_secs_f64()
    }

    /// Fraction of consumed interval length that was covered more than
    /// once (duplication, shrink lag, crash re-exploration). Measured in
    /// leaf numbers, so a single pruned-subtree jump across a stolen
    /// boundary inflates it — see [`RunReport::node_redundancy`] for the
    /// node-visit measure the paper's Table 2 reports (0.39 %).
    pub fn redundancy(&self) -> f64 {
        let mut consumed = UBig::zero();
        for w in &self.workers {
            consumed += &w.consumed;
        }
        if consumed.is_zero() {
            return 0.0;
        }
        let redundant = consumed.saturating_sub(&self.root_length);
        redundant.ratio(&consumed)
    }

    /// Estimated fraction of node visits that were redundant — slices
    /// whose result was discarded (unit already completed elsewhere, or
    /// crash-lost work that someone re-explored). Comparable to the
    /// paper's "Redundant nodes: 0.39 %".
    pub fn node_redundancy(&self) -> f64 {
        let total = self.total_explored();
        if total == 0 {
            return 0.0;
        }
        let redundant: u64 = self.workers.iter().map(|w| w.redundant_nodes).sum();
        redundant as f64 / total as f64
    }
}

/// Worker-side series, shared by every worker thread of a run (the
/// cells are atomic, so one registration serves the whole fleet). The
/// counters mirror the [`WorkerReport`] sums exactly — the metrics
/// exactness tests pin `gbnb_worker_contacts_total` to
/// [`RunReport::total_contacts`] and `gbnb_worker_bound_calls_total` to
/// [`RunReport::total_bound_calls`].
struct WorkerMetrics {
    /// `gbnb_worker_contacts_total` — contacts (bundles) sent.
    contacts: Counter,
    /// `gbnb_worker_units_total` — work units processed.
    units: Counter,
    /// `gbnb_worker_bound_calls_total` — bound results consumed by the
    /// elimination test.
    bound_calls: Counter,
    /// `gbnb_worker_slice_ns` — exploration slice latency.
    slice_ns: Histogram,
    /// `gbnb_worker_idle_wait_ns` — time a worker spent blocked in one
    /// contact (transport round-trip, gateway park, retry backoffs).
    idle_wait_ns: Histogram,
    /// `gbnb_worker_busy_ns_total` — total exploring time.
    busy_ns: Counter,
    /// `gbnb_worker_idle_ns_total` — total contact-blocked time.
    idle_ns: Counter,
}

impl WorkerMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        WorkerMetrics {
            contacts: registry.counter("gbnb_worker_contacts_total", &[]),
            units: registry.counter("gbnb_worker_units_total", &[]),
            bound_calls: registry.counter("gbnb_worker_bound_calls_total", &[]),
            slice_ns: registry.histogram("gbnb_worker_slice_ns", &[], &latency_buckets_ns()),
            idle_wait_ns: registry.histogram(
                "gbnb_worker_idle_wait_ns",
                &[],
                &latency_buckets_ns(),
            ),
            busy_ns: registry.counter("gbnb_worker_busy_ns_total", &[]),
            idle_ns: registry.counter("gbnb_worker_idle_ns_total", &[]),
        }
    }
}

/// [`BundleHandler`] over the classic farmer channel: the single-shard
/// counterpart of handing the gateway a [`ShardRouter`]. A flush sends
/// the combined bundle through one channel round-trip to the farmer
/// thread, which folds it through `Coordinator::apply_batch` — so at
/// `shards = 1` many workers' contacts still merge into one channel
/// send and one batch application per flush.
struct FarmerChannelHandler {
    req_tx: Sender<Envelope>,
    registry: MetricsRegistry,
    /// Latches once any flush comes back with a `Terminate`: the
    /// gateway's adaptive mode reads this to shrink its fan-in during
    /// the endgame, and `submit` uses it to flush without waiting.
    terminated: AtomicBool,
}

impl BundleHandler for &FarmerChannelHandler {
    fn envelope(&self, request: Request) -> ShardEnvelope {
        ShardEnvelope {
            shard: ShardId(0),
            request,
        }
    }

    fn handle_bundle(&self, bundle: Vec<ShardEnvelope>, _now_ns: u64) -> Vec<(ShardId, Response)> {
        let requests: Vec<Request> = bundle.into_iter().map(|e| e.request).collect();
        let (reply_tx, reply_rx) = unbounded();
        if self.req_tx.send((requests, reply_tx)).is_err() {
            // The farmer hung up: the gateway's empty-reply sentinel
            // tells every parked submitter the run is over.
            return Vec::new();
        }
        match reply_rx.recv() {
            Ok(responses) => {
                if responses.iter().any(|r| matches!(r, Response::Terminate)) {
                    self.terminated.store(true, Ordering::Release);
                }
                responses.into_iter().map(|r| (ShardId(0), r)).collect()
            }
            Err(_) => Vec::new(),
        }
    }

    fn is_terminated(&self) -> bool {
        self.terminated.load(Ordering::Acquire)
    }

    fn metrics(&self) -> MetricsRegistry {
        self.registry.clone()
    }
}

/// Runs the grid-enabled B&B on `problem` with real threads.
///
/// Blocks until the whole root interval is explored or eliminated, then
/// returns the proof-of-optimality report.
pub fn run<P: Problem>(problem: &P, config: &RuntimeConfig) -> RunReport {
    let shape = problem.shape();
    let root = shape.root_range();
    run_on(problem, root, config)
}

/// Runs on an explicit root interval (used to resume from a checkpoint:
/// restore the coordinator yourself and call [`run_with_coordinator`],
/// or the router and call [`run_with_router`]).
pub fn run_on<P: Problem>(problem: &P, root: Interval, config: &RuntimeConfig) -> RunReport {
    config.assert_valid();
    // A deterministic replicable run is driven by the single-threaded
    // logical-clock scheduler — byte-identical traces per seed.
    if config.replicable.is_some_and(|p| p.deterministic) {
        return run_replicable(problem, root, config);
    }
    // The gateway aggregates in front of a ShardRouter, so a gateway
    // run at shards = 1 still takes the router path (response-identical
    // to the bare coordinator, property-pinned). Replicable rules hang
    // off the router, so those runs take it too.
    if config.shards > 1
        || config.gateway.is_some()
        || config.durability.is_some()
        || config.replicable.is_some()
    {
        let router = ShardRouter::new(root, config.shards, config.coordinator.clone())
            .expect("invalid coordinator config");
        run_with_router(problem, router, config)
    } else {
        let coordinator = Coordinator::new(root, config.coordinator.clone());
        run_with_coordinator(problem, coordinator, config)
    }
}

/// Runs with a pre-built coordinator (fresh or restored from a
/// [`CheckpointStore`]) behind the classic single farmer thread.
/// `config.shards` is ignored here — a pre-built coordinator is by
/// definition one shard.
///
/// Worker contacts funnel through a [`ContactGateway`] over the farmer
/// channel, so even the classic path amortizes: many workers' bundles
/// merge into one channel round-trip and one `apply_batch` per flush.
/// With no explicit [`RuntimeConfig::gateway`] policy the fan-in is a
/// modest `min(workers, 4)` and the deadline at most 1 ms, so lightly
/// threaded runs keep their latency; the response stream is pinned
/// response-identical to the ungated channel by an exactness test.
pub fn run_with_coordinator<P: Problem>(
    problem: &P,
    coordinator: Coordinator,
    config: &RuntimeConfig,
) -> RunReport {
    config.assert_valid();
    let started = Instant::now();
    let root_length = coordinator.root().length();
    let (req_tx, req_rx) = unbounded::<Envelope>();
    let fresh_ids = AtomicU64::new(config.workers as u64);
    let registry = config.metrics.clone().unwrap_or_default();
    let worker_metrics = WorkerMetrics::register(&registry);
    let policy = config.gateway.unwrap_or_else(|| {
        // Defaults tuned for the in-process channel: small fan-in, and
        // a deadline that is both proportional to the holder timeout
        // (a parked submitter is silent towards the coordinator) and
        // capped at 1 ms so huge timeouts cannot park workers long.
        let max_delay_ns = (config.coordinator.holder_timeout_ns / 8).clamp(1, 1_000_000);
        GatewayPolicy::new(config.workers.min(4), max_delay_ns)
    });
    let handler = FarmerChannelHandler {
        req_tx,
        registry: registry.clone(),
        terminated: AtomicBool::new(false),
    };
    let gateway = ContactGateway::new(&handler, policy);
    let gateway = &gateway;
    let workers_done = AtomicBool::new(false);
    let farmer_done = AtomicBool::new(false);

    let mut worker_reports: Vec<WorkerReport> = Vec::new();
    let mut farmer_out: Option<(Coordinator, Duration, u64, u64)> = None;
    let mut sweeper_busy = Duration::ZERO;
    let checkpoint_failed = registry.counter("gbnb_checkpoint_failures_total", &[]);

    crossbeam::thread::scope(|scope| {
        let workers_done = &workers_done;
        let farmer_done = &farmer_done;
        let worker_metrics = &worker_metrics;
        let checkpoint_failed = &checkpoint_failed;
        let farmer = scope.spawn(|_| {
            farmer_loop(
                coordinator,
                req_rx,
                config,
                started,
                farmer_done,
                checkpoint_failed,
            )
        });
        // The deadline sweeper plays the sharded supervisor's gateway
        // role: it guarantees liveness when every submitter is parked
        // below the fan-in.
        let sweeper = scope.spawn(move |_| channel_gateway_sweeper(gateway, started, workers_done));
        let mut handles = Vec::new();
        for index in 0..config.workers {
            let fresh_ids = &fresh_ids;
            let power = config.worker_powers[index % config.worker_powers.len()];
            let crash = config
                .chaos
                .as_ref()
                .and_then(|c| c.crashes.iter().find(|p| p.worker_index == index))
                .copied();
            handles.push(scope.spawn(move |_| {
                let transport = GatewayTransport::new(gateway, started);
                worker_loop(
                    problem,
                    index,
                    power,
                    crash,
                    &transport,
                    fresh_ids,
                    0,
                    config,
                    worker_metrics,
                )
            }));
        }
        for h in handles {
            worker_reports.push(h.join().expect("worker thread panicked"));
        }
        // Teardown order matters: the sweeper's final flush (anyone
        // parked at this instant) still needs the farmer answering, so
        // the farmer's stop flag is set only after the sweeper joins.
        workers_done.store(true, Ordering::Release);
        sweeper_busy = sweeper.join().expect("sweeper thread panicked");
        farmer_done.store(true, Ordering::Release);
        farmer_out = Some(farmer.join().expect("farmer thread panicked"));
    })
    .expect("scope panicked");

    let (coordinator, farmer_busy, farmer_checkpoints, checkpoint_failures) =
        farmer_out.expect("farmer result");
    let solution = coordinator.solution().cloned();
    RunReport {
        proven_optimum: coordinator.cutoff(),
        solution,
        coordinator_stats: *coordinator.stats(),
        shard_stats: vec![*coordinator.stats()],
        steals: 0,
        router_contacts: 0,
        gateway: Some(gateway.stats()),
        workers: worker_reports,
        wall: started.elapsed(),
        farmer_busy: farmer_busy + sweeper_busy,
        farmer_checkpoints,
        checkpoint_failures,
        root_length,
        trace: None,
    }
}

/// Deadline housekeeping for the channel-path gateway: polls
/// [`ContactGateway::flush_stale`] at half the deadline until every
/// worker thread has returned, then runs one final
/// [`ContactGateway::flush_now`] for anyone parked at that instant.
fn channel_gateway_sweeper(
    gateway: &ContactGateway<&FarmerChannelHandler>,
    started: Instant,
    workers_done: &AtomicBool,
) -> Duration {
    let mut busy = Duration::ZERO;
    let poll = Duration::from_nanos(gateway.policy().max_delay_ns / 2)
        .clamp(Duration::from_micros(200), Duration::from_millis(50));
    while !workers_done.load(Ordering::Acquire) {
        std::thread::sleep(poll);
        let t0 = Instant::now();
        gateway.flush_stale(started.elapsed().as_nanos() as u64);
        busy += t0.elapsed();
    }
    let t0 = Instant::now();
    gateway.flush_now(started.elapsed().as_nanos() as u64);
    busy += t0.elapsed();
    busy
}

/// Runs with a pre-built [`ShardRouter`] (fresh, or restored from a
/// sharded checkpoint via [`CheckpointStore::load_sharded`]). Workers
/// contact their home shard directly — there is no farmer thread and no
/// request channel, so contacts to different shards proceed in
/// parallel. A supervisor thread handles stale-holder expiry and
/// periodic checkpoints.
pub fn run_with_router<P: Problem>(
    problem: &P,
    router: ShardRouter,
    config: &RuntimeConfig,
) -> RunReport {
    config.assert_valid();
    let started = Instant::now();
    let root_length = router.root().length();
    let fresh_ids = AtomicU64::new(config.workers as u64);
    let workers_done = AtomicBool::new(false);
    // An injected registry re-homes the router's series so every layer
    // of the run is scrapeable from the one place.
    let router = match &config.metrics {
        Some(registry) => router.with_metrics(registry),
        None => router,
    };
    // Durability opens a fresh log epoch snapshotting the router's
    // *current* state — which is the recovered state when the caller
    // rebuilt the router from [`WalStore::recover`] — so a run killed
    // at any instant resumes from here plus the journaled deltas.
    // After `with_metrics`, so `gbnb_wal_*` lands on the run registry.
    let router = match &config.durability {
        Some(policy) => {
            let (intervals, solution) = router.snapshot();
            let wal = WalStore::create(Arc::clone(&policy.backend), &intervals, solution.as_ref())
                .expect("failed to open the durable operation log");
            router.with_wal(Arc::new(wal))
        }
        None => router,
    };
    // Replicable rules (ordered steals) and the event trace attach
    // last, so the trace counters land on the run registry too.
    let router = match &config.replicable {
        Some(policy) => {
            let router = router.with_replicable(policy.seed);
            if policy.record_trace {
                let meta = TraceMeta {
                    seed: policy.seed,
                    workers: config.workers as u64,
                    shards: config.shards as u64,
                };
                let trace = Arc::new(RunTrace::new(meta, router.metrics()));
                router.with_trace(trace)
            } else {
                router
            }
        }
        None => router,
    };
    let router = &router;
    let worker_metrics = WorkerMetrics::register(router.metrics());
    let gateway = config
        .gateway
        .map(|policy| ContactGateway::new(router, policy));
    let gateway = gateway.as_ref();

    let mut worker_reports: Vec<WorkerReport> = Vec::new();
    let mut supervisor_out = (Duration::ZERO, 0u64, 0u64);

    crossbeam::thread::scope(|scope| {
        let workers_done = &workers_done;
        let worker_metrics = &worker_metrics;
        let supervisor =
            scope.spawn(move |_| supervisor_loop(router, gateway, config, started, workers_done));
        let mut handles = Vec::new();
        for index in 0..config.workers {
            let fresh_ids = &fresh_ids;
            let power = config.worker_powers[index % config.worker_powers.len()];
            let crash = config
                .chaos
                .as_ref()
                .and_then(|c| c.crashes.iter().find(|p| p.worker_index == index))
                .copied();
            handles.push(scope.spawn(move |_| {
                // The gateway merges a worker's batch with other
                // workers' into a shared bundle and blocks until a
                // flush serves it; without one, bundles go straight
                // into the worker's home shard.
                let transport: Box<dyn Transport + Send> = match gateway {
                    Some(gateway) => Box::new(GatewayTransport::new(gateway, started)),
                    None => Box::new(RouterTransport::new(router, started)),
                };
                worker_loop(
                    problem,
                    index,
                    power,
                    crash,
                    transport.as_ref(),
                    fresh_ids,
                    0,
                    config,
                    worker_metrics,
                )
            }));
        }
        // Collect panics instead of unwinding immediately: the done
        // flag must be set either way, or the supervisor (which only
        // exits on termination or that flag) would block the scope's
        // implicit join forever — a worker panic would hang the run
        // instead of propagating. The channel runtime gets this for
        // free (a panicked worker drops its Sender and disconnects the
        // farmer); this restores parity.
        let mut worker_panic = None;
        for h in handles {
            match h.join() {
                Ok(report) => worker_reports.push(report),
                Err(panic) => worker_panic = Some(panic),
            }
        }
        workers_done.store(true, Ordering::Release);
        supervisor_out = supervisor.join().expect("supervisor thread panicked");
        if let Some(panic) = worker_panic {
            std::panic::resume_unwind(panic);
        }
    })
    .expect("scope panicked");

    let (farmer_busy, farmer_checkpoints, checkpoint_failures) = supervisor_out;
    RunReport {
        proven_optimum: router.cutoff(),
        solution: router.solution(),
        coordinator_stats: router.stats(),
        shard_stats: router.shard_stats(),
        steals: router.steals(),
        router_contacts: router.contacts(),
        gateway: gateway.map(|g| g.stats()),
        workers: worker_reports,
        wall: started.elapsed(),
        farmer_busy,
        farmer_checkpoints,
        checkpoint_failures,
        root_length,
        trace: router.trace().cloned(),
    }
}

/// SplitMix64 step: the driver's only randomness source, fully
/// determined by the policy seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What one logical worker did with its scheduler visit.
enum StepOutcome {
    /// Explored a slice or completed a contact — the round made
    /// progress.
    Advanced,
    /// Its work request came back [`Response::Retry`]: the endgame
    /// intervals are all in their holders' hands.
    Blocked,
}

/// One logical worker of the deterministic driver: the exact state the
/// threaded [`worker_loop`] keeps on its stack, laid out so a
/// single-threaded scheduler can advance it one step at a time.
struct LogicalWorker<'p, P: Problem> {
    id: WorkerId,
    power: u64,
    joining: bool,
    done: bool,
    crash: Option<CrashPlan>,
    pending_solution: Option<Solution>,
    /// The in-flight unit: explorer plus its start position (for
    /// consumed-length accounting).
    unit: Option<(IntervalExplorer<'p, P>, UBig)>,
    slices_since_contact: u64,
    report: WorkerReport,
}

impl<P: Problem> LogicalWorker<'_, P> {
    /// Folds the finished (or abandoned) unit into the report.
    fn retire_unit(&mut self, metrics: &WorkerMetrics) {
        if let Some((explorer, unit_start)) = self.unit.take() {
            self.report.consumed += &explorer.position().saturating_sub(&unit_start);
            metrics.bound_calls.add(explorer.stats().bound_calls);
            self.report.stats.merge(explorer.stats());
        }
    }
}

/// The deterministic replicable driver: `config.workers` **logical**
/// workers advanced one step at a time by a single-threaded scheduler,
/// over a **logical clock** that ticks once per coordinator contact.
///
/// Determinism comes from three substitutions, each mirroring the
/// threaded path exactly otherwise:
///
/// * *scheduler* — workers run in a seed-shuffled round-robin instead
///   of OS scheduling; a worker's step is one exploration slice or one
///   contact, in [`worker_loop`]'s order (fresh-best report, scripted
///   crash, exhaustion, periodic update);
/// * *clock* — `now_ns` is a tick counter, so holder heartbeats and
///   expiry decisions are functions of contact order, not wall time.
///   Stale holders are expired right before every contact, and when a
///   whole round yields only [`Response::Retry`] (the crashed-holder
///   endgame) the clock fast-forwards to the next expiry instant —
///   per-contact ticks make every heartbeat unique, so exactly the
///   stalest holder expires, deterministically;
/// * *coalescing* — only the slice-count trigger fires
///   ([`CoalescePolicy::max_silence`] is wall-clock and is ignored
///   here).
///
/// Checkpoint and durability policies are not serviced in this mode
/// (there is no supervisor thread); [`RunReport::trace`] is the
/// replicable artifact. Two calls with the same problem, config and
/// seed produce byte-identical traces and identical per-shard
/// counters — the property the replicable test suite pins.
fn run_replicable<P: Problem>(problem: &P, root: Interval, config: &RuntimeConfig) -> RunReport {
    config.assert_valid();
    let policy = config
        .replicable
        .expect("replicable driver without a policy");
    let started = Instant::now();
    let root_length = root.length();
    let registry = config.metrics.clone().unwrap_or_default();
    let mut router = ShardRouter::new(root, config.shards, config.coordinator.clone())
        .expect("invalid coordinator config")
        .with_metrics(&registry)
        .with_replicable(policy.seed);
    if policy.record_trace {
        let meta = TraceMeta {
            seed: policy.seed,
            workers: config.workers as u64,
            shards: config.shards as u64,
        };
        let trace = Arc::new(RunTrace::new(meta, router.metrics()));
        router = router.with_trace(trace);
    }
    let worker_metrics = WorkerMetrics::register(router.metrics());

    let mut workers: Vec<LogicalWorker<'_, P>> = (0..config.workers)
        .map(|index| LogicalWorker {
            id: WorkerId(index as u64),
            power: config.worker_powers[index % config.worker_powers.len()],
            joining: true,
            done: false,
            crash: config
                .chaos
                .as_ref()
                .and_then(|c| c.crashes.iter().find(|p| p.worker_index == index))
                .copied(),
            pending_solution: None,
            unit: None,
            slices_since_contact: 0,
            report: WorkerReport::default(),
        })
        .collect();
    let mut fresh_ids = config.workers as u64;

    // Seeded Fisher–Yates: the one fixed visiting order of the run.
    let mut order: Vec<usize> = (0..config.workers).collect();
    let mut rng = policy.seed;
    for i in (1..order.len()).rev() {
        let j = (splitmix64(&mut rng) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }

    // The logical clock: one tick per coordinator contact, so every
    // heartbeat lands on a distinct instant.
    let mut tick: u64 = 0;
    let contact = |router: &ShardRouter, tick: &mut u64, request: Request| -> Response {
        *tick += 1;
        router.expire_stale_holders(*tick);
        router.handle(request, *tick)
    };

    loop {
        let mut any_advanced = false;
        let mut all_done = true;
        for &w in &order {
            let state = &mut workers[w];
            if state.done {
                continue;
            }
            all_done = false;
            let outcome = if state.unit.is_none() {
                // Work request step, mirroring the 'units head: an
                // unreported solution rides the same visit (its own
                // tick — a bundle's requests are served in order).
                if let Some(solution) = state.pending_solution.take() {
                    let worker = state.id;
                    let _ = contact(
                        &router,
                        &mut tick,
                        Request::ReportSolution { worker, solution },
                    );
                }
                let request = if state.joining {
                    Request::Join {
                        worker: state.id,
                        power: state.power,
                    }
                } else {
                    Request::RequestWork {
                        worker: state.id,
                        power: state.power,
                    }
                };
                state.joining = false;
                state.report.contacts += 1;
                worker_metrics.contacts.inc();
                match contact(&router, &mut tick, request) {
                    Response::Work { interval, cutoff } => {
                        state.report.units += 1;
                        worker_metrics.units.inc();
                        let explorer = IntervalExplorer::with_pooling(
                            problem,
                            &interval,
                            cutoff,
                            config.pooling,
                        );
                        let start = explorer.position().clone();
                        state.unit = Some((explorer, start));
                        state.slices_since_contact = 0;
                        StepOutcome::Advanced
                    }
                    Response::Terminate => {
                        state.done = true;
                        StepOutcome::Advanced
                    }
                    Response::Retry => StepOutcome::Blocked,
                    other => {
                        state.report.transport_failure = Some(
                            ProtocolError::UnexpectedResponse {
                                expected: "Work, Terminate or Retry",
                                got: format!("{other:?}"),
                            }
                            .into(),
                        );
                        state.done = true;
                        StepOutcome::Advanced
                    }
                }
            } else {
                // Exploration step: one slice, then worker_loop's exact
                // follow-up order.
                let (explorer, _) = state.unit.as_mut().expect("unit checked above");
                let t0 = Instant::now();
                explorer.run(config.poll_nodes);
                let slice = t0.elapsed();
                state.report.busy += slice;
                worker_metrics.slice_ns.observe(slice.as_nanos() as u64);
                worker_metrics.busy_ns.add(slice.as_nanos() as u64);
                state.slices_since_contact += 1;
                let mut contacted_this_slice = false;
                let mut fresh = explorer.take_fresh_best();
                let mut ended = false;
                if fresh.is_some() && !explorer.is_exhausted() {
                    state.report.contacts += 1;
                    worker_metrics.contacts.inc();
                    let response = contact(
                        &router,
                        &mut tick,
                        Request::UpdateAndReport {
                            worker: state.id,
                            interval: explorer.current_interval(),
                            solution: fresh.take(),
                        },
                    );
                    state.report.checkpoint_ops += 1;
                    match adopt_update_ack(response, explorer) {
                        Ok(true) => {}
                        Ok(false) => ended = true,
                        Err(e) => {
                            state.report.transport_failure = Some(e.into());
                            ended = true;
                        }
                    }
                    state.slices_since_contact = 0;
                    contacted_this_slice = true;
                }
                if ended {
                    state.retire_unit(&worker_metrics);
                    state.done = true;
                    StepOutcome::Advanced
                } else if state.crash.is_some_and(|plan| {
                    state.report.stats.explored
                        + state.unit.as_ref().map_or(0, |(e, _)| e.stats().explored)
                        >= plan.after_nodes
                }) {
                    // Scripted crash: lose the explorer and any solution
                    // still waiting for the work-request bundle.
                    let plan = state.crash.take().expect("crash plan checked above");
                    state.report.crashes += 1;
                    state.retire_unit(&worker_metrics);
                    state.pending_solution = None;
                    if plan.rejoin {
                        state.id = WorkerId(fresh_ids);
                        fresh_ids += 1;
                        state.joining = true;
                    } else {
                        state.done = true;
                    }
                    StepOutcome::Advanced
                } else if state.unit.as_ref().is_some_and(|(e, _)| e.is_exhausted()) {
                    state.pending_solution = fresh.take();
                    state.retire_unit(&worker_metrics);
                    StepOutcome::Advanced
                } else {
                    // Periodic checkpoint: only the deterministic
                    // slice-count trigger — max_silence is wall-clock.
                    let due = !contacted_this_slice
                        && match &config.coalesce {
                            None => true,
                            Some(policy) => state.slices_since_contact >= policy.slices_per_contact,
                        };
                    if due {
                        let (explorer, _) = state.unit.as_mut().expect("unit survives the slice");
                        state.report.contacts += 1;
                        worker_metrics.contacts.inc();
                        let response = contact(
                            &router,
                            &mut tick,
                            Request::Update {
                                worker: state.id,
                                interval: explorer.current_interval(),
                            },
                        );
                        state.report.checkpoint_ops += 1;
                        match adopt_update_ack(response, explorer) {
                            Ok(true) => {}
                            Ok(false) => {
                                state.retire_unit(&worker_metrics);
                                state.done = true;
                            }
                            Err(e) => {
                                state.report.transport_failure = Some(e.into());
                                state.retire_unit(&worker_metrics);
                                state.done = true;
                            }
                        }
                        state.slices_since_contact = 0;
                    }
                    StepOutcome::Advanced
                }
            };
            if matches!(outcome, StepOutcome::Advanced) {
                any_advanced = true;
            }
        }
        if all_done {
            break;
        }
        if !any_advanced {
            // Every live worker is parked on Retry: the remaining
            // intervals belong to crashed holders. Fast-forward the
            // clock to the earliest expiry instant instead of spinning
            // one tick at a time through a (logical) timeout.
            match router.next_expiry_at() {
                Some(at) => {
                    tick = tick.max(at);
                    router.expire_stale_holders(tick);
                }
                None => {
                    // Nothing to expire and nothing stealable: the next
                    // round observes global termination.
                    tick += 1;
                }
            }
        }
    }

    let mut worker_reports = Vec::with_capacity(workers.len());
    for mut state in workers {
        state.retire_unit(&worker_metrics);
        state.report.wall = started.elapsed();
        worker_reports.push(state.report);
    }
    RunReport {
        proven_optimum: router.cutoff(),
        solution: router.solution(),
        coordinator_stats: router.stats(),
        shard_stats: router.shard_stats(),
        steals: router.steals(),
        router_contacts: router.contacts(),
        gateway: None,
        workers: worker_reports,
        wall: started.elapsed(),
        farmer_busy: Duration::ZERO,
        farmer_checkpoints: 0,
        checkpoint_failures: 0,
        root_length,
        trace: router.trace().cloned(),
    }
}

/// Housekeeping for sharded runs: what the farmer loop did besides
/// answering requests — expire stale holders (the recovery path for
/// crashed workers), enforce the gateway's deadline flush (the trigger
/// that guarantees liveness when every submitter is parked below the
/// fan-in), and write periodic checkpoints. Exits when the run
/// terminates or every worker thread has returned — after one final
/// gateway flush, so no submitter blocked at that instant is stranded
/// (later submitters see the terminated router and flush themselves).
fn supervisor_loop(
    router: &ShardRouter,
    gateway: Option<&ContactGateway<&ShardRouter>>,
    config: &RuntimeConfig,
    started: Instant,
    workers_done: &AtomicBool,
) -> (Duration, u64, u64) {
    let mut busy = Duration::ZERO;
    let mut checkpoints = 0u64;
    let mut checkpoint_failures = 0u64;
    let checkpoint_failed = router
        .metrics()
        .counter("gbnb_checkpoint_failures_total", &[]);
    let mut last_checkpoint = Instant::now();
    let mut last_compaction = Instant::now();
    let mut tick = config
        .checkpoint
        .as_ref()
        .map(|p| p.every)
        .unwrap_or(Duration::from_millis(50))
        .min(Duration::from_millis(50));
    if let Some(policy) = &config.durability {
        tick = tick.min(policy.compact_every);
    }
    if let Some(gateway) = gateway {
        // Poll at least twice per gateway deadline, so a lone buffered
        // submission waits at most ~1.5 deadlines in the worst case.
        let poll =
            Duration::from_nanos(gateway.policy().max_delay_ns / 2).max(Duration::from_millis(1));
        tick = tick.min(poll);
    }
    while !workers_done.load(Ordering::Acquire) && !router.is_terminated() {
        // Sleep until the earliest holder becomes expirable or the next
        // housekeeping tick, whichever is sooner.
        let now_ns = started.elapsed().as_nanos() as u64;
        let wait = router
            .next_expiry_at()
            .map(|t| Duration::from_nanos(t.saturating_sub(now_ns)).max(Duration::from_millis(1)))
            .unwrap_or(tick)
            .min(tick);
        std::thread::sleep(wait);
        let t0 = Instant::now();
        if let Some(gateway) = gateway {
            gateway.flush_stale(started.elapsed().as_nanos() as u64);
        }
        router.expire_stale_holders(started.elapsed().as_nanos() as u64);
        if let Some(policy) = &config.checkpoint {
            if last_checkpoint.elapsed() >= policy.every {
                match policy.store.save_sharded(router) {
                    Ok(()) => checkpoints += 1,
                    Err(_) => {
                        checkpoint_failures += 1;
                        checkpoint_failed.inc();
                    }
                }
                last_checkpoint = Instant::now();
            }
        }
        if let Some(policy) = &config.durability {
            if last_compaction.elapsed() >= policy.compact_every {
                // A failed compaction leaves the previous manifest
                // committed and is counted on
                // `gbnb_wal_compaction_failures_total` by the store.
                let _ = router.compact_wal();
                last_compaction = Instant::now();
            }
        }
        busy += t0.elapsed();
    }
    // Final gateway sweep: whoever is parked in the buffer right now
    // gets served; anyone submitting after this observes the
    // terminated router inside `submit` and flushes inline.
    if let Some(gateway) = gateway {
        let t0 = Instant::now();
        gateway.flush_now(started.elapsed().as_nanos() as u64);
        busy += t0.elapsed();
    }
    // Final checkpoint so a restart sees the terminal state.
    if let Some(policy) = &config.checkpoint {
        let t0 = Instant::now();
        match policy.store.save_sharded(router) {
            Ok(()) => checkpoints += 1,
            Err(_) => {
                checkpoint_failures += 1;
                checkpoint_failed.inc();
            }
        }
        busy += t0.elapsed();
    }
    // Final compaction: a finished campaign's backend holds the terminal
    // snapshot (usually empty intervals) and no segments, so a restart
    // recovers the proof instead of redoing work.
    if config.durability.is_some() {
        let t0 = Instant::now();
        let _ = router.compact_wal();
        busy += t0.elapsed();
    }
    (busy, checkpoints, checkpoint_failures)
}

fn farmer_loop(
    mut coordinator: Coordinator,
    req_rx: Receiver<Envelope>,
    config: &RuntimeConfig,
    started: Instant,
    done: &AtomicBool,
    checkpoint_failed: &Counter,
) -> (Coordinator, Duration, u64, u64) {
    let mut busy = Duration::ZERO;
    let mut checkpoints = 0u64;
    let mut checkpoint_failures = 0u64;
    let mut last_checkpoint = Instant::now();
    let tick = config
        .checkpoint
        .as_ref()
        .map(|p| p.every)
        .unwrap_or(Duration::from_millis(50));
    loop {
        // Sleep until a request arrives, the next checkpoint is due, or
        // the earliest holder becomes expirable — the coordinator's
        // heartbeat index makes that instant an O(1) query, so no
        // periodic full sweep is needed.
        let now_ns = started.elapsed().as_nanos() as u64;
        let wait = coordinator
            .next_expiry_at()
            .map(|t| Duration::from_nanos(t.saturating_sub(now_ns)).max(Duration::from_millis(1)))
            .unwrap_or(tick)
            .min(tick);
        match req_rx.recv_timeout(wait) {
            Ok((requests, reply_tx)) => {
                let t0 = Instant::now();
                let now_ns = started.elapsed().as_nanos() as u64;
                let mut responses = Vec::with_capacity(requests.len());
                let mut pending = requests;
                loop {
                    let outcome = coordinator.apply_batch(pending, now_ns);
                    responses.extend(outcome.responses);
                    match outcome.stalled {
                        None => break,
                        Some((_, rest)) => {
                            // Single coordinator: nobody to steal from,
                            // the local Terminate is the global one.
                            responses.push(Response::Terminate);
                            if rest.is_empty() {
                                break;
                            }
                            pending = rest;
                        }
                    }
                }
                busy += t0.elapsed();
                // A dropped worker (crash between send and reply) is fine.
                let _ = reply_tx.send(responses);
            }
            Err(RecvTimeoutError::Timeout) => {
                // The gateway's handler keeps a Sender alive for the
                // whole run, so teardown is flag-driven: the runtime
                // raises `done` once the final gateway flush is served.
                if done.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
        let t0 = Instant::now();
        {
            // Expiry visits only holders that are actually stale; with
            // none due this is a constant-time check.
            let now_ns = started.elapsed().as_nanos() as u64;
            coordinator.expire_stale_holders(now_ns);
        }
        if let Some(policy) = &config.checkpoint {
            if last_checkpoint.elapsed() >= policy.every {
                match policy.store.save(&coordinator) {
                    Ok(()) => checkpoints += 1,
                    Err(_) => {
                        checkpoint_failures += 1;
                        checkpoint_failed.inc();
                    }
                }
                last_checkpoint = Instant::now();
            }
        }
        busy += t0.elapsed();
    }
    // Final checkpoint so a restart sees the terminal state.
    if let Some(policy) = &config.checkpoint {
        let t0 = Instant::now();
        match policy.store.save(&coordinator) {
            Ok(()) => checkpoints += 1,
            Err(_) => {
                checkpoint_failures += 1;
                checkpoint_failed.inc();
            }
        }
        busy += t0.elapsed();
    }
    (coordinator, busy, checkpoints, checkpoint_failures)
}

/// Client-side half of a run: spawns `config.workers` worker threads,
/// each speaking the protocol over its own [`Transport`] from
/// `connect`, and returns their reports when every worker is done.
///
/// Unlike [`run`], no coordinator state lives in this process — the
/// coordinator is wherever the transports point (typically a
/// `gridbnb-net` socket server, possibly on another machine), and it
/// keeps running after these workers leave. Worker ids are offset by
/// `id_base` so several client processes can join the same coordinator
/// without colliding; crash plans and coalescing work exactly as in the
/// in-process runtime.
pub fn run_workers<P, T, F>(
    problem: &P,
    config: &RuntimeConfig,
    id_base: u64,
    connect: F,
) -> Vec<WorkerReport>
where
    P: Problem,
    T: Transport + Send,
    F: Fn(usize) -> T + Sync,
{
    config.assert_valid();
    let fresh_ids = AtomicU64::new(id_base + config.workers as u64);
    let registry = config.metrics.clone().unwrap_or_default();
    let worker_metrics = WorkerMetrics::register(&registry);
    let mut worker_reports: Vec<WorkerReport> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let fresh_ids = &fresh_ids;
        let connect = &connect;
        let worker_metrics = &worker_metrics;
        let mut handles = Vec::new();
        for index in 0..config.workers {
            let power = config.worker_powers[index % config.worker_powers.len()];
            let crash = config
                .chaos
                .as_ref()
                .and_then(|c| c.crashes.iter().find(|p| p.worker_index == index))
                .copied();
            handles.push(scope.spawn(move |_| {
                let transport = connect(index);
                worker_loop(
                    problem,
                    index,
                    power,
                    crash,
                    &transport,
                    fresh_ids,
                    id_base,
                    config,
                    worker_metrics,
                )
            }));
        }
        for h in handles {
            worker_reports.push(h.join().expect("worker thread panicked"));
        }
    })
    .expect("scope panicked");
    worker_reports
}

/// Sends one bundle through the transport, re-sending after a backoff
/// on transient failures per `policy` (retries are tallied into
/// `report`). Checks the one-response-per-request contract on success —
/// a mismatch is a [`ProtocolError::ResponseCount`], never a panic.
fn contact_with_retry<T: Transport + ?Sized>(
    transport: &T,
    requests: Vec<Request>,
    policy: &RetryPolicy,
    report: &mut WorkerReport,
    metrics: &WorkerMetrics,
) -> Result<Vec<Response>, TransportError> {
    // The whole contact — round-trip, gateway park, retry backoffs —
    // is worker idle time: it holds work it is not exploring.
    let t0 = Instant::now();
    let result = send_with_retry(transport, requests, policy, report);
    let waited = t0.elapsed().as_nanos() as u64;
    metrics.idle_wait_ns.observe(waited);
    metrics.idle_ns.add(waited);
    result
}

fn send_with_retry<T: Transport + ?Sized>(
    transport: &T,
    requests: Vec<Request>,
    policy: &RetryPolicy,
    report: &mut WorkerReport,
) -> Result<Vec<Response>, TransportError> {
    let sent = requests.len();
    let max_attempts = policy.max_attempts.max(1);
    let mut backoff = policy.base_backoff;
    let mut attempt = 1u32;
    loop {
        match transport.contact(requests.clone()) {
            Ok(responses) => {
                if responses.len() != sent {
                    return Err(ProtocolError::ResponseCount {
                        sent,
                        got: responses.len(),
                    }
                    .into());
                }
                return Ok(responses);
            }
            Err(e) if e.is_transient() && attempt < max_attempts => {
                report.transport_retries += 1;
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// One worker thread: explore slices, contact the coordinator through
/// `transport` — a blocking channel round-trip to the farmer thread, a
/// direct call into the worker's home shard of a [`ShardRouter`], a
/// gateway submission, or a socket round-trip to a remote server. Every
/// contact is a request *bundle* (usually of one); with
/// [`RuntimeConfig::coalesce`] set, periodic checkpoints are folded
/// across slices, an improvement ships as one combined
/// [`Request::UpdateAndReport`], and a spent unit's unreported solution
/// rides the `RequestWork` bundle.
///
/// Transient transport failures are retried with backoff
/// ([`RetryPolicy`]); a permanent failure — or exhausted retries — ends
/// the run with the error recorded in
/// [`WorkerReport::transport_failure`] instead of panicking, so one
/// flaky socket degrades a run (expiry redistributes the worker's
/// interval) rather than aborting it.
#[allow(clippy::too_many_arguments)]
fn worker_loop<P: Problem, T: Transport + ?Sized>(
    problem: &P,
    index: usize,
    power: u64,
    crash: Option<CrashPlan>,
    transport: &T,
    fresh_ids: &AtomicU64,
    id_base: u64,
    config: &RuntimeConfig,
    metrics: &WorkerMetrics,
) -> WorkerReport {
    let thread_start = Instant::now();
    let mut report = WorkerReport::default();
    let mut id = WorkerId(id_base + index as u64);
    let mut joining = true;
    let mut crash = crash;
    // A solution found on the last slice of a spent unit, awaiting the
    // next work request's bundle.
    let mut pending_solution: Option<Solution> = None;

    // Contact failures land here; the macro-free equivalent of `?` for
    // a loop that must record the error and fall out of 'units.
    'units: loop {
        let work_request = if joining {
            Request::Join { worker: id, power }
        } else {
            Request::RequestWork { worker: id, power }
        };
        joining = false;
        // Termination-sensitive flush: the work request always goes out
        // now; an unreported solution shares the contact.
        report.contacts += 1;
        metrics.contacts.inc();
        let bundle = match pending_solution.take() {
            Some(solution) => vec![
                Request::ReportSolution {
                    worker: id,
                    solution,
                },
                work_request,
            ],
            None => vec![work_request],
        };
        let response = match contact_with_retry(
            transport,
            bundle,
            &config.transport_retry,
            &mut report,
            metrics,
        ) {
            Ok(mut responses) => responses.pop().expect("bundle was non-empty"),
            Err(e) => {
                report.transport_failure = failure_of(e);
                break;
            }
        };
        let (interval, cutoff) = match response {
            Response::Work { interval, cutoff } => (interval, cutoff),
            Response::Terminate => break,
            Response::Retry => {
                // Sharded endgame: the remaining intervals are in their
                // holders' hands. Back off briefly and ask again.
                std::thread::sleep(Duration::from_micros(200));
                continue 'units;
            }
            other => {
                report.transport_failure = Some(
                    ProtocolError::UnexpectedResponse {
                        expected: "Work, Terminate or Retry",
                        got: format!("{other:?}"),
                    }
                    .into(),
                );
                break;
            }
        };
        report.units += 1;
        metrics.units.inc();
        let mut explorer =
            IntervalExplorer::with_pooling(problem, &interval, cutoff, config.pooling);
        let unit_start_position = explorer.position().clone();
        let mut slices_since_contact = 0u64;
        let mut last_contact = Instant::now();

        loop {
            let t0 = Instant::now();
            explorer.run(config.poll_nodes);
            let slice = t0.elapsed();
            report.busy += slice;
            metrics.slice_ns.observe(slice.as_nanos() as u64);
            metrics.busy_ns.add(slice.as_nanos() as u64);
            slices_since_contact += 1;
            let mut contacted_this_slice = false;

            // Solution sharing rule 2: report improvements immediately —
            // folded with this slice's checkpoint into one combined
            // contact. On a spent unit the update would be vacuous, so
            // the solution waits (a few microseconds) for the work
            // request's bundle instead.
            let mut fresh = explorer.take_fresh_best();
            if fresh.is_some() && !explorer.is_exhausted() {
                report.contacts += 1;
                metrics.contacts.inc();
                let bundle = vec![Request::UpdateAndReport {
                    worker: id,
                    interval: explorer.current_interval(),
                    solution: fresh.take(),
                }];
                let mut responses = match contact_with_retry(
                    transport,
                    bundle,
                    &config.transport_retry,
                    &mut report,
                    metrics,
                ) {
                    Ok(responses) => responses,
                    Err(e) => {
                        report.transport_failure = failure_of(e);
                        break 'units;
                    }
                };
                report.checkpoint_ops += 1;
                match adopt_update_ack(
                    responses.pop().expect("bundle was non-empty"),
                    &mut explorer,
                ) {
                    Ok(true) => {}
                    Ok(false) => break 'units,
                    Err(e) => {
                        report.transport_failure = Some(e.into());
                        break 'units;
                    }
                }
                slices_since_contact = 0;
                last_contact = Instant::now();
                contacted_this_slice = true;
            }

            // Scripted crash: silently lose everything — including a
            // solution still waiting for the work-request bundle.
            if let Some(plan) = crash {
                if report.stats.explored + explorer.stats().explored >= plan.after_nodes {
                    crash = None;
                    report.crashes += 1;
                    report.consumed += &explorer.position().saturating_sub(&unit_start_position);
                    metrics.bound_calls.add(explorer.stats().bound_calls);
                    report.stats.merge(explorer.stats());
                    if plan.rejoin {
                        id = WorkerId(fresh_ids.fetch_add(1, Ordering::Relaxed));
                        joining = true;
                        continue 'units;
                    }
                    break 'units;
                }
            }

            if explorer.is_exhausted() {
                pending_solution = fresh.take();
                break;
            }

            // Pull-model checkpoint: report the live interval, adopt the
            // intersection, refresh the cutoff (solution sharing rule 3).
            // Under a coalescing policy only every `slices_per_contact`-th
            // slice contacts (or the silence deadline forces it).
            let due = !contacted_this_slice
                && match &config.coalesce {
                    None => true,
                    Some(policy) => {
                        slices_since_contact >= policy.slices_per_contact
                            || last_contact.elapsed() >= policy.max_silence
                    }
                };
            if !due {
                continue;
            }
            report.contacts += 1;
            metrics.contacts.inc();
            let bundle = vec![Request::Update {
                worker: id,
                interval: explorer.current_interval(),
            }];
            let mut responses = match contact_with_retry(
                transport,
                bundle,
                &config.transport_retry,
                &mut report,
                metrics,
            ) {
                Ok(responses) => responses,
                Err(e) => {
                    report.transport_failure = failure_of(e);
                    break 'units;
                }
            };
            report.checkpoint_ops += 1;
            match adopt_update_ack(
                responses.pop().expect("bundle was non-empty"),
                &mut explorer,
            ) {
                Ok(true) => {}
                Ok(false) => break 'units,
                Err(e) => {
                    report.transport_failure = Some(e.into());
                    break 'units;
                }
            }
            slices_since_contact = 0;
            last_contact = Instant::now();
        }

        report.consumed += &explorer.position().saturating_sub(&unit_start_position);
        metrics.bound_calls.add(explorer.stats().bound_calls);
        report.stats.merge(explorer.stats());
    }
    report.wall = thread_start.elapsed();
    report
}

/// An orderly teardown — the farmer hung up after terminating, or the
/// gateway answered a drain sentinel — is a clean end of the run, not a
/// fault worth surfacing in the report.
fn failure_of(e: TransportError) -> Option<TransportError> {
    match e {
        TransportError::Closed => None,
        other => Some(other),
    }
}

/// Folds an update-style ack into the explorer: adopt the intersected
/// interval, observe the cutoff. `Ok(false)` means the unit loop must
/// end cleanly (termination reply); an unexpected variant is a protocol
/// violation by the coordinator.
fn adopt_update_ack<P: Problem>(
    response: Response,
    explorer: &mut IntervalExplorer<'_, P>,
) -> Result<bool, ProtocolError> {
    match response {
        Response::UpdateAck { interval, cutoff } => {
            explorer.intersect_with(&interval);
            if let Some(c) = cutoff {
                explorer.observe_external_cutoff(c);
            }
            Ok(true)
        }
        Response::Terminate => Ok(false),
        other => Err(ProtocolError::UnexpectedResponse {
            expected: "UpdateAck or Terminate",
            got: format!("{other:?}"),
        }),
    }
}
