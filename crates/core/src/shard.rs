//! Sharded coordination: `S` independent [`Coordinator`]s behind a thin
//! work-stealing router.
//!
//! The paper funnels every worker contact through one farmer, which its
//! own measurements identify as the scaling bottleneck (~2 M update
//! operations dominated farmer load). The indexed hot path made a single
//! coordinator O(log n) per contact; the [`ShardRouter`] multiplies that
//! throughput by partitioning the root interval range into `S` disjoint
//! slices, each owned by an independent [`Coordinator`] with its own
//! holder/priority/heartbeat indexes behind its own lock:
//!
//! ```text
//!            workers (hash of WorkerId picks the home shard)
//!      w0  w4  w8 ...        w1  w5 ...           w3  w7 ...
//!        \  |  /               \  |                 \  |
//!      ┌───────────┐       ┌───────────┐        ┌───────────┐
//!      │  shard 0  │ ←──── │  shard 1  │  ....  │  shard S-1│
//!      │ [A0, B0)  │ steal │ [A1, B1)  │        │ [A…, B…)  │
//!      └───────────┘       └───────────┘        └───────────┘
//!            router: Request/Response surface unchanged
//! ```
//!
//! * **Routing** — [`ShardRouter::route`] hashes the `WorkerId` to a
//!   home shard; all of a worker's contacts (join, update, solution
//!   report, leave) go there, so the per-worker holder state never
//!   crosses a lock.
//! * **Work stealing** — when a shard's pool drains while other shards
//!   still hold work, the router steals the largest donatable interval
//!   from the most loaded shard ([`Coordinator::steal_largest`]) and
//!   adopts it into the drained shard, where the ordinary selection +
//!   partitioning operators re-split it among that shard's workers.
//!   Intervals move between shards but are never copied across them, so
//!   the global `INTERVALS` stays duplicate-free.
//! * **Termination** — a shared atomic count of non-empty shards makes
//!   global termination (`INTERVALS` empty everywhere, §4.3) an O(1)
//!   query: `Terminate` is only surfaced to a worker once the count
//!   reaches zero and a steal attempt found nothing to take.
//! * **Solution sharing** — an improving [`Request::ReportSolution`] is
//!   merged into every other shard ([`Coordinator::merge_solution`]),
//!   so the cutoffs each shard hands out stay globally tight.
//!
//! All methods take `&self` (each shard is a `Mutex<Coordinator>`), so
//! one router can be driven concurrently by many worker threads — the
//! thread runtime does exactly that — or single-threadedly by the
//! discrete-event grid simulator. At `S = 1` the router is
//! response-identical to a bare [`Coordinator`] (pinned by a property
//! test).

use crate::trace::RunTrace;
use crate::wal::{WalError, WalMetrics, WalOp, WalStore};
use crate::{
    BatchOutcome, ConfigError, Coordinator, CoordinatorConfig, CoordinatorStats, Request, Response,
    ShardEnvelope, ShardId, WorkerId,
};
use gridbnb_coding::{Interval, UBig};
use gridbnb_engine::Solution;
use gridbnb_metrics::{latency_buckets_ns, Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One unit of the packed non-empty count (high half of
/// [`ShardRouter::state`]); the low half counts steals in flight.
const NON_EMPTY_UNIT: u64 = 1 << 32;

/// The router's registered instrument handles, resolved once at
/// construction so the contact path records with plain atomics. The
/// contact and steal counters here **are** the router's bookkeeping —
/// [`ShardRouter::contacts`] and [`ShardRouter::steals`] read these
/// cells, so a metrics scrape and the run report can never disagree.
#[derive(Debug)]
struct RouterMetrics {
    registry: MetricsRegistry,
    /// `gbnb_router_contacts_total` — lock-acquiring contacts served.
    contacts: Counter,
    /// `gbnb_router_steals_total` — successful cross-shard steals.
    steals: Counter,
    /// `gbnb_shard_contacts_total{shard}` — the same contacts, by shard.
    shard_contacts: Vec<Counter>,
    /// `gbnb_shard_lock_hold_ns{shard}` — how long each service section
    /// held the shard lock.
    shard_lock_hold: Vec<Histogram>,
    /// `gbnb_shard_live_intervals{shard}` — interval count after the
    /// last service on that shard (sums to the live `INTERVALS` size).
    shard_live_intervals: Vec<Gauge>,
    /// `gbnb_coordinator_selection_ns` — single-request service latency
    /// of `Join` / `RequestWork` (interval selection + partitioning).
    selection_ns: Histogram,
    /// `gbnb_coordinator_update_ns` — single-request service latency of
    /// `Update` / `UpdateAndReport` (the eq. 14 intersection path).
    update_ns: Histogram,
    /// `gbnb_coordinator_batch_ns` — per-shard `apply_batch` run
    /// latency on the bundle path.
    batch_ns: Histogram,
    /// `gbnb_coordinator_expiry_ns` — full expiry-sweep latency.
    expiry_ns: Histogram,
    /// `gbnb_coordinator_expired_holders_total`.
    expired_holders: Counter,
}

impl RouterMetrics {
    fn register(registry: &MetricsRegistry, shards: usize) -> Self {
        let mut shard_contacts = Vec::with_capacity(shards);
        let mut shard_lock_hold = Vec::with_capacity(shards);
        let mut shard_live_intervals = Vec::with_capacity(shards);
        for k in 0..shards {
            let label = k.to_string();
            let labels: &[(&str, &str)] = &[("shard", &label)];
            shard_contacts.push(registry.counter("gbnb_shard_contacts_total", labels));
            shard_lock_hold.push(registry.histogram(
                "gbnb_shard_lock_hold_ns",
                labels,
                &latency_buckets_ns(),
            ));
            shard_live_intervals.push(registry.gauge("gbnb_shard_live_intervals", labels));
        }
        RouterMetrics {
            registry: registry.clone(),
            contacts: registry.counter("gbnb_router_contacts_total", &[]),
            steals: registry.counter("gbnb_router_steals_total", &[]),
            shard_contacts,
            shard_lock_hold,
            shard_live_intervals,
            selection_ns: registry.histogram(
                "gbnb_coordinator_selection_ns",
                &[],
                &latency_buckets_ns(),
            ),
            update_ns: registry.histogram("gbnb_coordinator_update_ns", &[], &latency_buckets_ns()),
            batch_ns: registry.histogram("gbnb_coordinator_batch_ns", &[], &latency_buckets_ns()),
            expiry_ns: registry.histogram("gbnb_coordinator_expiry_ns", &[], &latency_buckets_ns()),
            expired_holders: registry.counter("gbnb_coordinator_expired_holders_total", &[]),
        }
    }

    /// Seeds the monotone counters from another instance (clone /
    /// registry-swap paths, where the cells are fresh but the router's
    /// history must read unchanged).
    fn seed_from(&self, other: &RouterMetrics) {
        self.contacts.add(other.contacts.get());
        self.steals.add(other.steals.get());
        for (mine, theirs) in self.shard_contacts.iter().zip(&other.shard_contacts) {
            mine.add(theirs.get());
        }
        self.expired_holders.add(other.expired_holders.get());
    }
}

/// `S` coordinators over disjoint slices of one root range, plus the
/// routing, stealing and termination logic that makes them answer the
/// single-coordinator [`Request`]/[`Response`] protocol surface.
#[derive(Debug)]
pub struct ShardRouter {
    root: Interval,
    shards: Vec<Mutex<Coordinator>>,
    /// Packed `(non-empty shards) << 32 | (steals in flight)` — the
    /// shared termination count. The two live in one atomic so a single
    /// load answers global termination (`state == 0`) consistently: a
    /// mid-flight steal holds an in-flight unit from before its victim
    /// is counted empty until after its destination is counted
    /// non-empty, so the whole word never transiently reads 0 while an
    /// interval is between shards. Each half is maintained under the
    /// owning shard's lock on every transition.
    state: AtomicU64,
    /// Registered instrument handles; the contact/steal counters double
    /// as the router's own bookkeeping (see [`RouterMetrics`]).
    metrics: RouterMetrics,
    /// Held for reading across each steal (concurrent steals are fine)
    /// and for writing by [`ShardRouter::snapshot`], `clone` and
    /// [`ShardRouter::check_invariants`]: while the write side is held,
    /// no interval can be in flight between shards, so walking the
    /// shards one lock at a time still yields a loss-free union.
    /// Ordering: the gate is always taken before any shard lock, never
    /// while holding one.
    steal_gate: RwLock<()>,
    /// Durable operation log, when attached via [`ShardRouter::with_wal`]:
    /// every service section drains its shard's journal into the log
    /// before releasing the shard lock, and
    /// [`ShardRouter::compact_wal`] periodically folds the log into a
    /// snapshot.
    wal: Option<Arc<WalStore>>,
    /// Replicable-mode seed, when set via
    /// [`ShardRouter::with_replicable`]: steal-victim selection and the
    /// in-shard donation rule switch from the contention-dependent
    /// most-loaded/largest-first scans to ordered rules keyed by
    /// interval position (lowest left endpoint first), with the seed
    /// rotating residual scan-order ties.
    replicable: Option<u64>,
    /// Run-trace recorder, when attached via
    /// [`ShardRouter::with_trace`]: every service section records its
    /// shard's drained deltas, handouts, steals and cutoff broadcasts
    /// inside the owning lock section, so the trace is a valid
    /// linearization of the run.
    trace: Option<Arc<RunTrace>>,
}

/// The initial per-shard partition of `root` into `shards` equal
/// contiguous slices (the last absorbs the remainder) — what
/// [`ShardRouter::new`] starts from, and what a
/// [`crate::trace::TraceReplayer`] must seed its shadow state with to
/// replay a fresh run's trace.
pub fn partition_root(root: &Interval, shards: usize) -> Vec<Vec<Interval>> {
    let len = root.length();
    (0..shards)
        .map(|k| {
            let lo = root
                .begin()
                .add(&len.mul_div_floor(k as u64, shards as u64));
            let hi = root
                .begin()
                .add(&len.mul_div_floor(k as u64 + 1, shards as u64));
            vec![Interval::new(lo, hi)]
        })
        .collect()
}

impl Clone for ShardRouter {
    fn clone(&self) -> Self {
        // Hold the steal gate so no interval is between shards while
        // the per-shard states are copied one lock at a time.
        let _gate = self.steal_gate.write().expect("poisoned steal gate");
        let shards: Vec<Mutex<Coordinator>> = self
            .shards
            .iter()
            .map(|m| {
                let mut coordinator = m.lock().expect("poisoned shard").clone();
                // The clone has no WAL attached (logs are not shareable);
                // leaving journaling on would queue deltas nobody drains.
                coordinator.disable_journal();
                Mutex::new(coordinator)
            })
            .collect();
        // Recompute the packed word from what was actually cloned: a
        // contact may empty a shard between its copy and a load of the
        // original's counter (the gate stops steals, not contacts), and
        // under the write gate no steal is in flight.
        let non_empty = shards
            .iter()
            .filter(|m| !m.lock().expect("poisoned shard").is_terminated())
            .count() as u64;
        // A clone gets a fresh registry (independent cells, like the
        // copied counters always were) seeded with the original's
        // monotone totals, so `contacts()`/`steals()` read unchanged.
        let metrics = RouterMetrics::register(&MetricsRegistry::new(), shards.len());
        metrics.seed_from(&self.metrics);
        ShardRouter {
            root: self.root.clone(),
            shards,
            state: AtomicU64::new(non_empty * NON_EMPTY_UNIT),
            metrics,
            steal_gate: RwLock::new(()),
            wal: None,
            replicable: self.replicable,
            // A trace is a run-scoped recording, not shareable state:
            // the clone starts untraced (journaling is already off).
            trace: None,
        }
    }
}

impl ShardRouter {
    /// A router over `shards` coordinators, the root range partitioned
    /// into equal contiguous slices (the last absorbs the remainder).
    /// Validates the coordinator config — invalid configs fail fast
    /// here instead of being silently clamped.
    pub fn new(
        root: Interval,
        shards: usize,
        config: CoordinatorConfig,
    ) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        let slices = partition_root(&root, shards);
        Self::restore(root, slices, None, config)
    }

    /// Rebuilds a router from checkpointed per-shard interval sets (see
    /// [`crate::checkpoint::decode_sharded_intervals`]): shard `k` owns
    /// `shard_intervals[k]`, all entries unassigned, every shard seeded
    /// with the checkpointed `SOLUTION`. A single-shard checkpoint
    /// restores as `S = 1`. Empty intervals are dropped; empty shards
    /// are legal (they start terminated and refill by stealing).
    pub fn restore(
        root: Interval,
        shard_intervals: Vec<Vec<Interval>>,
        solution: Option<Solution>,
        config: CoordinatorConfig,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if shard_intervals.is_empty() {
            return Err(ConfigError::ZeroShards);
        }
        let shards: Vec<Mutex<Coordinator>> = shard_intervals
            .into_iter()
            .map(|intervals| {
                Mutex::new(Coordinator::restore(
                    root.clone(),
                    intervals,
                    solution.clone(),
                    config.clone(),
                ))
            })
            .collect();
        let non_empty = shards
            .iter()
            .filter(|m| !m.lock().expect("poisoned shard").is_terminated())
            .count() as u64;
        let metrics = RouterMetrics::register(&MetricsRegistry::new(), shards.len());
        Ok(ShardRouter {
            root,
            shards,
            state: AtomicU64::new(non_empty * NON_EMPTY_UNIT),
            metrics,
            steal_gate: RwLock::new(()),
            wal: None,
            replicable: None,
            trace: None,
        })
    }

    /// Re-registers this router's instruments on `registry`, so its
    /// `gbnb_router_*` / `gbnb_shard_*` / `gbnb_coordinator_*` families
    /// land in a caller-owned exposition (the runtime and the socket
    /// server both inject one shared registry this way). Monotone
    /// counters carry their current values over. Builder-style: call
    /// right after construction, before the router is shared.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        let metrics = RouterMetrics::register(registry, self.shards.len());
        metrics.seed_from(&self.metrics);
        self.metrics = metrics;
        self
    }

    /// The registry this router's instruments are registered on —
    /// gateways and servers in front of the router register their own
    /// families here, so one scrape covers the whole serving path.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// Attaches a durable operation log: turns on delta journaling in
    /// every shard and drains each shard's journal into `wal` before the
    /// owning lock is released, so the log is always in state order and
    /// a crash recovers to the exact pre-crash interval sets. The
    /// store's shard count must match the router's. Builder-style: call
    /// after [`ShardRouter::with_metrics`] (the `gbnb_wal_*` instruments
    /// are registered on the current registry), before the router is
    /// shared.
    pub fn with_wal(self, wal: Arc<WalStore>) -> Self {
        assert_eq!(
            wal.shards(),
            self.shards.len(),
            "wal store shard count must match the router"
        );
        wal.set_metrics(WalMetrics::register(self.metrics()));
        for m in &self.shards {
            m.lock().expect("poisoned shard").enable_journal();
        }
        ShardRouter {
            wal: Some(wal),
            ..self
        }
    }

    /// The attached operation log, if any.
    pub fn wal(&self) -> Option<&Arc<WalStore>> {
        self.wal.as_ref()
    }

    /// Switches steal-victim selection and in-shard donation to the
    /// replicable ordered rules (see [`ShardRouter::steal_into`]'s
    /// docs): the victim is the shard whose donatable candidate has the
    /// **lowest left endpoint** ([`Coordinator::steal_preview`]) and
    /// the donation is [`Coordinator::steal_ordered`]. `seed` rotates
    /// the scan's starting shard, breaking residual ties
    /// deterministically. Builder-style: call before the router is
    /// shared.
    pub fn with_replicable(mut self, seed: u64) -> Self {
        self.replicable = Some(seed);
        self
    }

    /// The replicable seed, when ordered scheduling is on.
    pub fn replicable_seed(&self) -> Option<u64> {
        self.replicable
    }

    /// Attaches a run-trace recorder: turns on delta journaling in
    /// every shard (like [`ShardRouter::with_wal`]) and records every
    /// drained delta, work handout, cross-shard steal and cutoff
    /// broadcast into `trace`, each inside the lock section that
    /// produced it — so the recorded order is a valid linearization of
    /// the run and a [`crate::trace::TraceReplayer`] can check state
    /// consistency event by event. Composes with a WAL (the journal is
    /// drained once and fed to both). Builder-style: call before the
    /// router is shared.
    pub fn with_trace(self, trace: Arc<RunTrace>) -> Self {
        for m in &self.shards {
            m.lock().expect("poisoned shard").enable_journal();
        }
        ShardRouter {
            trace: Some(trace),
            ..self
        }
    }

    /// The attached run-trace recorder, if any.
    pub fn trace(&self) -> Option<&Arc<RunTrace>> {
        self.trace.as_ref()
    }

    /// Per-shard protocol counters, in shard order — replicable runs
    /// pin these (node handouts, donations, adoptions per shard) as
    /// run-to-run identical.
    pub fn shard_stats(&self) -> Vec<CoordinatorStats> {
        self.shards
            .iter()
            .map(|m| *m.lock().expect("poisoned shard").stats())
            .collect()
    }

    /// Drains `coordinator`'s journaled deltas into the attached log.
    /// MUST run while the shard's lock is still held — that is the only
    /// thing serializing records into state order. Append failures are
    /// counted by the store (`gbnb_wal_append_failures_total`) and heal
    /// at the next compaction; the service path does not fail over them.
    fn journal_flush(&self, idx: usize, coordinator: &mut Coordinator) {
        if self.wal.is_none() && self.trace.is_none() {
            return;
        }
        let ops = coordinator.drain_journal();
        if ops.is_empty() {
            return;
        }
        if let Some(wal) = &self.wal {
            let _ = wal.append(idx, &ops);
        }
        if let Some(trace) = &self.trace {
            trace.record_ops(idx, &ops);
        }
    }

    /// Logs a cross-shard steal with loss-proof ordering. Runs while the
    /// *victim's* lock is still held, with the victim's `Remove`/`Replace`
    /// sitting undrained in its journal.
    ///
    /// The stolen interval's `Insert` is appended (and fsynced) to the
    /// **destination's** segment first; only then is the victim's journal
    /// flushed. A crash between the two appends therefore recovers the
    /// interval in *both* shards — re-explored once per copy, which is
    /// safe — and never in neither, which would silently shrink the
    /// search space and let a resumed campaign "prove" an optimum without
    /// ever exploring the lost region.
    ///
    /// Appending to the destination's segment without holding the
    /// destination's shard lock is safe: any op referencing the stolen
    /// interval can only be journaled after `adopt_prelogged` runs under
    /// the destination's lock, which happens-after this append, and the
    /// per-segment mutex in [`WalStore::append`] turns that into record
    /// order.
    ///
    /// If the destination's append fails (poisoning its log), the
    /// victim's delta is *dropped* and its log poisoned too: flushing the
    /// `Remove` with no durable `Insert` anywhere is exactly the loss
    /// above, and the victim's later appends must also be suppressed so
    /// its log never references post-steal state it does not record.
    /// Both logs heal at the next compaction; until then recovery
    /// replays the interval still in the victim.
    fn journal_steal(
        &self,
        victim: usize,
        dest: usize,
        interval: &Interval,
        coordinator: &mut Coordinator,
    ) {
        match &self.wal {
            Some(wal) => {
                if wal.append(dest, &[WalOp::Insert(interval.clone())]).is_ok() {
                    self.journal_flush(victim, coordinator);
                } else {
                    let ops = coordinator.drain_journal();
                    wal.poison(victim);
                    // The WAL dropped the victim's delta (it heals at
                    // compaction), but the in-memory state *did* change
                    // — the trace still records it, or replay would
                    // find the stolen interval in both shards.
                    if let Some(trace) = &self.trace {
                        trace.record_ops(victim, &ops);
                    }
                }
            }
            None => self.journal_flush(victim, coordinator),
        }
        if let Some(trace) = &self.trace {
            trace.record_steal(victim, dest, interval);
        }
    }

    /// Compacts the attached log: takes a consistent cut (steal gate
    /// write-held plus every shard lock, ascending — the only place the
    /// router holds more than one shard lock), switches the WAL to its
    /// next generation, clones the per-shard state, then releases all
    /// locks and persists the cut as a snapshot
    /// ([`WalStore::compact`]). Returns `Ok(false)` when no WAL is
    /// attached.
    pub fn compact_wal(&self) -> Result<bool, WalError> {
        let Some(wal) = &self.wal else {
            return Ok(false);
        };
        let (generation, shard_intervals, solution) = {
            let _gate = self.steal_gate.write().expect("poisoned steal gate");
            let mut guards: Vec<_> = self
                .shards
                .iter()
                .map(|m| m.lock().expect("poisoned shard"))
                .collect();
            let generation = wal.advance_generation();
            let mut best: Option<Solution> = None;
            let mut shard_intervals = Vec::with_capacity(guards.len());
            for coordinator in guards.iter_mut() {
                // Journals are drained under each service lock, so they
                // are empty here; discard defensively anyway — the cut
                // being snapshotted already reflects any queued delta.
                let _ = coordinator.drain_journal();
                shard_intervals.push(
                    coordinator
                        .entries()
                        .iter()
                        .map(|e| e.interval.clone())
                        .collect::<Vec<Interval>>(),
                );
                if let Some(s) = coordinator.solution() {
                    if best.as_ref().is_none_or(|b| s.cost < b.cost) {
                        best = Some(s.clone());
                    }
                }
            }
            (generation, shard_intervals, best)
        };
        wal.compact(generation, &shard_intervals, solution.as_ref())?;
        Ok(true)
    }

    /// Mean nanoseconds a shard lock was held per service section, over
    /// the router's lifetime — the contention hint the adaptive gateway
    /// policy reads. Zero before the first contact.
    pub fn mean_lock_hold_ns(&self) -> u64 {
        let mut sum = 0u64;
        let mut count = 0u64;
        for h in &self.metrics.shard_lock_hold {
            sum = sum.saturating_add(h.sum());
            count += h.count();
        }
        sum.checked_div(count).unwrap_or(0)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The root range the shards jointly administer.
    pub fn root(&self) -> &Interval {
        &self.root
    }

    /// The home shard of `worker` (Fibonacci multiplicative hash): every
    /// contact of one worker lands on the same shard.
    pub fn route(&self, worker: WorkerId) -> ShardId {
        let mixed = worker.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ShardId(((mixed >> 32) % self.shards.len() as u64) as u32)
    }

    /// Stamps a request with its home shard — the shard-aware envelope
    /// executors can queue per shard.
    pub fn envelope(&self, request: Request) -> ShardEnvelope {
        ShardEnvelope {
            shard: self.route(request.worker()),
            request,
        }
    }

    /// Routes and serves one worker request at injected time `now_ns` —
    /// the sharded equivalent of [`Coordinator::handle`].
    pub fn handle(&self, request: Request, now_ns: u64) -> Response {
        let envelope = self.envelope(request);
        self.handle_envelope(envelope, now_ns)
    }

    /// Serves an already-routed envelope. A local `Terminate` (the home
    /// shard drained) is never surfaced while other shards hold work:
    /// the router steals into the home shard and retries the request,
    /// so a worker only sees [`Response::Terminate`] at global
    /// termination. When nothing is stealable yet (every remaining
    /// interval is held and too short to split) the worker gets
    /// [`Response::Retry`] instead of a false `Terminate`.
    pub fn handle_envelope(&self, envelope: ShardEnvelope, now_ns: u64) -> Response {
        let ShardEnvelope { shard, request } = envelope;
        let home = shard.0 as usize;
        assert!(home < self.shards.len(), "envelope for unknown shard");
        self.metrics.contacts.inc();
        match request {
            // Only work requests can draw a local Terminate and loop
            // through the steal path; re-issuing one costs two u64
            // copies. Everything else goes through by value, so the hot
            // update path never clones its Interval.
            request @ (Request::Join { .. } | Request::RequestWork { .. }) => {
                let response = self.handle_on(home, request.clone(), now_ns);
                if let Response::Terminate = response {
                    self.resolve_drained(home, request, now_ns)
                } else {
                    response
                }
            }
            Request::ReportSolution { worker, solution } => {
                let broadcast = solution.clone();
                let response =
                    self.handle_on(home, Request::ReportSolution { worker, solution }, now_ns);
                self.broadcast_solution(home, &broadcast);
                response
            }
            Request::UpdateAndReport {
                worker,
                interval,
                solution,
            } => {
                let broadcast = solution.clone();
                let response = self.handle_on(
                    home,
                    Request::UpdateAndReport {
                        worker,
                        interval,
                        solution,
                    },
                    now_ns,
                );
                if let Some(solution) = broadcast {
                    self.broadcast_solution(home, &solution);
                }
                response
            }
            request => self.handle_on(home, request, now_ns),
        }
    }

    /// Serves an already-routed **bundle** in one pass: the envelopes
    /// are grouped by home shard (stably — per-shard request order is
    /// bundle order) and each shard's group is folded through
    /// [`Coordinator::apply_batch`] under **one lock acquisition per
    /// shard per bundle** (plus one re-acquisition per drained-shard
    /// steal, a rare endgame event). Responses come back **in input
    /// order**, each stamped with the shard that served it.
    ///
    /// Semantics are pinned by a property test: the outcome — responses
    /// *and* coordinator state — is identical to delivering the
    /// bundle's requests one at a time through
    /// [`ShardRouter::handle_envelope`] in grouped order (ascending
    /// shard, per-shard bundle order). At `S = 1` grouping is the
    /// identity, so a bundle is exactly its sequential replay.
    /// [`Response::Retry`] can appear inside a bundle reply exactly
    /// where sequential delivery would produce it: a work request whose
    /// home shard drained mid-bundle while every other shard's
    /// remaining interval is held and unsplittable.
    ///
    /// Solutions carried by the bundle ([`Request::ReportSolution`] /
    /// [`Request::UpdateAndReport`]) are merged into their home shard
    /// in place and broadcast to the other shards between shard runs,
    /// so every later-run shard hands out cutoffs at least as tight as
    /// sequential delivery would.
    pub fn handle_bundle(
        &self,
        bundle: Vec<ShardEnvelope>,
        now_ns: u64,
    ) -> Vec<(ShardId, Response)> {
        // An empty bundle — a gateway or coalescing tier flushing an
        // empty buffer — is free: no shard is contacted, no contact is
        // counted, nothing is allocated (pinned by a unit test).
        if bundle.is_empty() {
            return Vec::new();
        }
        let total = bundle.len();
        let mut groups: Vec<Vec<(usize, Request)>> = vec![Vec::new(); self.shards.len()];
        for (pos, envelope) in bundle.into_iter().enumerate() {
            let home = envelope.shard.0 as usize;
            assert!(home < self.shards.len(), "envelope for unknown shard");
            groups[home].push((pos, envelope.request));
        }
        let mut out: Vec<Option<(ShardId, Response)>> = (0..total).map(|_| None).collect();
        for (home, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = ShardId(home as u32);
            // The best solution the group carries, for the cross-shard
            // broadcast after the run (merging only the minimum is
            // state-equivalent to broadcasting each in turn).
            let mut best_report: Option<Solution> = None;
            for (_, request) in &group {
                let solution = match request {
                    Request::ReportSolution { solution, .. } => Some(solution),
                    Request::UpdateAndReport {
                        solution: Some(solution),
                        ..
                    } => Some(solution),
                    _ => None,
                };
                if let Some(s) = solution {
                    if best_report.as_ref().is_none_or(|b| s.cost < b.cost) {
                        best_report = Some(s.clone());
                    }
                }
            }
            let (mut positions, requests): (Vec<usize>, Vec<Request>) = group.into_iter().unzip();
            positions.reverse(); // pop() yields original order
            let mut pending = requests;
            loop {
                self.metrics.contacts.inc();
                self.metrics.shard_contacts[home].inc();
                let t0 = Instant::now();
                let (outcome, live) = {
                    let mut coordinator = self.shards[home].lock().expect("poisoned shard");
                    let was_live = !coordinator.is_terminated();
                    let outcome = if self.trace.is_some() {
                        self.apply_group_traced(home, &mut coordinator, pending, now_ns)
                    } else {
                        coordinator.apply_batch(pending, now_ns)
                    };
                    self.journal_flush(home, &mut coordinator);
                    // An apply_batch can empty the shard (completions,
                    // empty intersections) but never refill it, so the
                    // whole run is at most one live→empty transition.
                    if was_live && coordinator.is_terminated() {
                        self.state.fetch_sub(NON_EMPTY_UNIT, Ordering::AcqRel);
                    }
                    let live = coordinator.cardinality() as u64;
                    (outcome, live)
                };
                let held_ns = t0.elapsed().as_nanos() as u64;
                self.metrics.shard_lock_hold[home].observe(held_ns);
                self.metrics.batch_ns.observe(held_ns);
                self.metrics.shard_live_intervals[home].set(live);
                for response in outcome.responses {
                    let pos = positions.pop().expect("a position per response");
                    out[pos] = Some((shard, response));
                }
                match outcome.stalled {
                    None => break,
                    Some((request, rest)) => {
                        // The home shard drained mid-bundle: steal and
                        // retry exactly like sequential delivery, then
                        // resume the tail under a fresh lock.
                        let response = self.resolve_drained(home, request, now_ns);
                        let pos = positions.pop().expect("a position for the stalled request");
                        out[pos] = Some((shard, response));
                        if rest.is_empty() {
                            break;
                        }
                        pending = rest;
                    }
                }
            }
            if let Some(solution) = best_report {
                self.broadcast_solution(home, &solution);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("a response for every envelope"))
            .collect()
    }

    /// `true` iff every shard's `INTERVALS` is empty and no steal is in
    /// flight: global implicit termination (§4.3), answered from one
    /// load of the shared packed count.
    pub fn is_terminated(&self) -> bool {
        self.state.load(Ordering::Acquire) == 0
    }

    /// Total interval count across shards.
    pub fn cardinality(&self) -> usize {
        self.shards
            .iter()
            .map(|m| m.lock().expect("poisoned shard").cardinality())
            .sum()
    }

    /// Total not-yet-explored length across shards.
    pub fn size(&self) -> UBig {
        let mut total = UBig::zero();
        for m in &self.shards {
            total += &m.lock().expect("poisoned shard").size();
        }
        total
    }

    /// Successful cross-shard steals so far.
    ///
    /// Sampled under the **write** side of the steal gate: a steal's
    /// trace event is recorded (and its counter incremented) entirely
    /// under the read side, so quiescing in-flight steals first
    /// guarantees the returned count can never disagree with the
    /// number of steal events in an attached [`RunTrace`]. Previously
    /// the counter was read ungated, so a report snapshot racing a
    /// steal could run one behind the trace.
    pub fn steals(&self) -> u64 {
        let _gate = self.steal_gate.write().expect("poisoned steal gate");
        self.metrics.steals.get()
    }

    /// Lock-acquiring coordinator contacts served so far: single
    /// requests count one each, a bundle counts one **per shard it
    /// touches** (plus one per drained-shard steal retry). With
    /// batching, `contacts()` grows far slower than the per-op protocol
    /// counters in [`ShardRouter::stats`] — that gap is the amortized
    /// lock traffic, and tests pin it (a bundle of N updates to one
    /// shard moves `contacts` by exactly 1 and `updates` by N).
    pub fn contacts(&self) -> u64 {
        self.metrics.contacts.get()
    }

    /// Protocol counters aggregated over all shards.
    pub fn stats(&self) -> CoordinatorStats {
        let mut total = CoordinatorStats::default();
        for m in &self.shards {
            total.merge(m.lock().expect("poisoned shard").stats());
        }
        total
    }

    /// The best solution across shards (they stay in sync through the
    /// report broadcast, but a restored router may briefly differ).
    pub fn solution(&self) -> Option<Solution> {
        let mut best: Option<Solution> = None;
        for m in &self.shards {
            if let Some(s) = m.lock().expect("poisoned shard").solution() {
                if best.as_ref().is_none_or(|b| s.cost < b.cost) {
                    best = Some(s.clone());
                }
            }
        }
        best
    }

    /// The tightest cutoff any shard would hand out.
    pub fn cutoff(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|m| m.lock().expect("poisoned shard").cutoff())
            .min()
    }

    /// Earliest instant at which some holder on some shard becomes
    /// expirable.
    pub fn next_expiry_at(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|m| m.lock().expect("poisoned shard").next_expiry_at())
            .min()
    }

    /// Expires stale holders on every shard; returns the number expired.
    /// Expiry only detaches holders (intervals stay), so it never
    /// changes the non-empty count.
    pub fn expire_stale_holders(&self, now_ns: u64) -> u64 {
        let t0 = Instant::now();
        let expired: u64 = self
            .shards
            .iter()
            .map(|m| {
                m.lock()
                    .expect("poisoned shard")
                    .expire_stale_holders(now_ns)
            })
            .sum();
        self.metrics
            .expiry_ns
            .observe(t0.elapsed().as_nanos() as u64);
        if expired > 0 {
            self.metrics.expired_holders.add(expired);
        }
        expired
    }

    /// Per-shard interval snapshot plus the best solution — the input to
    /// [`crate::checkpoint::encode_sharded_intervals`]. Holds the steal
    /// gate for the whole walk: intervals cannot migrate between shards
    /// mid-snapshot, so the written union can never silently miss an
    /// in-flight steal (a checkpoint that loses search space would make
    /// a later restore "prove" an optimum it never searched). Requests
    /// keep flowing during the walk; an entry completed after its shard
    /// was visited merely leaves the snapshot conservatively large,
    /// which a restore re-explores — redundant, never wrong.
    pub fn snapshot(&self) -> (Vec<Vec<Interval>>, Option<Solution>) {
        let _gate = self.steal_gate.write().expect("poisoned steal gate");
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut best: Option<Solution> = None;
        for m in &self.shards {
            let coordinator = m.lock().expect("poisoned shard");
            shards.push(
                coordinator
                    .entries()
                    .iter()
                    .map(|e| e.interval.clone())
                    .collect(),
            );
            if let Some(s) = coordinator.solution() {
                if best.as_ref().is_none_or(|b| s.cost < b.cost) {
                    best = Some(s.clone());
                }
            }
        }
        (shards, best)
    }

    /// Verifies every shard's structural invariants plus the global
    /// ones — entries are pairwise disjoint *across* shards, no steal is
    /// in flight, and the packed non-empty count matches reality.
    /// O(n²) over all entries; for tests, never on the contact path.
    /// Holds the steal gate, so concurrent steals are excluded; callers
    /// should still quiesce request drivers for a meaningful answer.
    pub fn check_invariants(&self) -> Result<(), String> {
        let _gate = self.steal_gate.write().expect("poisoned steal gate");
        let mut all: Vec<Interval> = Vec::new();
        let mut live = 0u64;
        for (k, m) in self.shards.iter().enumerate() {
            let coordinator = m.lock().expect("poisoned shard");
            coordinator
                .check_invariants()
                .map_err(|e| format!("shard {k}: {e}"))?;
            if !coordinator.is_terminated() {
                live += 1;
            }
            all.extend(coordinator.entries().iter().map(|e| e.interval.clone()));
        }
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                if a.overlaps(b) {
                    return Err(format!("entries overlap across shards: {a} and {b}"));
                }
            }
        }
        let state = self.state.load(Ordering::Acquire);
        if !state.is_multiple_of(NON_EMPTY_UNIT) {
            return Err(format!(
                "steal in flight ({}) despite the held gate",
                state % NON_EMPTY_UNIT
            ));
        }
        if state / NON_EMPTY_UNIT != live {
            return Err(format!(
                "non-empty count {} diverged from actual {live}",
                state / NON_EMPTY_UNIT
            ));
        }
        Ok(())
    }

    /// Serves `request` on shard `idx`, keeping the non-empty count in
    /// step with any empty↔non-empty transition (all under the shard's
    /// lock). The lock-hold span is recorded per shard, and per request
    /// class (selection vs update) for the single-request path.
    fn handle_on(&self, idx: usize, request: Request, now_ns: u64) -> Response {
        let latency = match &request {
            Request::Join { .. } | Request::RequestWork { .. } => Some(&self.metrics.selection_ns),
            Request::Update { .. } | Request::UpdateAndReport { .. } => {
                Some(&self.metrics.update_ns)
            }
            _ => None,
        };
        self.metrics.shard_contacts[idx].inc();
        // Handouts are traced by (worker, assigned interval); only work
        // requests can draw a `Response::Work`.
        let requester = match &request {
            Request::Join { worker, .. } | Request::RequestWork { worker, .. } => Some(*worker),
            _ => None,
        };
        let t0 = Instant::now();
        let (response, live) = {
            let mut coordinator = self.shards[idx].lock().expect("poisoned shard");
            let was_live = !coordinator.is_terminated();
            let response = coordinator.handle(request, now_ns);
            self.journal_flush(idx, &mut coordinator);
            // Record the handout *after* the contact's deltas, still
            // under the shard lock: replay then finds the handed
            // interval among the shard's live entries.
            if let (Some(trace), Some(worker)) = (&self.trace, requester) {
                if let Response::Work { interval, .. } = &response {
                    trace.record_handout(worker.0, idx, interval);
                }
            }
            if was_live && coordinator.is_terminated() {
                self.state.fetch_sub(NON_EMPTY_UNIT, Ordering::AcqRel);
            }
            let live = coordinator.cardinality() as u64;
            (response, live)
        };
        let held_ns = t0.elapsed().as_nanos() as u64;
        self.metrics.shard_lock_hold[idx].observe(held_ns);
        if let Some(h) = latency {
            h.observe(held_ns);
        }
        self.metrics.shard_live_intervals[idx].set(live);
        response
    }

    /// Per-request twin of [`Coordinator::apply_batch`] used when a
    /// [`RunTrace`] is attached. The group still runs under **one**
    /// shard lock acquisition, but each request's journal deltas are
    /// drained — and its handout recorded — before the next request
    /// runs. `apply_batch` drains the journal once at the end of the
    /// group, which is fine for the WAL (op order within one lock
    /// scope is arbitrary but consistent) yet would break handout
    /// replay: a later holder's `Update` in the same group can shrink
    /// a duplicated entry *before* the earlier handout is recorded,
    /// so replay would no longer find the handed interval live.
    /// Responses and final coordinator state match `apply_batch` —
    /// that equivalence is exactly what the bundle-vs-sequential
    /// property test pins.
    fn apply_group_traced(
        &self,
        home: usize,
        coordinator: &mut Coordinator,
        requests: Vec<Request>,
        now_ns: u64,
    ) -> BatchOutcome {
        let trace = self.trace.as_ref().expect("traced group without a trace");
        let mut responses = Vec::with_capacity(requests.len());
        let mut queue = requests.into_iter();
        while let Some(request) = queue.next() {
            let requester = match &request {
                Request::Join { worker, .. } | Request::RequestWork { worker, .. } => Some(*worker),
                _ => None,
            };
            let response = coordinator.handle(request.clone(), now_ns);
            self.journal_flush(home, coordinator);
            if requester.is_some() && matches!(response, Response::Terminate) {
                // Same stall contract as `apply_batch`: hand the
                // drained work request and the unprocessed tail back
                // to the bundle loop for steal-and-retry.
                return BatchOutcome {
                    responses,
                    stalled: Some((request, queue.collect())),
                };
            }
            if let (Some(worker), Response::Work { interval, .. }) = (requester, &response) {
                trace.record_handout(worker.0, home, interval);
            }
            responses.push(response);
        }
        BatchOutcome {
            responses,
            stalled: None,
        }
    }

    /// Continuation of a work request whose home shard answered
    /// `Terminate`: steal into the shard and retry until the request is
    /// served, the computation is globally over, or nothing is
    /// stealable right now (endgame backpressure). Shared by the
    /// single-request path and the bundle path, so a mid-bundle drain
    /// resolves exactly like sequential delivery.
    fn resolve_drained(&self, home: usize, request: Request, now_ns: u64) -> Response {
        loop {
            if self.is_terminated() {
                return Response::Terminate;
            }
            if !self.steal_into(home) {
                // Nothing stealable: either the work we saw finished
                // concurrently (termination) or the endgame intervals
                // are all in their holders' hands (retry shortly).
                return if self.is_terminated() {
                    Response::Terminate
                } else {
                    Response::Retry
                };
            }
            self.metrics.contacts.inc();
            let response = self.handle_on(home, request.clone(), now_ns);
            match response {
                Response::Terminate => continue,
                response => return response,
            }
        }
    }

    /// Steals the largest donatable interval from the most loaded other
    /// shard into `dest`. Locks are taken one shard at a time (scan,
    /// steal, adopt), so no lock ordering issues arise; the price is
    /// that a concurrent completion can void the scan, in which case
    /// this returns `false` and the caller re-checks termination.
    ///
    /// While the stolen interval is between shards it is represented by
    /// an in-flight unit in [`ShardRouter::state`] — taken *before* the
    /// victim can be counted empty, released *after* the destination is
    /// counted non-empty — so termination never misfires mid-steal; and
    /// the whole move holds the read side of the steal gate, so
    /// snapshots (write side) can never observe the interval in neither
    /// shard. When a WAL is attached the move is logged with the same
    /// never-in-neither guarantee on disk: see
    /// [`ShardRouter::journal_steal`].
    fn steal_into(&self, dest: usize) -> bool {
        let _gate = self.steal_gate.read().expect("poisoned steal gate");
        let victim = if let Some(seed) = self.replicable {
            // Replicable rule: the victim is the shard whose would-be
            // donated piece has the **lowest left endpoint** — a pure
            // function of the interval sets, independent of load
            // history. The seed only rotates the scan start, which
            // fixes how exact-endpoint ties break for a given run.
            let n = self.shards.len();
            let start = (seed as usize) % n;
            let mut best: Option<(usize, UBig)> = None;
            for step in 0..n {
                let i = (start + step) % n;
                if i == dest {
                    continue;
                }
                let coordinator = self.shards[i].lock().expect("poisoned shard");
                if coordinator.is_terminated() {
                    continue;
                }
                let Some(left) = coordinator.steal_preview() else {
                    continue;
                };
                if best.as_ref().is_none_or(|(_, b)| left < *b) {
                    best = Some((i, left));
                }
            }
            best.map(|(i, _)| i)
        } else {
            let mut victim: Option<(usize, UBig)> = None;
            for (i, m) in self.shards.iter().enumerate() {
                if i == dest {
                    continue;
                }
                let coordinator = m.lock().expect("poisoned shard");
                if coordinator.is_terminated() {
                    continue;
                }
                let size = coordinator.size();
                if victim.as_ref().is_none_or(|(_, s)| size > *s) {
                    victim = Some((i, size));
                }
            }
            victim.map(|(i, _)| i)
        };
        let Some(victim) = victim else {
            return false;
        };
        let stolen = {
            let mut coordinator = self.shards[victim].lock().expect("poisoned shard");
            let was_live = !coordinator.is_terminated();
            let stolen = if self.replicable.is_some() {
                coordinator.steal_ordered()
            } else {
                coordinator.steal_largest()
            };
            if let Some(interval) = &stolen {
                self.journal_steal(victim, dest, interval, &mut coordinator);
                // In-flight unit first, so the word stays non-zero even
                // if the next line empties the victim.
                self.state.fetch_add(1, Ordering::AcqRel);
            }
            if was_live && coordinator.is_terminated() {
                self.state.fetch_sub(NON_EMPTY_UNIT, Ordering::AcqRel);
            }
            stolen
        };
        let Some(interval) = stolen else {
            return false;
        };
        let mut coordinator = self.shards[dest].lock().expect("poisoned shard");
        let was_terminated = coordinator.is_terminated();
        // The `Insert` was pre-logged by `journal_steal`; journaling it
        // again here would duplicate the record.
        coordinator.adopt_prelogged(interval);
        if was_terminated {
            self.state.fetch_add(NON_EMPTY_UNIT, Ordering::AcqRel);
        }
        // Release the in-flight unit only now that the destination is
        // counted.
        self.state.fetch_sub(1, Ordering::AcqRel);
        self.metrics.steals.inc();
        true
    }

    /// Merges an improving solution into every shard but `home` (which
    /// already adopted it through the regular report path).
    fn broadcast_solution(&self, home: usize, solution: &Solution) {
        for (i, m) in self.shards.iter().enumerate() {
            if i != home {
                let mut coordinator = m.lock().expect("poisoned shard");
                if coordinator.merge_solution(solution) {
                    self.journal_flush(i, &mut coordinator);
                    // The flush already recorded the adopting
                    // `Solution` op; the cutoff event is the
                    // broadcast marker replay asserts against.
                    if let Some(trace) = &self.trace {
                        trace.record_cutoff(i, solution.cost);
                    }
                }
            }
        }
    }
}
