//! Write-ahead operation log for coordinator state (paper §4.1, hardened).
//!
//! The paper checkpoints `INTERVALS` and `SOLUTION` on a timer; a farmer
//! crash between ticks silently forfeits up to a full checkpoint interval
//! of exploration. This module closes that window: every state-changing
//! operation the coordinator performs (interval insert / remove / shrink,
//! solution improvement) is appended to a per-shard operation log *before*
//! the owning shard lock is released, and recovery replays
//! `snapshot + log tail` back to the exact pre-crash state.
//!
//! ## Record framing
//!
//! A log segment is a sequence of CRC-framed, length-prefixed records:
//!
//! ```text
//! ┌─────────┬──────────┬──────────┬──────────────┐
//! │ magic 4B│ len u32LE│ crc u32LE│ payload (len)│
//! └─────────┴──────────┴──────────┴──────────────┘
//! ```
//!
//! The magic `57 B7 41 4C` contains a non-ASCII byte (`B7`), so it can
//! never collide with the decimal-text payload bytes — which is what lets
//! recovery distinguish a **torn tail** (crash mid-append: the incomplete
//! bytes are a prefix of one record and contain no further magic — the
//! tail is truncated and replay succeeds) from **mid-log corruption** (a
//! bad CRC, a broken magic, or an incomplete record *followed by more
//! records* — recovery refuses loudly with [`WalError::Corrupt`]).
//!
//! The payload is one operation per line, reusing the checkpoint codec's
//! decimal-text interval encoding ([`crate::checkpoint::encode_interval_line`])
//! so disk snapshots, the wire protocol, and the WAL all share one
//! human-auditable format:
//!
//! ```text
//! ins 120 720          # insert [120, 720)
//! del 120 720          # remove it
//! rep 120 720 240 720  # replace [120,720) with [240,720) (a shrink)
//! sol 3679 13 35 2     # solution: cost 3679, leaf ranks 13 35 2
//! ```
//!
//! ## Segments, generations, compaction
//!
//! Shard `k` appends to blob `shard-{k}-gen-{g}.wal`. Compaction takes a
//! consistent cut of the router (all shard locks held), bumps the
//! generation `g → g+1` (subsequent appends open fresh segments), then —
//! outside the locks — writes the cut as `snap-{g+1}.*` blobs in the
//! existing v1/sharded checkpoint format, atomically publishes
//! `MANIFEST` (the commit point), and deletes the old generation's
//! segments. Recovery reads `MANIFEST` for the committed generation `G`,
//! loads `snap-{G}.*`, and replays every surviving segment with
//! generation ≥ `G` in ascending order; a crash anywhere in the
//! compaction sequence recovers correctly (stale segments are replayed
//! or ignored based solely on the committed manifest).
//!
//! ## Failure semantics
//!
//! A failed append is repaired by truncating the segment back to its last
//! known-good length; the shard's log is then **stale** (it no longer
//! reflects live state) and is marked poisoned — further appends are
//! skipped and counted until the next compaction writes a fresh snapshot
//! and heals the log. Failures are never silent: they are counted in
//! `gbnb_wal_append_failures_total` and surfaced to the caller.
//!
//! Cross-shard steals span *two* segments and are ordered loss-proof:
//! the stolen interval's `ins` is appended to the destination's segment
//! (and fsynced) **before** the victim's `del`/`rep` can be. A crash
//! between the two appends therefore recovers the interval in *both*
//! shards — it is re-explored once per copy, which is safe — and never
//! in neither, which would silently shrink the search space. If the
//! destination's append fails, the victim's half of the move is dropped
//! and its log poisoned too ([`WalStore::poison`]): recovery then replays
//! the interval still in the victim until compaction heals both logs.

use crate::checkpoint::{
    decode_interval_line, decode_sharded_intervals, decode_solution, encode_interval_line,
    encode_sharded_intervals, encode_solution, CheckpointError,
};
use crate::storage::StorageBackend;
use gridbnb_bigint::UBig;
use gridbnb_coding::Interval;
use gridbnb_engine::Solution;
use gridbnb_metrics::{latency_buckets_ns, Counter, Gauge, Histogram, MetricsRegistry};
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Record magic: `W · A L` with a non-ASCII second byte, so the framing
/// can never be mistaken for decimal-text payload bytes.
pub const WAL_MAGIC: [u8; 4] = [0x57, 0xB7, 0x41, 0x4C];

/// Bytes of framing before the payload: magic + len + crc.
pub const RECORD_HEADER_LEN: usize = 12;

/// Name of the manifest blob — the commit point of every compaction.
pub const MANIFEST_BLOB: &str = "MANIFEST";

const MANIFEST_HEADER: &str = "gridbnb-wal-manifest v1";

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, no dependency.
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    })
}

/// CRC32 (IEEE) of `bytes` — the checksum in every record header.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Errors from the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// Storage failure (append, put, truncate, list, ...).
    Io(io::Error),
    /// Structural damage that recovery refuses to repair silently: a bad
    /// CRC or magic, an incomplete record that is *not* the final bytes
    /// of the final segment, an undecodable operation, or replay
    /// reaching an impossible state (e.g. removing an interval the
    /// snapshot never contained).
    Corrupt {
        /// Blob in which the damage was found.
        blob: String,
        /// Byte offset of the damaged record within the blob (0 for
        /// whole-blob problems such as a bad snapshot).
        offset: u64,
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt {
                blob,
                offset,
                detail,
            } => write!(f, "wal corrupt: {blob} at byte {offset}: {detail}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

fn corrupt(blob: &str, offset: u64, detail: impl Into<String>) -> WalError {
    WalError::Corrupt {
        blob: blob.to_string(),
        offset,
        detail: detail.into(),
    }
}

fn checkpoint_corrupt(blob: &str, e: CheckpointError) -> WalError {
    match e {
        CheckpointError::Io(e) => WalError::Io(e),
        CheckpointError::Corrupt(detail) => corrupt(blob, 0, detail),
    }
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

/// One logged state delta of a coordinator shard.
///
/// The recoverable state of a shard is its multiset of unexplored
/// intervals plus the best solution (holders and heartbeats restore
/// unassigned, exactly as [`crate::Coordinator::restore`] does), so four
/// deltas suffice to journal every mutation the coordinator performs:
/// partitioning emits `Replace` + `Insert`, an exhausted or
/// empty-intersected unit emits `Remove`, an intersection shrink emits
/// `Replace`, a cross-shard steal emits `Remove` (victim) + `Insert`
/// (destination), and an adopted solution emits `Solution`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// A new unexplored interval entered `INTERVALS`.
    Insert(Interval),
    /// An interval left `INTERVALS` (explored to completion or donated).
    Remove(Interval),
    /// An interval changed in place (intersection shrink, partition keep).
    Replace {
        /// The interval as previously logged.
        old: Interval,
        /// Its replacement.
        new: Interval,
    },
    /// `SOLUTION` improved.
    Solution(Solution),
}

impl WalOp {
    /// Encodes the op as one decimal-text line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            WalOp::Insert(iv) => format!("ins {}", encode_interval_line(iv)),
            WalOp::Remove(iv) => format!("del {}", encode_interval_line(iv)),
            WalOp::Replace { old, new } => format!(
                "rep {} {}",
                encode_interval_line(old),
                encode_interval_line(new)
            ),
            WalOp::Solution(s) => {
                let mut line = format!("sol {}", s.cost);
                for r in &s.leaf_ranks {
                    line.push(' ');
                    line.push_str(&r.to_string());
                }
                line
            }
        }
    }

    /// Decodes one op line (the inverse of [`WalOp::encode`]).
    pub fn decode(line: &str) -> Result<WalOp, String> {
        let interval_of = |a: &str, b: &str| -> Result<Interval, String> {
            decode_interval_line(&format!("{a} {b}")).map_err(|e| e.to_string())
        };
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["ins", a, b] => Ok(WalOp::Insert(interval_of(a, b)?)),
            ["del", a, b] => Ok(WalOp::Remove(interval_of(a, b)?)),
            ["rep", a, b, c, d] => Ok(WalOp::Replace {
                old: interval_of(a, b)?,
                new: interval_of(c, d)?,
            }),
            ["sol", cost, ranks @ ..] => {
                let cost = cost
                    .parse::<u64>()
                    .map_err(|e| format!("bad solution cost: {e}"))?;
                let leaf_ranks = ranks
                    .iter()
                    .map(|r| r.parse::<u64>().map_err(|e| format!("bad rank: {e}")))
                    .collect::<Result<Vec<u64>, String>>()?;
                Ok(WalOp::Solution(Solution::new(cost, leaf_ranks)))
            }
            _ => Err(format!("unrecognized wal op: {line:?}")),
        }
    }
}

/// Frames a batch of ops as one CRC'd record ready to append.
pub fn encode_record(ops: &[WalOp]) -> Vec<u8> {
    let mut payload = String::new();
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            payload.push('\n');
        }
        payload.push_str(&op.encode());
    }
    let payload = payload.into_bytes();
    let mut record = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    record.extend_from_slice(&WAL_MAGIC);
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

fn decode_payload(blob: &str, offset: u64, payload: &[u8]) -> Result<Vec<WalOp>, WalError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| corrupt(blob, offset, "record payload is not UTF-8"))?;
    let mut ops = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        ops.push(WalOp::decode(line).map_err(|e| corrupt(blob, offset, e))?);
    }
    Ok(ops)
}

// ---------------------------------------------------------------------------
// Blob naming
// ---------------------------------------------------------------------------

/// Blob name of shard `shard`'s log segment at `generation`:
/// `shard-{k}-gen-{g}.wal`. Public so crash-injection tests and tools
/// can address a specific segment.
pub fn segment_blob(shard: usize, generation: u64) -> String {
    format!("shard-{shard}-gen-{generation}.wal")
}

fn snap_intervals_blob(generation: u64) -> String {
    format!("snap-{generation}.intervals")
}

fn snap_solution_blob(generation: u64) -> String {
    format!("snap-{generation}.solution")
}

/// Parses `shard-{k}-gen-{g}.wal` → `(k, g)`.
fn parse_segment_blob(name: &str) -> Option<(usize, u64)> {
    let rest = name.strip_prefix("shard-")?;
    let rest = rest.strip_suffix(".wal")?;
    let (shard, gen) = rest.split_once("-gen-")?;
    Some((shard.parse().ok()?, gen.parse().ok()?))
}

/// Parses `snap-{g}.intervals` / `snap-{g}.solution` → `g`.
fn parse_snap_blob(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("snap-")?;
    let gen = rest
        .strip_suffix(".intervals")
        .or_else(|| rest.strip_suffix(".solution"))?;
    gen.parse().ok()
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// The `gbnb_wal_*` instrument family.
#[derive(Clone, Debug)]
pub struct WalMetrics {
    /// `gbnb_wal_appends_total` — records appended successfully.
    pub appends: Counter,
    /// `gbnb_wal_append_bytes_total` — framed bytes appended.
    pub append_bytes: Counter,
    /// `gbnb_wal_append_failures_total` — appends that failed (the
    /// shard's log is stale until the next compaction).
    pub append_failures: Counter,
    /// `gbnb_wal_append_ns` — latency of one append (encode + store).
    pub append_ns: Histogram,
    /// `gbnb_wal_compactions_total` — completed compactions.
    pub compactions: Counter,
    /// `gbnb_wal_compaction_ns` — latency of the IO half of a compaction
    /// (snapshot encode + put + manifest + cleanup; the in-lock cut is
    /// measured by the router's lock-hold histogram).
    pub compaction_ns: Histogram,
    /// `gbnb_wal_compaction_failures_total` — compactions that failed
    /// mid-write. The previously committed manifest stays authoritative
    /// and the log keeps growing until a later attempt succeeds, so a
    /// failure costs replay time at recovery, never correctness.
    pub compaction_failures: Counter,
    /// `gbnb_wal_torn_truncations_total` — torn tails repaired at
    /// recovery by truncation.
    pub torn_truncations: Counter,
    /// `gbnb_wal_generation` — current compaction generation.
    pub generation: Gauge,
}

impl WalMetrics {
    /// Registers the family on `registry` (idempotent, like every
    /// gridbnb instrument family).
    pub fn register(registry: &MetricsRegistry) -> Self {
        let buckets = latency_buckets_ns();
        WalMetrics {
            appends: registry.counter("gbnb_wal_appends_total", &[]),
            append_bytes: registry.counter("gbnb_wal_append_bytes_total", &[]),
            append_failures: registry.counter("gbnb_wal_append_failures_total", &[]),
            append_ns: registry.histogram("gbnb_wal_append_ns", &[], &buckets),
            compactions: registry.counter("gbnb_wal_compactions_total", &[]),
            compaction_ns: registry.histogram("gbnb_wal_compaction_ns", &[], &buckets),
            compaction_failures: registry.counter("gbnb_wal_compaction_failures_total", &[]),
            torn_truncations: registry.counter("gbnb_wal_torn_truncations_total", &[]),
            generation: registry.gauge("gbnb_wal_generation", &[]),
        }
    }
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Per-shard append state. Accessed only while the owning coordinator
/// shard's lock is held (appends) or while *all* shard locks are held
/// (generation bump at a compaction cut), so the inner mutex is
/// uncontended — it exists to keep the type `Sync` without unsafe code.
#[derive(Debug)]
struct ShardLog {
    /// Generation of the segment currently being appended.
    generation: u64,
    /// Last known-good byte length of that segment.
    good_len: u64,
    /// Set when an append failed and the repair truncate also failed (or
    /// the failure made the log diverge from live state): appends are
    /// skipped until the next compaction writes a fresh snapshot.
    poisoned: bool,
}

/// The durable operation log: per-shard CRC-framed segments plus
/// generational snapshots behind a [`StorageBackend`].
///
/// Created fresh with [`WalStore::create`] (writes the `gen 0` snapshot
/// of the initial state) or rebuilt with [`WalStore::recover`] (replays
/// `snapshot + log tails` to the exact pre-crash state).
#[derive(Debug)]
pub struct WalStore {
    backend: Arc<dyn StorageBackend>,
    logs: Vec<Mutex<ShardLog>>,
    generation: AtomicU64,
    metrics: OnceLock<WalMetrics>,
    append_failures: AtomicU64,
}

/// The coordinator state reconstructed by [`WalStore::recover`].
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// Unexplored intervals per shard (all unassigned — workers
    /// re-request work after a restart).
    pub shard_intervals: Vec<Vec<Interval>>,
    /// Best solution at the crash point.
    pub solution: Option<Solution>,
    /// The committed manifest generation the snapshot came from.
    pub generation: u64,
    /// Torn final records repaired by truncation (0 or 1 per shard).
    pub torn_truncations: u64,
    /// Complete records replayed across all segments.
    pub replayed_records: u64,
    /// Operations replayed across all records.
    pub replayed_ops: u64,
}

impl RecoveredState {
    /// Σ interval lengths across all shards — the conservation quantity
    /// the crash-recovery property tests pin.
    pub fn total_length(&self) -> UBig {
        let mut total = UBig::zero();
        for shard in &self.shard_intervals {
            for iv in shard {
                total += &iv.length();
            }
        }
        total
    }
}

impl WalStore {
    /// Starts a fresh log epoch: writes the given state as a snapshot,
    /// publishes the manifest, and opens empty segments.
    ///
    /// Safe on a backend that already holds an older campaign: the new
    /// epoch starts at `old committed generation + 1`, the manifest put
    /// is the atomic switch-over, and the old campaign's blobs are
    /// deleted afterwards (a crash mid-cleanup is healed by the next
    /// [`WalStore::recover`], which deletes anything below the committed
    /// generation). On an empty backend the epoch starts at `gen 0`.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        shard_intervals: &[Vec<Interval>],
        solution: Option<&Solution>,
    ) -> Result<Self, WalError> {
        let shards = shard_intervals.len();
        // Start past every blob already present, not just past the
        // committed generation: a crash between a compaction's
        // generation bump and its manifest put leaves orphan segments
        // one generation ahead, and colliding with those would splice a
        // dead campaign's deltas into the new epoch.
        let mut generation = match backend.get(MANIFEST_BLOB)? {
            Some(manifest) => decode_manifest(&manifest)?.0 + 1,
            None => 0,
        };
        for name in backend.list()? {
            if let Some((_, gen)) = parse_segment_blob(&name) {
                generation = generation.max(gen + 1);
            } else if let Some(gen) = parse_snap_blob(&name) {
                generation = generation.max(gen + 1);
            }
        }
        backend.put(
            &snap_intervals_blob(generation),
            encode_sharded_intervals(shard_intervals).as_bytes(),
        )?;
        backend.put(
            &snap_solution_blob(generation),
            encode_solution(solution).as_bytes(),
        )?;
        backend.put(
            MANIFEST_BLOB,
            encode_manifest(generation, shards).as_bytes(),
        )?;
        // Old-epoch cleanup: everything below the committed generation is
        // unreachable now. Best-effort — recovery retries it.
        for name in backend.list()? {
            let stale = match (parse_segment_blob(&name), parse_snap_blob(&name)) {
                (Some((_, gen)), _) => gen < generation,
                (_, Some(gen)) => gen != generation,
                _ => false,
            };
            if stale {
                let _ = backend.delete(&name);
            }
        }
        Ok(WalStore {
            backend,
            logs: (0..shards)
                .map(|_| {
                    Mutex::new(ShardLog {
                        generation,
                        good_len: 0,
                        poisoned: false,
                    })
                })
                .collect(),
            generation: AtomicU64::new(generation),
            metrics: OnceLock::new(),
            append_failures: AtomicU64::new(0),
        })
    }

    /// `true` iff `backend` holds a committed manifest — i.e. there is a
    /// campaign to recover.
    pub fn exists(backend: &dyn StorageBackend) -> io::Result<bool> {
        Ok(backend.get(MANIFEST_BLOB)?.is_some())
    }

    /// Replays `snapshot + log tails` and returns the store (ready for
    /// further appends) plus the reconstructed state.
    ///
    /// A torn final record in a shard's newest segment is repaired by
    /// truncation (counted in [`RecoveredState::torn_truncations`]); any
    /// other structural damage is [`WalError::Corrupt`].
    pub fn recover(backend: Arc<dyn StorageBackend>) -> Result<(Self, RecoveredState), WalError> {
        let manifest = backend.get(MANIFEST_BLOB)?.ok_or_else(|| {
            WalError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                "no wal manifest: nothing to recover",
            ))
        })?;
        let (committed, shards) = decode_manifest(&manifest)?;

        // Snapshot at the committed generation.
        let intervals_blob = snap_intervals_blob(committed);
        let snapshot = backend
            .get(&intervals_blob)?
            .ok_or_else(|| corrupt(&intervals_blob, 0, "committed snapshot missing"))?;
        let snapshot = String::from_utf8(snapshot)
            .map_err(|_| corrupt(&intervals_blob, 0, "snapshot is not UTF-8"))?;
        let mut shard_intervals = decode_sharded_intervals(&snapshot)
            .map_err(|e| checkpoint_corrupt(&intervals_blob, e))?;
        if shard_intervals.len() != shards {
            return Err(corrupt(
                &intervals_blob,
                0,
                format!(
                    "snapshot has {} shards, manifest says {shards}",
                    shard_intervals.len()
                ),
            ));
        }
        let solution_blob = snap_solution_blob(committed);
        let solution_text = backend
            .get(&solution_blob)?
            .ok_or_else(|| corrupt(&solution_blob, 0, "committed solution snapshot missing"))?;
        let solution_text = String::from_utf8(solution_text)
            .map_err(|_| corrupt(&solution_blob, 0, "solution snapshot is not UTF-8"))?;
        let mut solution =
            decode_solution(&solution_text).map_err(|e| checkpoint_corrupt(&solution_blob, e))?;

        // Surviving segments, grouped per shard, ascending generation.
        let mut segments: Vec<Vec<u64>> = vec![Vec::new(); shards];
        let mut stale: Vec<String> = Vec::new();
        for name in backend.list()? {
            if let Some((shard, generation)) = parse_segment_blob(&name) {
                if shard >= shards || generation < committed {
                    stale.push(name);
                } else {
                    segments[shard].push(generation);
                }
            } else if let Some(generation) = parse_snap_blob(&name) {
                if generation != committed {
                    stale.push(name);
                }
            }
        }
        for shard in &mut segments {
            shard.sort_unstable();
        }

        let mut torn_truncations = 0u64;
        let mut replayed_records = 0u64;
        let mut replayed_ops = 0u64;
        let mut logs = Vec::with_capacity(shards);
        let mut max_generation = committed;
        for (shard, generations) in segments.iter().enumerate() {
            let mut log = ShardLog {
                generation: committed,
                good_len: 0,
                poisoned: false,
            };
            for (i, &generation) in generations.iter().enumerate() {
                let newest = i + 1 == generations.len();
                let blob = segment_blob(shard, generation);
                let bytes = match backend.get(&blob)? {
                    Some(bytes) => bytes,
                    None => continue, // raced cleanup; nothing to replay
                };
                let replay = replay_segment(&blob, &bytes, newest)?;
                for op in replay.ops {
                    replayed_ops += 1;
                    apply_op(&blob, &mut shard_intervals[shard], &mut solution, op)?;
                }
                replayed_records += replay.records;
                if replay.torn {
                    backend.truncate(&blob, replay.good_len)?;
                    torn_truncations += 1;
                }
                log.generation = generation;
                log.good_len = replay.good_len;
            }
            max_generation = max_generation.max(log.generation);
            logs.push(Mutex::new(log));
        }

        // Retry the cleanup a crash may have half-finished. Best-effort,
        // exactly like `create`'s: the recovered state is already fully
        // reconstructed, and a blob that survives a failed delete is
        // ignored by the committed-manifest logic on the next recovery.
        for name in stale {
            let _ = backend.delete(&name);
        }

        let state = RecoveredState {
            shard_intervals,
            solution,
            generation: committed,
            torn_truncations,
            replayed_records,
            replayed_ops,
        };
        let store = WalStore {
            backend,
            logs,
            generation: AtomicU64::new(max_generation),
            metrics: OnceLock::new(),
            append_failures: AtomicU64::new(0),
        };
        Ok((store, state))
    }

    /// Attaches the `gbnb_wal_*` instruments (first call wins; the
    /// router calls this when a metrics registry is configured).
    pub fn set_metrics(&self, metrics: WalMetrics) {
        metrics
            .generation
            .max(self.generation.load(Ordering::Relaxed));
        let _ = self.metrics.set(metrics);
    }

    /// Number of shards the log was created for.
    pub fn shards(&self) -> usize {
        self.logs.len()
    }

    /// Current compaction generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Appends that failed since this store was opened (each one means
    /// the shard's log is stale until the next compaction).
    pub fn append_failures(&self) -> u64 {
        self.append_failures.load(Ordering::Relaxed)
    }

    /// Appends one record holding `ops` to shard `shard`'s segment.
    ///
    /// MUST be called while the owning coordinator shard's lock is held —
    /// that is what serializes records into state order. The one
    /// exception is the cross-shard steal's pre-logged `Insert`, which
    /// the router appends to the *destination's* segment while holding
    /// only the victim's lock: any later op referencing the stolen
    /// interval is journaled after `adopt` under the destination's lock,
    /// which happens-after the pre-log, so the per-segment mutex here
    /// still orders the records correctly. A failed append is repaired by
    /// truncating back to the last good length and poisons the shard log
    /// until the next compaction.
    pub fn append(&self, shard: usize, ops: &[WalOp]) -> Result<(), WalError> {
        if ops.is_empty() {
            return Ok(());
        }
        let started = Instant::now();
        let mut log = self.logs[shard].lock().unwrap();
        if log.poisoned {
            self.count_append_failure();
            return Err(WalError::Io(io::Error::other(
                "wal shard log poisoned by an earlier failure; awaiting compaction",
            )));
        }
        let record = encode_record(ops);
        let blob = segment_blob(shard, log.generation);
        match self.backend.append(&blob, &record) {
            Ok(()) => {
                log.good_len += record.len() as u64;
                drop(log);
                if let Some(m) = self.metrics.get() {
                    m.appends.inc();
                    m.append_bytes.add(record.len() as u64);
                    m.append_ns.observe(started.elapsed().as_nanos() as u64);
                }
                Ok(())
            }
            Err(e) => {
                // Best-effort repair: cut the segment back to the last
                // record boundary so a torn injection does not turn into
                // recovery-time corruption. If even that fails, the
                // segment is unusable — poison it either way, because the
                // ops in `record` are now missing from the log.
                let _ = self.backend.truncate(&blob, log.good_len);
                log.poisoned = true;
                drop(log);
                self.count_append_failure();
                Err(WalError::Io(e))
            }
        }
    }

    fn count_append_failure(&self) {
        self.append_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.append_failures.inc();
        }
    }

    /// Marks shard `shard`'s log stale without appending: subsequent
    /// appends are skipped and counted until the next compaction heals
    /// it. The steal path uses this on the *victim* when the
    /// destination's pre-logged `Insert` failed — logging the victim's
    /// `Remove`/`Replace` with no durable `Insert` anywhere would turn
    /// the failed append into silently lost work at recovery, and the
    /// victim's later appends must also be suppressed so its log never
    /// references post-steal state it does not record. Counted as an
    /// append failure (the log is stale either way).
    pub fn poison(&self, shard: usize) {
        let mut log = self.logs[shard].lock().unwrap();
        if !log.poisoned {
            log.poisoned = true;
            drop(log);
            self.count_append_failure();
        }
    }

    /// Opens the next generation: every shard's subsequent appends go to
    /// fresh `gen g+1` segments, and any poisoned log is healed (the
    /// caller is about to persist a snapshot of the live state).
    ///
    /// MUST be called while **all** coordinator shard locks are held (the
    /// compaction cut), so no append races the switch. Returns the new
    /// generation.
    pub fn advance_generation(&self) -> u64 {
        let next = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        for log in &self.logs {
            let mut log = log.lock().unwrap();
            log.generation = next;
            log.good_len = 0;
            log.poisoned = false;
        }
        next
    }

    /// Persists the compaction cut taken at `generation` (the value
    /// [`WalStore::advance_generation`] returned): writes the snapshot
    /// blobs, atomically publishes the manifest (the commit point), then
    /// deletes segments and snapshots of older generations. Runs outside
    /// every coordinator lock.
    pub fn compact(
        &self,
        generation: u64,
        shard_intervals: &[Vec<Interval>],
        solution: Option<&Solution>,
    ) -> Result<(), WalError> {
        let started = Instant::now();
        let result = self.compact_io(generation, shard_intervals, solution);
        if let Some(m) = self.metrics.get() {
            match &result {
                Ok(()) => {
                    m.compactions.inc();
                    m.compaction_ns.observe(started.elapsed().as_nanos() as u64);
                    m.generation.max(generation);
                }
                Err(_) => m.compaction_failures.inc(),
            }
        }
        result
    }

    /// The IO half of [`WalStore::compact`], separated so every failure
    /// path is counted exactly once.
    fn compact_io(
        &self,
        generation: u64,
        shard_intervals: &[Vec<Interval>],
        solution: Option<&Solution>,
    ) -> Result<(), WalError> {
        let shards = self.logs.len();
        assert_eq!(
            shard_intervals.len(),
            shards,
            "compaction cut has wrong shard count"
        );
        self.backend.put(
            &snap_intervals_blob(generation),
            encode_sharded_intervals(shard_intervals).as_bytes(),
        )?;
        self.backend.put(
            &snap_solution_blob(generation),
            encode_solution(solution).as_bytes(),
        )?;
        // Commit point: recovery now starts from this generation.
        self.backend.put(
            MANIFEST_BLOB,
            encode_manifest(generation, shards).as_bytes(),
        )?;
        // Cleanup; a crash here is harmless (recovery deletes stale blobs).
        for name in self.backend.list()? {
            let stale = match parse_segment_blob(&name) {
                Some((_, g)) => g < generation,
                None => matches!(parse_snap_blob(&name), Some(g) if g != generation),
            };
            if stale {
                self.backend.delete(&name)?;
            }
        }
        Ok(())
    }
}

fn encode_manifest(generation: u64, shards: usize) -> String {
    format!("{MANIFEST_HEADER}\ngen {generation}\nshards {shards}\n")
}

fn decode_manifest(bytes: &[u8]) -> Result<(u64, usize), WalError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| corrupt(MANIFEST_BLOB, 0, "manifest is not UTF-8"))?;
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt(MANIFEST_BLOB, 0, "bad manifest header"));
    }
    let mut generation = None;
    let mut shards = None;
    for line in lines {
        if let Some(v) = line.strip_prefix("gen ") {
            generation = v.parse::<u64>().ok();
        } else if let Some(v) = line.strip_prefix("shards ") {
            shards = v.parse::<usize>().ok();
        }
    }
    match (generation, shards) {
        (Some(g), Some(s)) if s > 0 => Ok((g, s)),
        _ => Err(corrupt(MANIFEST_BLOB, 0, "manifest missing gen/shards")),
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

struct SegmentReplay {
    ops: Vec<WalOp>,
    /// Byte length of the longest whole-record prefix.
    good_len: u64,
    /// `true` iff trailing bytes past `good_len` were a torn record.
    torn: bool,
    records: u64,
}

/// Walks a segment record by record. `newest` is `true` for the shard's
/// highest-generation segment — the only place a torn tail is legal.
fn replay_segment(blob: &str, bytes: &[u8], newest: bool) -> Result<SegmentReplay, WalError> {
    let mut ops = Vec::new();
    let mut offset = 0usize;
    let mut records = 0u64;
    loop {
        let rem = bytes.len() - offset;
        if rem == 0 {
            return Ok(SegmentReplay {
                ops,
                good_len: offset as u64,
                torn: false,
                records,
            });
        }
        // Incomplete-record check, in three stages: partial magic,
        // partial header, partial payload. Each is a legal torn tail
        // only if it is the *final* bytes of the *newest* segment and no
        // further record magic follows.
        let incomplete = |at: usize| -> Result<SegmentReplay, WalError> {
            if let Some(next) = find_magic(&bytes[at + 1..]) {
                return Err(corrupt(
                    blob,
                    at as u64,
                    format!(
                        "incomplete record followed by another record at byte {}",
                        at + 1 + next
                    ),
                ));
            }
            if !newest {
                return Err(corrupt(
                    blob,
                    at as u64,
                    "torn record in a non-final segment",
                ));
            }
            Ok(SegmentReplay {
                ops: Vec::new(), // ops are moved by the caller before use
                good_len: at as u64,
                torn: true,
                records: 0,
            })
        };
        if rem < 4 {
            if bytes[offset..] == WAL_MAGIC[..rem] {
                return incomplete(offset).map(|r| SegmentReplay { ops, records, ..r });
            }
            return Err(corrupt(blob, offset as u64, "trailing garbage (bad magic)"));
        }
        if bytes[offset..offset + 4] != WAL_MAGIC {
            return Err(corrupt(blob, offset as u64, "bad record magic"));
        }
        if rem < RECORD_HEADER_LEN {
            return incomplete(offset).map(|r| SegmentReplay { ops, records, ..r });
        }
        let len = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 8..offset + 12].try_into().unwrap());
        if rem < RECORD_HEADER_LEN + len {
            return incomplete(offset).map(|r| SegmentReplay { ops, records, ..r });
        }
        let payload = &bytes[offset + RECORD_HEADER_LEN..offset + RECORD_HEADER_LEN + len];
        if crc32(payload) != crc {
            return Err(corrupt(blob, offset as u64, "record crc mismatch"));
        }
        ops.extend(decode_payload(blob, offset as u64, payload)?);
        offset += RECORD_HEADER_LEN + len;
        records += 1;
    }
}

/// First offset of a full `WAL_MAGIC` in `bytes`, if any.
fn find_magic(bytes: &[u8]) -> Option<usize> {
    bytes.windows(WAL_MAGIC.len()).position(|w| w == WAL_MAGIC)
}

/// Applies one replayed op to a shard's interval multiset + solution.
fn apply_op(
    blob: &str,
    shard: &mut Vec<Interval>,
    solution: &mut Option<Solution>,
    op: WalOp,
) -> Result<(), WalError> {
    match op {
        WalOp::Insert(iv) => shard.push(iv),
        WalOp::Remove(iv) => {
            let pos = shard.iter().position(|x| *x == iv).ok_or_else(|| {
                corrupt(
                    blob,
                    0,
                    format!("replayed removal of unknown interval {iv}"),
                )
            })?;
            shard.swap_remove(pos);
        }
        WalOp::Replace { old, new } => {
            let pos = shard.iter().position(|x| *x == old).ok_or_else(|| {
                corrupt(
                    blob,
                    0,
                    format!("replayed replacement of unknown interval {old}"),
                )
            })?;
            shard[pos] = new;
        }
        WalOp::Solution(s) => {
            let improves = match solution {
                Some(current) => s.cost < current.cost,
                None => true,
            };
            if improves {
                *solution = Some(s);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{Fault, FaultBackend, MemoryBackend};

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(UBig::from(a), UBig::from(b))
    }

    #[test]
    fn crc32_check_value() {
        // The IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn op_codec_round_trips() {
        let ops = vec![
            WalOp::Insert(iv(120, 720)),
            WalOp::Remove(iv(0, 1)),
            WalOp::Replace {
                old: iv(120, 720),
                new: iv(240, 720),
            },
            WalOp::Solution(Solution::new(3679, vec![13, 35, 2])),
            WalOp::Solution(Solution::new(7, vec![])),
        ];
        for op in ops {
            assert_eq!(WalOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(WalOp::decode("nonsense 1 2").is_err());
        assert!(WalOp::decode("ins 1").is_err());
    }

    #[test]
    fn record_round_trips() {
        let ops = vec![WalOp::Insert(iv(1, 9)), WalOp::Remove(iv(1, 9))];
        let record = encode_record(&ops);
        let replay = replay_segment("t", &record, true).unwrap();
        assert_eq!(replay.ops, ops);
        assert_eq!(replay.good_len, record.len() as u64);
        assert!(!replay.torn);
    }

    #[test]
    fn torn_tail_is_truncated_mid_log_corruption_is_rejected() {
        let a = encode_record(&[WalOp::Insert(iv(1, 9))]);
        let b = encode_record(&[WalOp::Remove(iv(1, 9))]);
        let mut log = a.clone();
        log.extend_from_slice(&b);

        // Every strict prefix cutting into `b` replays `a` and reports a
        // torn tail at a.len().
        for cut in a.len() + 1..log.len() {
            let replay = replay_segment("t", &log[..cut], true).unwrap();
            assert!(replay.torn, "cut at {cut} should be torn");
            assert_eq!(replay.good_len, a.len() as u64);
            assert_eq!(replay.ops.len(), 1);
        }
        // The same tear in a non-final segment is corruption.
        assert!(matches!(
            replay_segment("t", &log[..a.len() + 3], false),
            Err(WalError::Corrupt { .. })
        ));
        // A flipped payload byte in `a` (mid-log) is corruption.
        let mut corrupted = log.clone();
        corrupted[RECORD_HEADER_LEN] ^= 0x01;
        assert!(matches!(
            replay_segment("t", &corrupted, true),
            Err(WalError::Corrupt { .. })
        ));
        // A truncated *first* record followed by an intact second record
        // is corruption, not a torn tail — the magic scan sees `b`.
        let mut spliced = a[..a.len() - 1].to_vec();
        spliced.extend_from_slice(&b);
        assert!(matches!(
            replay_segment("t", &spliced, true),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn create_append_recover_round_trips() {
        let backend = Arc::new(MemoryBackend::new());
        let initial = vec![vec![iv(0, 100)], vec![iv(100, 200)]];
        let store = WalStore::create(backend.clone(), &initial, None).unwrap();
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(0, 100),
                    new: iv(40, 100),
                }],
            )
            .unwrap();
        store
            .append(
                1,
                &[WalOp::Remove(iv(100, 200)), WalOp::Insert(iv(150, 160))],
            )
            .unwrap();
        store
            .append(1, &[WalOp::Solution(Solution::new(42, vec![1, 2]))])
            .unwrap();

        let (_store, state) = WalStore::recover(backend).unwrap();
        assert_eq!(state.shard_intervals[0], vec![iv(40, 100)]);
        assert_eq!(state.shard_intervals[1], vec![iv(150, 160)]);
        assert_eq!(state.solution, Some(Solution::new(42, vec![1, 2])));
        assert_eq!(state.generation, 0);
        assert_eq!(state.torn_truncations, 0);
        assert_eq!(state.replayed_records, 3);
        assert_eq!(state.replayed_ops, 4);
    }

    #[test]
    fn compaction_moves_the_commit_point() {
        let backend = Arc::new(MemoryBackend::new());
        let initial = vec![vec![iv(0, 100)]];
        let store = WalStore::create(backend.clone(), &initial, None).unwrap();
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(0, 100),
                    new: iv(10, 100),
                }],
            )
            .unwrap();
        // Cut: the live state is [10, 100); ops after the cut go to gen 1.
        let generation = store.advance_generation();
        assert_eq!(generation, 1);
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(10, 100),
                    new: iv(20, 100),
                }],
            )
            .unwrap();
        store
            .compact(generation, &[vec![iv(10, 100)]], None)
            .unwrap();

        // Old-generation blobs are gone; recovery = snap-1 + gen-1 tail.
        let names = backend.list().unwrap();
        assert!(!names.iter().any(|n| n.contains("gen-0")));
        assert!(!names.iter().any(|n| n.contains("snap-0")));
        let (_store, state) = WalStore::recover(backend).unwrap();
        assert_eq!(state.shard_intervals[0], vec![iv(20, 100)]);
        assert_eq!(state.generation, 1);
    }

    #[test]
    fn crash_between_cut_and_manifest_recovers_from_old_generation() {
        let backend = Arc::new(MemoryBackend::new());
        let initial = vec![vec![iv(0, 100)]];
        let store = WalStore::create(backend.clone(), &initial, None).unwrap();
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(0, 100),
                    new: iv(10, 100),
                }],
            )
            .unwrap();
        let _generation = store.advance_generation();
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(10, 100),
                    new: iv(20, 100),
                }],
            )
            .unwrap();
        // Crash before compact(): MANIFEST still says gen 0, but gen-1
        // segments exist. Recovery replays gen-0 then gen-1.
        let (_store, state) = WalStore::recover(backend).unwrap();
        assert_eq!(state.shard_intervals[0], vec![iv(20, 100)]);
        assert_eq!(state.generation, 0);
        assert_eq!(state.replayed_records, 2);
    }

    #[test]
    fn torn_append_is_repaired_on_recovery() {
        let backend = Arc::new(FaultBackend::new(MemoryBackend::new()));
        let initial = vec![vec![iv(0, 100)]];
        let store = WalStore::create(backend.clone(), &initial, None).unwrap();
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(0, 100),
                    new: iv(10, 100),
                }],
            )
            .unwrap();
        // Tear the next append 5 bytes in; the store repairs by
        // truncation and poisons the shard log.
        backend.fail_after(0, 1, Fault::Torn(5));
        let err = store.append(
            0,
            &[WalOp::Replace {
                old: iv(10, 100),
                new: iv(20, 100),
            }],
        );
        assert!(err.is_err());
        assert_eq!(store.append_failures(), 1);
        // Poisoned: further appends fail fast without touching storage.
        assert!(store.append(0, &[WalOp::Remove(iv(10, 100))]).is_err());
        assert_eq!(store.append_failures(), 2);

        // Recovery sees the log up to the repair point: state [10, 100).
        let (_store, state) = WalStore::recover(backend.clone()).unwrap();
        assert_eq!(state.shard_intervals[0], vec![iv(10, 100)]);
        assert_eq!(state.torn_truncations, 0); // append-time repair already cut it

        // A compaction heals the poison and re-anchors the log.
        let generation = store.advance_generation();
        store
            .compact(generation, &[vec![iv(25, 100)]], None)
            .unwrap();
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(25, 100),
                    new: iv(30, 100),
                }],
            )
            .unwrap();
        let (_store, state) = WalStore::recover(backend).unwrap();
        assert_eq!(state.shard_intervals[0], vec![iv(30, 100)]);
    }

    #[test]
    fn torn_tail_without_repair_is_truncated_at_recovery() {
        // Simulate a hard crash mid-append: the tear is on disk and no
        // append-time repair ran (the process died).
        let backend = Arc::new(MemoryBackend::new());
        let initial = vec![vec![iv(0, 100)]];
        let store = WalStore::create(backend.clone(), &initial, None).unwrap();
        store
            .append(
                0,
                &[WalOp::Replace {
                    old: iv(0, 100),
                    new: iv(10, 100),
                }],
            )
            .unwrap();
        let record = encode_record(&[WalOp::Remove(iv(10, 100))]);
        backend
            .append("shard-0-gen-0.wal", &record[..record.len() - 3])
            .unwrap();
        let (_store, state) = WalStore::recover(backend.clone()).unwrap();
        assert_eq!(state.shard_intervals[0], vec![iv(10, 100)]);
        assert_eq!(state.torn_truncations, 1);
        // The tail was physically truncated: a second recovery is clean.
        let (_store, state) = WalStore::recover(backend).unwrap();
        assert_eq!(state.torn_truncations, 0);
    }

    #[test]
    fn replay_rejects_impossible_ops() {
        let backend = Arc::new(MemoryBackend::new());
        let initial = vec![vec![iv(0, 100)]];
        let store = WalStore::create(backend.clone(), &initial, None).unwrap();
        store.append(0, &[WalOp::Remove(iv(55, 66))]).unwrap();
        assert!(matches!(
            WalStore::recover(backend),
            Err(WalError::Corrupt { .. })
        ));
    }

    #[test]
    fn manifest_round_trips() {
        let (g, s) = decode_manifest(encode_manifest(7, 4).as_bytes()).unwrap();
        assert_eq!((g, s), (7, 4));
        assert!(decode_manifest(b"garbage").is_err());
    }
}
