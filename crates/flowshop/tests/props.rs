//! Property tests for the flowshop substrate: evaluation oracles, bound
//! admissibility, heuristic dominance and exact-search agreement with
//! brute force.

use gridbnb_engine::solve;
use gridbnb_flowshop::bounds::{one_machine_bound, JobSet, JohnsonBound, PairSelection};
use gridbnb_flowshop::makespan::{makespan, push_job, reverse_makespan};
use gridbnb_flowshop::neh::neh;
use gridbnb_flowshop::taillard::generate;
use gridbnb_flowshop::{BoundMode, FlowshopProblem, Instance};
use proptest::prelude::*;

fn arb_instance(max_jobs: usize, max_machines: usize) -> impl Strategy<Value = Instance> {
    (1..=max_jobs, 1..=max_machines, any::<u32>())
        .prop_map(|(n, m, seed)| generate(n, m, i64::from(seed % 2_147_483_645) + 1))
}

fn brute_optimum(instance: &Instance) -> u64 {
    fn permute(items: &mut Vec<usize>, k: usize, best: &mut u64, inst: &Instance) {
        if k == items.len() {
            *best = (*best).min(makespan(inst, items));
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, best, inst);
            items.swap(k, i);
        }
    }
    let mut jobs: Vec<usize> = (0..instance.jobs()).collect();
    let mut best = u64::MAX;
    permute(&mut jobs, 0, &mut best, instance);
    best
}

fn arb_schedule(n: usize, seed: u64) -> Vec<usize> {
    // Fisher-Yates with SplitMix64.
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn makespan_lower_bounded_by_loads(inst in arb_instance(10, 6), seed in any::<u64>()) {
        let schedule = arb_schedule(inst.jobs(), seed);
        let cmax = makespan(&inst, &schedule);
        for m in 0..inst.machines() {
            prop_assert!(cmax >= inst.machine_total(m));
        }
        for j in 0..inst.jobs() {
            prop_assert!(cmax >= inst.job_total(j));
        }
    }

    #[test]
    fn makespan_reverse_symmetry(inst in arb_instance(9, 6), seed in any::<u64>()) {
        let schedule = arb_schedule(inst.jobs(), seed);
        prop_assert_eq!(makespan(&inst, &schedule), reverse_makespan(&inst, &schedule));
    }

    #[test]
    fn single_machine_makespan_is_total(inst in arb_instance(10, 1), seed in any::<u64>()) {
        let schedule = arb_schedule(inst.jobs(), seed);
        prop_assert_eq!(makespan(&inst, &schedule), inst.machine_total(0));
    }

    #[test]
    fn bounds_admissible_at_random_prefixes(inst in arb_instance(6, 5), seed in any::<u64>(), cut in 0usize..=6) {
        let schedule = arb_schedule(inst.jobs(), seed);
        let cut = cut.min(inst.jobs());
        let prefix = &schedule[..cut];
        let mut heads = vec![0u64; inst.machines()];
        let mut remaining = JobSet::full(inst.jobs());
        for &j in prefix {
            push_job(&inst, &mut heads, j);
            remaining = remaining.without(j);
        }
        // Exact best completion of this prefix by brute force.
        let rest: Vec<usize> = remaining.iter().collect();
        let mut best = u64::MAX;
        fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
            if k == items.len() { visit(items); return; }
            for i in k..items.len() {
                items.swap(k, i);
                permute(items, k + 1, visit);
                items.swap(k, i);
            }
        }
        let mut rest_mut = rest.clone();
        if rest_mut.is_empty() {
            best = makespan(&inst, prefix);
        } else {
            permute(&mut rest_mut, 0, &mut |order| {
                let mut full = prefix.to_vec();
                full.extend_from_slice(order);
                best = best.min(makespan(&inst, &full));
            });
        }
        let lb1 = one_machine_bound(&inst, &heads, remaining);
        prop_assert!(lb1 <= best, "one-machine bound {} exceeds exact {}", lb1, best);
        let jb = JohnsonBound::new(&inst, &PairSelection::All);
        let lb2 = jb.bound(&inst, &heads, remaining);
        prop_assert!(lb2 <= best, "johnson bound {} exceeds exact {}", lb2, best);
    }

    #[test]
    fn neh_dominated_by_optimum(inst in arb_instance(6, 5)) {
        let (_, neh_cost) = neh(&inst);
        prop_assert!(neh_cost >= brute_optimum(&inst));
    }

    #[test]
    fn bnb_matches_brute_force(inst in arb_instance(6, 4)) {
        let expected = brute_optimum(&inst);
        for mode in [
            BoundMode::OneMachine,
            BoundMode::Johnson(PairSelection::All),
            BoundMode::Combined(PairSelection::AdjacentPlusEnds),
        ] {
            let problem = FlowshopProblem::new(inst.clone(), mode.clone());
            let report = solve(&problem, None);
            prop_assert_eq!(report.best_cost, Some(expected), "mode {:?}", mode);
        }
    }

    #[test]
    fn stronger_bound_explores_no_more_nodes(inst in arb_instance(7, 5)) {
        let weak = solve(&FlowshopProblem::new(inst.clone(), BoundMode::OneMachine), None);
        let strong = solve(
            &FlowshopProblem::new(inst.clone(), BoundMode::Combined(PairSelection::All)),
            None,
        );
        prop_assert_eq!(weak.best_cost, strong.best_cost);
        prop_assert!(strong.stats.explored <= weak.stats.explored);
    }

    #[test]
    fn decode_encode_round_trip(inst in arb_instance(8, 3), seed in any::<u64>()) {
        let problem = FlowshopProblem::new(inst.clone(), BoundMode::OneMachine);
        let schedule = arb_schedule(inst.jobs(), seed);
        let ranks = problem.encode_schedule(&schedule);
        prop_assert_eq!(problem.decode_ranks(&ranks), schedule);
    }

    #[test]
    fn solution_ranks_decode_to_consistent_makespan(inst in arb_instance(6, 4)) {
        let problem = FlowshopProblem::with_default_bound(inst.clone());
        let report = solve(&problem, None);
        let solution = report.best.unwrap();
        let schedule = problem.decode_ranks(&solution.leaf_ranks);
        prop_assert_eq!(makespan(&inst, &schedule), solution.cost);
    }

    #[test]
    fn taillard_format_round_trip(inst in arb_instance(10, 6)) {
        let text = inst.to_taillard_format();
        let parsed = Instance::parse_taillard(&text).unwrap();
        prop_assert_eq!(parsed, inst);
    }
}
