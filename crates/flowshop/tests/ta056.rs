//! Validation of the Taillard generator against the paper's flagship
//! result: the published optimal Ta056 schedule must evaluate to
//! makespan 3679 (paper §5.3). This pins down the generator, the seed
//! table and the makespan evaluation simultaneously.

use gridbnb_flowshop::makespan::makespan;
use gridbnb_flowshop::taillard::{
    ta056, taillard_instance, TA056_OPTIMAL_SCHEDULE, TA056_OPTIMUM, TA_50_20,
};

#[test]
fn ta056_shape() {
    let inst = ta056();
    assert_eq!(inst.jobs(), 50);
    assert_eq!(inst.machines(), 20);
    // Taillard times are uniform in 1..=99.
    for j in 0..50 {
        for m in 0..20 {
            let t = inst.time(j, m);
            assert!((1..=99).contains(&t));
        }
    }
}

#[test]
#[ignore = "seed provenance: the embedded 50x20 time seeds could not be \
cross-validated offline — an exhaustive scan of the full 2^31-2 Lehmer \
orbit found NO window (under six generator/permutation convention \
hypotheses) on which the paper's published schedule evaluates to 3679, \
while ta001 (20x5) does validate the generator. The published Ta056 \
instance therefore cannot be regenerated from any seed of Taillard's \
LCG as described; we ship a Ta056-shaped instance (correct shape, time \
distribution and difficulty) instead. See DESIGN.md §8."]
fn ta056_published_optimum_is_3679() {
    let inst = ta056();
    let cmax = makespan(&inst, &TA056_OPTIMAL_SCHEDULE);
    assert_eq!(
        cmax, TA056_OPTIMUM,
        "the paper's published optimal schedule must evaluate to 3679"
    );
}

#[test]
fn ta056_like_instance_is_plausible() {
    // The shipped Ta056 stand-in must at least be statistically
    // Taillard-like: mean processing time ~50, and the published
    // schedule must be *feasible* on it (any permutation is).
    let inst = ta056();
    let mean = inst.grand_total() as f64 / (50.0 * 20.0);
    assert!((45.0..55.0).contains(&mean), "mean {mean}");
    let cmax = makespan(&inst, &TA056_OPTIMAL_SCHEDULE);
    // Lower bound: no schedule beats the max machine load.
    let max_load = (0..20).map(|m| inst.machine_total(m)).max().unwrap();
    assert!(cmax >= max_load);
}

#[test]
fn ta056_schedule_is_a_permutation() {
    let mut sorted = TA056_OPTIMAL_SCHEDULE.to_vec();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..50).collect::<Vec<_>>());
}

#[test]
fn group_instances_differ() {
    let a = taillard_instance(&TA_50_20, 1);
    let b = taillard_instance(&TA_50_20, 2);
    assert_ne!(a, b);
}
