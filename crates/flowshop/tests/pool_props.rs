//! Pooled ≡ scalar equivalence on random flowshop instances, driving the
//! overridden `lower_bound_batch` kernel (shared one-machine aggregates,
//! filtered Johnson orders, screen-then-escalate in `Combined` mode)
//! through the engine's lockstep harness.

use gridbnb_engine::equivalence::{
    assert_pooled_matches_scalar, assert_pooled_matches_scalar_simple, permille_interval,
    Interference,
};
use gridbnb_flowshop::bounds::PairSelection;
use gridbnb_flowshop::{taillard, BoundMode, FlowshopProblem, Problem};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = BoundMode> {
    prop_oneof![
        Just(BoundMode::OneMachine),
        Just(BoundMode::Johnson(PairSelection::AdjacentPlusEnds)),
        Just(BoundMode::Johnson(PairSelection::All)),
        Just(BoundMode::Combined(PairSelection::AdjacentPlusEnds)),
        Just(BoundMode::Combined(PairSelection::All)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pooled_matches_scalar_on_random_instances(
        jobs in 4usize..8,
        machines in 2usize..5,
        seed in 1i64..100_000_000,
        mode in arb_mode(),
        a in 0u64..1001,
        b in 0u64..1001,
    ) {
        let instance = taillard::generate(jobs, machines, seed);
        let problem = FlowshopProblem::new(instance, mode);
        let total = problem.shape().root_range().end().clone();
        let interval = permille_interval(&total, a, b);
        assert_pooled_matches_scalar_simple(&problem, &interval, None);
    }

    #[test]
    fn pooled_matches_scalar_under_steals_and_cutoffs(
        jobs in 5usize..8,
        seed in 1i64..100_000_000,
        mode in arb_mode(),
        slice in 1u64..50,
        period in 1usize..5,
        initial_ub_slack in 0u64..40,
    ) {
        let instance = taillard::generate(jobs, 3, seed);
        let problem = FlowshopProblem::new(instance, mode);
        let interval = problem.shape().root_range();
        // A plausible-but-imperfect incumbent: the identity schedule's
        // makespan plus slack, so the cutoff moves mid-run and the
        // Combined screen actually eliminates children at fill time.
        let identity: Vec<usize> = (0..jobs).collect();
        let ub = gridbnb_flowshop::makespan::makespan(problem.instance(), &identity);
        assert_pooled_matches_scalar(
            &problem,
            &interval,
            Some(ub + initial_ub_slack),
            slice,
            Interference {
                shrink_period: period,
                keep_num: 3,
                keep_den: 4,
                external_cutoff: ub,
            },
        );
    }
}
