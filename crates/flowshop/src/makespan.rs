//! Makespan evaluation: complete schedules, incremental heads for partial
//! schedules, and tails for lower bounds.

use crate::Instance;

/// Makespan (`C_max`) of a complete permutation `schedule` (0-based job
/// indices, one per position).
///
/// Standard critical-path recurrence: the completion of job `j` on
/// machine `m` is `max(C(prev_job, m), C(j, m−1)) + p(j, m)`.
///
/// # Panics
///
/// Debug-asserts that the schedule length equals the job count; a partial
/// prefix is also legal input (gives the partial makespan).
pub fn makespan(instance: &Instance, schedule: &[usize]) -> u64 {
    let mut heads = vec![0u64; instance.machines()];
    for &job in schedule {
        push_job(instance, &mut heads, job);
    }
    heads[instance.machines() - 1]
}

/// Advances machine heads by appending `job`: `heads[m]` is the
/// completion time of the prefix on machine `m`.
#[inline]
pub fn push_job(instance: &Instance, heads: &mut [u64], job: usize) {
    let row = instance.job_row(job);
    let mut prev = heads[0] + u64::from(row[0]);
    heads[0] = prev;
    for (head, &t) in heads.iter_mut().zip(row).skip(1) {
        prev = prev.max(*head) + u64::from(t);
        *head = prev;
    }
}

/// Completion times of every (position, machine) pair for a schedule —
/// the full matrix, used by tests and by insertion heuristics.
pub fn completion_matrix(instance: &Instance, schedule: &[usize]) -> Vec<Vec<u64>> {
    let m = instance.machines();
    let mut rows = Vec::with_capacity(schedule.len());
    let mut heads = vec![0u64; m];
    for &job in schedule {
        push_job(instance, &mut heads, job);
        rows.push(heads.clone());
    }
    rows
}

/// Tail of `job` after `machine`: total processing of the job on the
/// machines strictly after `machine` — a lower bound on the time between
/// the job finishing on `machine` and the end of the schedule. Used by
/// the one-machine and Johnson bounds.
#[inline]
pub fn tail_after(instance: &Instance, job: usize, machine: usize) -> u64 {
    instance.job_row(job)[machine + 1..]
        .iter()
        .map(|&t| u64::from(t))
        .sum()
}

/// Reverse makespan: the makespan of the instance with machine order and
/// job order reversed equals the forward makespan (a classical symmetry;
/// used as a test oracle).
pub fn reverse_makespan(instance: &Instance, schedule: &[usize]) -> u64 {
    let m = instance.machines();
    let mut heads = vec![0u64; m];
    for &job in schedule.iter().rev() {
        let row = instance.job_row(job);
        let mut prev = heads[0] + u64::from(row[m - 1]);
        heads[0] = prev;
        for k in 1..m {
            prev = prev.max(heads[k]) + u64::from(row[m - 1 - k]);
            heads[k] = prev;
        }
    }
    heads[m - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 jobs × 3 machines with hand-computed makespan.
    fn tiny() -> Instance {
        // job 0: 2 1 2 ; job 1: 1 3 1 ; job 2: 3 1 1
        Instance::new(3, 3, vec![2, 1, 2, 1, 3, 1, 3, 1, 1])
    }

    #[test]
    fn hand_computed_makespan() {
        let inst = tiny();
        // Schedule 0,1,2:
        // M0: j0 ends 2, j1 ends 3, j2 ends 6
        // M1: j0 ends 3, j1 ends 6, j2 ends 7
        // M2: j0 ends 5, j1 ends 7, j2 ends 8
        assert_eq!(makespan(&inst, &[0, 1, 2]), 8);
        // Schedule 1,0,2:
        // M0: 1, 3, 6 ; M1: 4, 5, 7 ; M2: 5, 7, 8
        assert_eq!(makespan(&inst, &[1, 0, 2]), 8);
        // Schedule 2,1,0:
        // M0: 3, 4, 6 ; M1: 4, 7, 8 ; M2: 5, 8, 10
        assert_eq!(makespan(&inst, &[2, 1, 0]), 10);
    }

    #[test]
    fn single_machine_is_sum() {
        let inst = Instance::new(4, 1, vec![3, 5, 2, 7]);
        assert_eq!(makespan(&inst, &[2, 0, 3, 1]), 17);
    }

    #[test]
    fn single_job_is_row_sum() {
        let inst = Instance::new(1, 4, vec![3, 5, 2, 7]);
        assert_eq!(makespan(&inst, &[0]), 17);
    }

    #[test]
    fn partial_prefix_heads_match_full_eval() {
        let inst = tiny();
        let mut heads = vec![0u64; 3];
        push_job(&inst, &mut heads, 0);
        push_job(&inst, &mut heads, 1);
        assert_eq!(heads[2], makespan(&inst, &[0, 1]));
    }

    #[test]
    fn completion_matrix_last_row_is_heads() {
        let inst = tiny();
        let mat = completion_matrix(&inst, &[2, 0, 1]);
        assert_eq!(mat.len(), 3);
        assert_eq!(mat[2][2], makespan(&inst, &[2, 0, 1]));
        // Rows are monotone in both directions.
        for r in 1..3 {
            for (later, earlier) in mat[r].iter().zip(&mat[r - 1]) {
                assert!(later >= earlier);
            }
        }
    }

    #[test]
    fn tail_after_sums_suffix() {
        let inst = tiny();
        assert_eq!(tail_after(&inst, 0, 0), 3); // 1 + 2
        assert_eq!(tail_after(&inst, 0, 1), 2);
        assert_eq!(tail_after(&inst, 0, 2), 0);
    }

    #[test]
    fn reverse_symmetry_on_small_instances() {
        let inst = tiny();
        let schedules: [&[usize]; 4] = [&[0, 1, 2], &[2, 1, 0], &[1, 2, 0], &[0, 2, 1]];
        for s in schedules {
            assert_eq!(makespan(&inst, s), reverse_makespan(&inst, s), "{s:?}");
        }
    }

    #[test]
    fn makespan_at_least_every_machine_and_job_total() {
        let inst = tiny();
        let schedule = [1, 2, 0];
        let cmax = makespan(&inst, &schedule);
        for m in 0..3 {
            assert!(cmax >= inst.machine_total(m));
        }
        for j in 0..3 {
            assert!(cmax >= inst.job_total(j));
        }
    }
}
