//! Permutation flowshop instances.

use std::fmt;

/// A permutation flowshop instance: `jobs` jobs each consisting of
/// `machines` consecutive tasks, task `m` of every job requiring machine
/// `m` for a job-specific processing time. Jobs pass the machines in the
/// same order; the objective is to minimize the makespan `C_max`
/// (paper §5.1, equation 15).
#[derive(Clone, PartialEq, Eq)]
pub struct Instance {
    jobs: usize,
    machines: usize,
    /// `times[job * machines + machine]`, job-major for cache-friendly
    /// head updates during evaluation.
    times: Vec<u32>,
}

impl Instance {
    /// Builds an instance from a job-major processing-time matrix
    /// (`times[job][machine]` flattened).
    ///
    /// # Panics
    ///
    /// Panics if `times.len() != jobs * machines` or either dimension is 0.
    pub fn new(jobs: usize, machines: usize, times: Vec<u32>) -> Self {
        assert!(jobs > 0 && machines > 0, "empty instance");
        assert_eq!(times.len(), jobs * machines, "processing-time shape");
        Instance {
            jobs,
            machines,
            times,
        }
    }

    /// Builds from a machine-major matrix (`times[machine][job]`
    /// flattened) — the layout of Taillard's generator and instance
    /// files.
    pub fn from_machine_major(jobs: usize, machines: usize, machine_major: Vec<u32>) -> Self {
        assert_eq!(machine_major.len(), jobs * machines);
        let mut times = vec![0u32; jobs * machines];
        for m in 0..machines {
            for j in 0..jobs {
                times[j * machines + m] = machine_major[m * jobs + j];
            }
        }
        Instance::new(jobs, machines, times)
    }

    /// Number of jobs `N`.
    #[inline]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Number of machines `M`.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Processing time of `job` on `machine`.
    #[inline]
    pub fn time(&self, job: usize, machine: usize) -> u32 {
        debug_assert!(job < self.jobs && machine < self.machines);
        self.times[job * self.machines + machine]
    }

    /// The processing times of one job across all machines.
    #[inline]
    pub fn job_row(&self, job: usize) -> &[u32] {
        &self.times[job * self.machines..(job + 1) * self.machines]
    }

    /// Total processing time of `job` over all machines.
    pub fn job_total(&self, job: usize) -> u64 {
        self.job_row(job).iter().map(|&t| u64::from(t)).sum()
    }

    /// Total processing time on `machine` over all jobs.
    pub fn machine_total(&self, machine: usize) -> u64 {
        (0..self.jobs)
            .map(|j| u64::from(self.time(j, machine)))
            .sum()
    }

    /// Sum of all processing times (used e.g. by the iterated-greedy
    /// acceptance temperature).
    pub fn grand_total(&self) -> u64 {
        self.times.iter().map(|&t| u64::from(t)).sum()
    }

    /// Parses the classic Taillard text format: first line `jobs
    /// machines`, then `machines` lines of `jobs` integers each
    /// (machine-major).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token or shape
    /// mismatch.
    pub fn parse_taillard(text: &str) -> Result<Self, String> {
        let mut tokens = text.split_whitespace().map(|t| {
            t.parse::<u64>()
                .map_err(|e| format!("bad integer {t:?}: {e}"))
        });
        let mut next = |what: &str| {
            tokens
                .next()
                .ok_or_else(|| format!("missing {what}"))
                .and_then(|r| r)
        };
        let jobs = next("job count")? as usize;
        let machines = next("machine count")? as usize;
        if jobs == 0 || machines == 0 {
            return Err("empty instance".into());
        }
        let mut machine_major = Vec::with_capacity(jobs * machines);
        for m in 0..machines {
            for j in 0..jobs {
                let t = next(&format!("time[{m}][{j}]"))?;
                machine_major.push(u32::try_from(t).map_err(|_| "time too large")?);
            }
        }
        Ok(Instance::from_machine_major(jobs, machines, machine_major))
    }

    /// Serializes to the Taillard text format parsed by
    /// [`Instance::parse_taillard`].
    pub fn to_taillard_format(&self) -> String {
        let mut out = format!("{} {}\n", self.jobs, self.machines);
        for m in 0..self.machines {
            for j in 0..self.jobs {
                if j > 0 {
                    out.push(' ');
                }
                out.push_str(&self.time(j, m).to_string());
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Instance({}x{})", self.jobs, self.machines)
    }
}
