//! Permutation flowshop substrate for the grid-enabled branch and bound.
//!
//! Everything the paper's evaluation (§5) needs from the application
//! side:
//!
//! * [`Instance`] — processing-time matrices, including the classic
//!   Taillard text format;
//! * [`taillard`] — Taillard's 1993 benchmark generator (LCG + published
//!   seeds), providing **Ta056**, the 50×20 instance the paper solved
//!   exactly for the first time (optimum 3679);
//! * [`makespan`] — schedule evaluation and machine-head bookkeeping;
//! * [`bounds`] — the bounding operator: one-machine bound and the
//!   Johnson-rule two-machine bound of Lageweg–Lenstra–Rinnooy Kan;
//! * [`neh`] / [`ig`] — NEH constructive heuristic and the Ruiz–Stützle
//!   iterated greedy, which supplied the paper's initial upper bound
//!   (3681);
//! * [`FlowshopProblem`] — the `gridbnb_engine::Problem` implementation
//!   binding all of it to the interval-coded search tree.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod ig;
mod instance;
pub mod makespan;
pub mod neh;
mod problem;
pub mod taillard;

pub use instance::Instance;
pub use problem::{BoundMode, FlowshopProblem};

pub use gridbnb_engine::{Problem, Solution};
