//! The NEH constructive heuristic (Nawaz, Enscore, Ham 1983) — the
//! standard starting point for permutation-flowshop upper bounds and the
//! seed of the iterated greedy.

use crate::makespan::makespan;
use crate::Instance;

/// Builds a schedule with NEH: jobs sorted by decreasing total processing
/// time are inserted one at a time at the position minimizing the partial
/// makespan. Returns `(schedule, makespan)`.
pub fn neh(instance: &Instance) -> (Vec<usize>, u64) {
    let mut order: Vec<usize> = (0..instance.jobs()).collect();
    // Decreasing total processing time; ties by index for determinism.
    order.sort_by_key(|&j| (std::cmp::Reverse(instance.job_total(j)), j));
    let mut schedule: Vec<usize> = Vec::with_capacity(instance.jobs());
    for &job in &order {
        let (pos, _) = best_insertion(instance, &schedule, job);
        schedule.insert(pos, job);
    }
    let cost = makespan(instance, &schedule);
    (schedule, cost)
}

/// Finds the insertion position of `job` into `schedule` minimizing the
/// resulting makespan. Returns `(position, makespan)`. Ties favor the
/// earliest position (NEH convention).
pub fn best_insertion(instance: &Instance, schedule: &[usize], job: usize) -> (usize, u64) {
    let mut best_pos = 0;
    let mut best_cost = u64::MAX;
    let mut candidate = Vec::with_capacity(schedule.len() + 1);
    for pos in 0..=schedule.len() {
        candidate.clear();
        candidate.extend_from_slice(&schedule[..pos]);
        candidate.push(job);
        candidate.extend_from_slice(&schedule[pos..]);
        let cost = makespan(instance, &candidate);
        if cost < best_cost {
            best_cost = cost;
            best_pos = pos;
        }
    }
    (best_pos, best_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taillard::generate;

    fn brute_optimum(instance: &Instance) -> u64 {
        fn permute(items: &mut Vec<usize>, k: usize, best: &mut u64, inst: &Instance) {
            if k == items.len() {
                *best = (*best).min(makespan(inst, items));
                return;
            }
            for i in k..items.len() {
                items.swap(k, i);
                permute(items, k + 1, best, inst);
                items.swap(k, i);
            }
        }
        let mut jobs: Vec<usize> = (0..instance.jobs()).collect();
        let mut best = u64::MAX;
        permute(&mut jobs, 0, &mut best, instance);
        best
    }

    #[test]
    fn neh_is_a_valid_permutation() {
        let inst = generate(12, 5, 4242);
        let (schedule, cost) = neh(&inst);
        let mut sorted = schedule.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
        assert_eq!(cost, makespan(&inst, &schedule));
    }

    #[test]
    fn neh_upper_bounds_the_optimum() {
        for seed in [1, 99, 52_000] {
            let inst = generate(7, 4, seed);
            let (_, neh_cost) = neh(&inst);
            let opt = brute_optimum(&inst);
            assert!(neh_cost >= opt);
            // NEH is good: allow at most 25% excess on tiny instances.
            assert!(
                (neh_cost as f64) <= opt as f64 * 1.25,
                "NEH {neh_cost} too far from optimum {opt} (seed {seed})"
            );
        }
    }

    #[test]
    fn neh_single_job() {
        let inst = Instance::new(1, 3, vec![5, 6, 7]);
        let (schedule, cost) = neh(&inst);
        assert_eq!(schedule, vec![0]);
        assert_eq!(cost, 18);
    }

    #[test]
    fn best_insertion_scans_all_positions() {
        let inst = generate(6, 3, 31);
        let schedule = vec![0, 1, 2, 3];
        let (pos, cost) = best_insertion(&inst, &schedule, 4);
        assert!(pos <= 4);
        // Verify the reported cost is truly minimal.
        for p in 0..=4 {
            let mut cand = schedule.clone();
            cand.insert(p, 4);
            assert!(makespan(&inst, &cand) >= cost);
        }
    }

    #[test]
    fn neh_deterministic() {
        let inst = generate(15, 8, 2026);
        assert_eq!(neh(&inst), neh(&inst));
    }
}
