//! Iterated greedy (Ruiz & Stützle 2007) — the metaheuristic that
//! produced the best known Ta056 upper bound (3681) before the paper's
//! exact resolution, and the supplier of initial upper bounds for the
//! grid search.

use crate::makespan::makespan;
use crate::neh::{best_insertion, neh};
use crate::Instance;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// Iterated greedy parameters.
#[derive(Clone, Debug)]
pub struct IgParams {
    /// Destruction–construction iterations.
    pub iterations: u32,
    /// Jobs removed per destruction (Ruiz & Stützle recommend 4).
    pub destruct: usize,
    /// Temperature factor `τ` of the Metropolis acceptance:
    /// `T = τ · Σp / (n · m · 10)`.
    pub temperature_factor: f64,
    /// Run the insertion local search after each construction.
    pub local_search: bool,
    /// RNG seed (the algorithm is deterministic given the seed).
    pub seed: u64,
}

impl Default for IgParams {
    fn default() -> Self {
        IgParams {
            iterations: 400,
            destruct: 4,
            temperature_factor: 0.4,
            local_search: true,
            seed: 0x5EED,
        }
    }
}

/// Runs iterated greedy. Returns `(best schedule, best makespan)`.
///
/// Pipeline per iteration: remove `destruct` random jobs; greedily
/// re-insert each at its best position; optionally run the insertion
/// local search; accept by Metropolis on the makespan delta.
pub fn iterated_greedy(instance: &Instance, params: &IgParams) -> (Vec<usize>, u64) {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let destruct = params.destruct.min(instance.jobs().saturating_sub(1));
    let temperature = params.temperature_factor * instance.grand_total() as f64
        / (instance.jobs() as f64 * instance.machines() as f64 * 10.0);

    let (mut current, mut current_cost) = neh(instance);
    if params.local_search {
        local_search(instance, &mut current, &mut current_cost, &mut rng);
    }
    let mut best = current.clone();
    let mut best_cost = current_cost;

    for _ in 0..params.iterations {
        // Destruction: remove `destruct` distinct random positions.
        let mut candidate = current.clone();
        let mut removed = Vec::with_capacity(destruct);
        for _ in 0..destruct {
            let pos = rng.random_range(0..candidate.len());
            removed.push(candidate.remove(pos));
        }
        // Construction: greedy best-position reinsertion.
        for &job in &removed {
            let (pos, _) = best_insertion(instance, &candidate, job);
            candidate.insert(pos, job);
        }
        let mut candidate_cost = makespan(instance, &candidate);
        if params.local_search {
            local_search(instance, &mut candidate, &mut candidate_cost, &mut rng);
        }
        // Acceptance (Metropolis-like, constant temperature).
        let accept = candidate_cost <= current_cost || {
            let delta = (candidate_cost - current_cost) as f64;
            temperature > 0.0 && rng.random_range(0.0..1.0) < (-delta / temperature).exp()
        };
        if accept {
            current = candidate;
            current_cost = candidate_cost;
        }
        if current_cost < best_cost {
            best = current.clone();
            best_cost = current_cost;
        }
    }
    (best, best_cost)
}

/// Insertion local search: repeatedly remove each job (random order) and
/// re-insert it at its best position, until a full pass yields no
/// improvement.
fn local_search(instance: &Instance, schedule: &mut Vec<usize>, cost: &mut u64, rng: &mut StdRng) {
    let mut improved = true;
    while improved {
        improved = false;
        let mut order: Vec<usize> = (0..schedule.len()).collect();
        order.shuffle(rng);
        for &slot in &order {
            // `slot` indexes the original positions; find the job's
            // current position (it may have moved).
            let job = schedule[slot.min(schedule.len() - 1)];
            let pos = schedule.iter().position(|&x| x == job).unwrap();
            schedule.remove(pos);
            let (best_pos, best_cost) = best_insertion(instance, schedule, job);
            schedule.insert(best_pos, job);
            if best_cost < *cost {
                *cost = best_cost;
                improved = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taillard::{generate, taillard_instance, TA_20_5};

    #[test]
    fn ig_returns_valid_permutation() {
        let inst = generate(12, 5, 909);
        let (schedule, cost) = iterated_greedy(&inst, &IgParams::default());
        let mut sorted = schedule.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
        assert_eq!(cost, makespan(&inst, &schedule));
    }

    #[test]
    fn ig_never_worse_than_neh() {
        for seed in [5, 17] {
            let inst = generate(10, 5, 1000 + seed);
            let (_, neh_cost) = neh(&inst);
            let params = IgParams {
                iterations: 60,
                seed: seed as u64,
                ..IgParams::default()
            };
            let (_, ig_cost) = iterated_greedy(&inst, &params);
            assert!(ig_cost <= neh_cost);
        }
    }

    #[test]
    fn ig_deterministic_for_fixed_seed() {
        let inst = generate(10, 4, 321);
        let params = IgParams {
            iterations: 40,
            ..IgParams::default()
        };
        assert_eq!(
            iterated_greedy(&inst, &params),
            iterated_greedy(&inst, &params)
        );
    }

    #[test]
    fn ig_close_to_known_optimum_on_ta001() {
        // Taillard ta001 (20×5) has proven optimum 1278. A short IG run
        // should land within 2% — a strong sanity check of both the
        // generator and the heuristic.
        let inst = taillard_instance(&TA_20_5, 1);
        let params = IgParams {
            iterations: 300,
            ..IgParams::default()
        };
        let (_, cost) = iterated_greedy(&inst, &params);
        assert!(
            cost >= 1278,
            "cost {cost} below proven optimum: generator broken?"
        );
        assert!(cost <= 1304, "cost {cost} more than 2% above optimum 1278");
    }

    #[test]
    fn destruct_clamped_on_tiny_instances() {
        let inst = generate(3, 3, 55);
        let params = IgParams {
            iterations: 10,
            destruct: 10, // larger than the job count
            ..IgParams::default()
        };
        let (schedule, _) = iterated_greedy(&inst, &params);
        assert_eq!(schedule.len(), 3);
    }
}
