//! Lower bounds for partial flowshop schedules — the bounding operator.
//!
//! Two bounds are provided:
//!
//! * [`one_machine_bound`] — the classic single-machine relaxation: each
//!   machine must still process every unscheduled job after its current
//!   head, and the last of them still has to traverse the downstream
//!   machines.
//! * [`JohnsonBound`] — the two-machine relaxation of Lageweg, Lenstra
//!   and Rinnooy Kan: for a pair of machines `(k, l)` the remaining jobs
//!   form a two-machine flowshop with time lags, solved exactly by
//!   Johnson's rule (Mitten's extension); the best pair gives a much
//!   stronger bound at a higher evaluation cost. This is the bound family
//!   used by the grid B&B literature on Taillard instances.
//!
//! Both bounds are *admissible* (never exceed the true optimum below a
//! node), which the property tests verify against brute-force enumeration
//! on small instances.

use crate::makespan::tail_after;
use crate::Instance;

/// A set of jobs as a bitmask (instances are limited to 64 jobs, which
/// covers every Taillard group up to 50×20 and beyond).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSet(pub u64);

impl JobSet {
    /// The full set `{0, …, n−1}`.
    pub fn full(n: usize) -> Self {
        assert!(n <= 64, "at most 64 jobs");
        if n == 64 {
            JobSet(u64::MAX)
        } else {
            JobSet((1u64 << n) - 1)
        }
    }

    /// The empty set.
    pub fn empty() -> Self {
        JobSet(0)
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, job: usize) -> bool {
        self.0 & (1 << job) != 0
    }

    /// Set with `job` removed.
    #[inline]
    pub fn without(self, job: usize) -> Self {
        JobSet(self.0 & !(1 << job))
    }

    /// Set with `job` added.
    #[inline]
    pub fn with(self, job: usize) -> Self {
        JobSet(self.0 | (1 << job))
    }

    /// Number of jobs in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff no job is in the set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates member jobs in increasing index order.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(j)
            }
        })
    }

    /// The `rank`-th member in increasing index order.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    #[inline]
    pub fn nth(self, rank: u64) -> usize {
        self.iter()
            .nth(rank as usize)
            .expect("rank exceeds remaining-set size")
    }
}

/// One-machine bound. For every machine `m`:
///
/// `LB(m) = heads[m] + Σ_{j∈R} p(j,m) + min_{j∈R} tail(j,m)`
///
/// plus the job-based term `min-start + job total` for each remaining
/// job; the bound is the maximum over all of these. With `R = ∅` it
/// degenerates to the partial makespan `heads[M−1]`.
pub fn one_machine_bound(instance: &Instance, heads: &[u64], remaining: JobSet) -> u64 {
    let m_count = instance.machines();
    if remaining.is_empty() {
        return heads[m_count - 1];
    }
    let mut best = heads[m_count - 1];
    for (m, &head) in heads.iter().enumerate().take(m_count) {
        let mut load = 0u64;
        let mut min_tail = u64::MAX;
        for j in remaining.iter() {
            load += u64::from(instance.time(j, m));
            min_tail = min_tail.min(tail_after(instance, j, m));
        }
        best = best.max(head + load + min_tail);
    }
    // Job-based term: job j cannot start machine 0 before heads[0] and
    // needs at least its total processing time end-to-end.
    for j in remaining.iter() {
        best = best.max(heads[0] + instance.job_total(j));
    }
    best
}

/// Which machine pairs the Johnson bound evaluates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PairSelection {
    /// Every pair `(k, l)` with `k < l` — strongest, O(M²) pairs.
    All,
    /// Adjacent pairs `(m, m+1)` plus the extremal pair `(0, M−1)`.
    AdjacentPlusEnds,
    /// An explicit pair list.
    Custom(Vec<(usize, usize)>),
}

/// Precomputed two-machine (Johnson) bound of Lageweg–Lenstra–Rinnooy
/// Kan.
///
/// For each selected pair `(k, l)`, jobs are pre-sorted by Johnson's rule
/// on `(p(j,k) + lag, lag + p(j,l))` where `lag = Σ_{k<m<l} p(j,m)`.
/// Restricting a Johnson-sorted list to any subset keeps it
/// Johnson-sorted, so bound evaluation is a single pass per pair.
#[derive(Clone, Debug)]
pub struct JohnsonBound {
    pairs: Vec<PairData>,
}

#[derive(Clone, Debug)]
struct PairData {
    k: usize,
    l: usize,
    /// Jobs in Johnson order for this pair.
    order: Vec<u16>,
    /// `lag[j]` for this pair.
    lags: Vec<u64>,
}

impl JohnsonBound {
    /// Precomputes Johnson orders for the selected machine pairs.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or non-increasing custom pairs.
    pub fn new(instance: &Instance, selection: &PairSelection) -> Self {
        let m = instance.machines();
        let pair_list: Vec<(usize, usize)> = match selection {
            PairSelection::All => (0..m)
                .flat_map(|k| (k + 1..m).map(move |l| (k, l)))
                .collect(),
            PairSelection::AdjacentPlusEnds => {
                let mut v: Vec<(usize, usize)> =
                    (0..m.saturating_sub(1)).map(|k| (k, k + 1)).collect();
                if m >= 2 && !v.contains(&(0, m - 1)) {
                    v.push((0, m - 1));
                }
                v
            }
            PairSelection::Custom(pairs) => {
                for &(k, l) in pairs {
                    assert!(k < l && l < m, "invalid machine pair ({k},{l})");
                }
                pairs.clone()
            }
        };
        let pairs = pair_list
            .into_iter()
            .map(|(k, l)| {
                let lags: Vec<u64> = (0..instance.jobs())
                    .map(|j| (k + 1..l).map(|mm| u64::from(instance.time(j, mm))).sum())
                    .collect();
                let mut order: Vec<u16> = (0..instance.jobs() as u16).collect();
                // Johnson/Mitten rule on (a, b) = (p_k + lag, lag + p_l):
                // group 1 (a <= b) ascending a, then group 2 descending b.
                order.sort_by_key(|&j| {
                    let j = j as usize;
                    let a = u64::from(instance.time(j, k)) + lags[j];
                    let b = lags[j] + u64::from(instance.time(j, l));
                    if a <= b {
                        (0u8, a, 0u64)
                    } else {
                        (1u8, u64::MAX - b, 0u64)
                    }
                });
                PairData { k, l, order, lags }
            })
            .collect();
        JohnsonBound { pairs }
    }

    /// Number of machine pairs evaluated per bound call.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The two-machine bound for a partial schedule with machine `heads`
    /// and `remaining` unscheduled jobs. `R = ∅` degenerates to the
    /// partial makespan.
    pub fn bound(&self, instance: &Instance, heads: &[u64], remaining: JobSet) -> u64 {
        let m_count = instance.machines();
        if remaining.is_empty() {
            return heads[m_count - 1];
        }
        let mut best = 0u64;
        for pair in &self.pairs {
            let (k, l) = (pair.k, pair.l);
            let mut c1 = heads[k];
            let mut c2 = heads[l];
            let mut min_tail = u64::MAX;
            for &j16 in &pair.order {
                let j = j16 as usize;
                if !remaining.contains(j) {
                    continue;
                }
                c1 += u64::from(instance.time(j, k));
                c2 = c2.max(c1 + pair.lags[j]) + u64::from(instance.time(j, l));
                min_tail = min_tail.min(tail_after(instance, j, l));
            }
            best = best.max(c2 + min_tail);
        }
        best.max(heads[m_count - 1])
    }
}

/// Shared per-pool aggregates for the one-machine bound.
///
/// Sibling children of one search node share the parent's remaining set
/// `union`; each child schedules exactly one job `t` out of it, so the
/// per-machine load and min-tail over the child's set `union \ {t}` are
/// derivable in O(1) from aggregates over `union` (a sum delta and a
/// top-2 minimum). Aggregation is O(|union| · M) once per pool; each
/// child evaluation is O(M) instead of O(|union| · M).
pub struct OneMachinePool {
    /// `Σ_{j ∈ union} p(j, m)` per machine.
    loads: Vec<u64>,
    /// Per machine: the job with the smallest `tail_after`, that tail,
    /// and the smallest tail among the remaining jobs.
    min_tails: Vec<(usize, u64, u64)>,
    /// The job with the largest end-to-end total, that total, and the
    /// runner-up total (the job-based bound term).
    max_total: (usize, u64, u64),
}

impl OneMachinePool {
    /// Aggregates `union` once.
    ///
    /// # Panics
    ///
    /// Panics if `union` has fewer than two jobs (a single-job union has
    /// no runner-up aggregates; such pools take the scalar path).
    pub fn new(instance: &Instance, union: JobSet) -> Self {
        assert!(union.len() >= 2, "pool aggregation needs at least 2 jobs");
        let m_count = instance.machines();
        let mut loads = vec![0u64; m_count];
        let mut min_tails = vec![(usize::MAX, u64::MAX, u64::MAX); m_count];
        let mut max_total = (usize::MAX, 0u64, 0u64);
        for j in union.iter() {
            let total: u64 = instance.job_row(j).iter().map(|&t| u64::from(t)).sum();
            if total >= max_total.1 {
                max_total = (j, total, max_total.1);
            } else if total > max_total.2 {
                max_total.2 = total;
            }
            let mut tail = total;
            for (m, load) in loads.iter_mut().enumerate() {
                let p = u64::from(instance.time(j, m));
                *load += p;
                tail -= p; // now tail_after(j, m)
                let mt = &mut min_tails[m];
                if tail <= mt.1 {
                    *mt = (j, tail, mt.1);
                } else if tail < mt.2 {
                    mt.2 = tail;
                }
            }
        }
        OneMachinePool {
            loads,
            min_tails,
            max_total,
        }
    }

    /// The one-machine bound of the child that scheduled `excluded`
    /// (which must be in the union) and now sits at machine `heads` —
    /// exactly `one_machine_bound(instance, heads, union.without(excluded))`.
    pub fn bound(&self, instance: &Instance, heads: &[u64], excluded: usize) -> u64 {
        let m_count = heads.len();
        let mut best = heads[m_count - 1];
        for (m, &head) in heads.iter().enumerate() {
            let load = self.loads[m] - u64::from(instance.time(excluded, m));
            let (jmin, t1, t2) = self.min_tails[m];
            let min_tail = if jmin == excluded { t2 } else { t1 };
            best = best.max(head + load + min_tail);
        }
        let (jmax, t1, t2) = self.max_total;
        let max_total = if jmax == excluded { t2 } else { t1 };
        best.max(heads[0] + max_total)
    }
}

/// Filtered per-pool view of the Johnson pair data: every pair's
/// pre-sorted job order restricted to the pool's shared `union`, with
/// processing times, lags and tails resolved into flat SoA columns.
///
/// A child evaluation is then one allocation-free pass over `|union|`
/// rows per pair (skipping its single scheduled job) instead of a pass
/// over all `n` jobs with membership tests and per-job tail recomputation.
pub struct JohnsonPool {
    m_count: usize,
    pairs: Vec<FilteredPair>,
}

struct FilteredPair {
    k: usize,
    l: usize,
    /// Union jobs in Johnson order.
    jobs: Vec<u16>,
    /// `p(j, k)` per row.
    p_k: Vec<u64>,
    /// Mitten lag per row.
    lag: Vec<u64>,
    /// `p(j, l)` per row.
    p_l: Vec<u64>,
    /// (job with the smallest `tail_after(·, l)`, that tail, runner-up).
    min_tail: (usize, u64, u64),
}

impl JohnsonBound {
    /// Restricts every pair's Johnson order to `union` once (O(pairs ·
    /// n)), for batched evaluation of a sibling pool.
    ///
    /// # Panics
    ///
    /// Panics if `union` has fewer than two jobs.
    pub fn pool(&self, instance: &Instance, union: JobSet) -> JohnsonPool {
        assert!(union.len() >= 2, "pool aggregation needs at least 2 jobs");
        let pairs = self
            .pairs
            .iter()
            .map(|pair| {
                let mut f = FilteredPair {
                    k: pair.k,
                    l: pair.l,
                    jobs: Vec::with_capacity(union.len()),
                    p_k: Vec::with_capacity(union.len()),
                    lag: Vec::with_capacity(union.len()),
                    p_l: Vec::with_capacity(union.len()),
                    min_tail: (usize::MAX, u64::MAX, u64::MAX),
                };
                for &j16 in &pair.order {
                    let j = j16 as usize;
                    if !union.contains(j) {
                        continue;
                    }
                    f.jobs.push(j16);
                    f.p_k.push(u64::from(instance.time(j, pair.k)));
                    f.lag.push(pair.lags[j]);
                    f.p_l.push(u64::from(instance.time(j, pair.l)));
                    let tail = tail_after(instance, j, pair.l);
                    if tail <= f.min_tail.1 {
                        f.min_tail = (j, tail, f.min_tail.1);
                    } else if tail < f.min_tail.2 {
                        f.min_tail.2 = tail;
                    }
                }
                f
            })
            .collect();
        JohnsonPool {
            m_count: instance.machines(),
            pairs,
        }
    }
}

impl JohnsonPool {
    /// The Johnson bound of the child that scheduled `excluded` (which
    /// must be in the union) — exactly
    /// `JohnsonBound::bound(instance, heads, union.without(excluded))`.
    pub fn bound(&self, heads: &[u64], excluded: usize) -> u64 {
        let mut best = 0u64;
        for pair in &self.pairs {
            let mut c1 = heads[pair.k];
            let mut c2 = heads[pair.l];
            for (i, &j16) in pair.jobs.iter().enumerate() {
                if j16 as usize == excluded {
                    continue;
                }
                c1 += pair.p_k[i];
                c2 = c2.max(c1 + pair.lag[i]) + pair.p_l[i];
            }
            let (jmin, t1, t2) = pair.min_tail;
            let min_tail = if jmin == excluded { t2 } else { t1 };
            best = best.max(c2 + min_tail);
        }
        best.max(heads[self.m_count - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::makespan::{makespan, push_job};

    fn tiny() -> Instance {
        Instance::new(3, 3, vec![2, 1, 2, 1, 3, 1, 3, 1, 1])
    }

    /// Best completion over all completions of a partial schedule.
    fn exact_best_completion(instance: &Instance, prefix: &[usize]) -> u64 {
        let all: Vec<usize> = (0..instance.jobs())
            .filter(|j| !prefix.contains(j))
            .collect();
        let mut best = u64::MAX;
        let mut rest = all.clone();
        permute(&mut rest, 0, &mut |order| {
            let mut full = prefix.to_vec();
            full.extend_from_slice(order);
            best = best.min(makespan(instance, &full));
        });
        if all.is_empty() {
            best = makespan(instance, prefix);
        }
        best
    }

    fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
        if k == items.len() {
            visit(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, visit);
            items.swap(k, i);
        }
    }

    fn heads_of(instance: &Instance, prefix: &[usize]) -> Vec<u64> {
        let mut heads = vec![0u64; instance.machines()];
        for &j in prefix {
            push_job(instance, &mut heads, j);
        }
        heads
    }

    fn remaining_of(instance: &Instance, prefix: &[usize]) -> JobSet {
        let mut r = JobSet::full(instance.jobs());
        for &j in prefix {
            r = r.without(j);
        }
        r
    }

    #[test]
    fn jobset_basic_ops() {
        let s = JobSet::full(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        let s = s.without(2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
        assert_eq!(s.nth(2), 3);
        assert_eq!(s.with(2), JobSet::full(5));
        assert!(JobSet::empty().is_empty());
    }

    #[test]
    fn jobset_full_64() {
        let s = JobSet::full(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(63));
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn jobset_too_large_panics() {
        let _ = JobSet::full(65);
    }

    #[test]
    fn bounds_admissible_on_tiny_everywhere() {
        let inst = tiny();
        let johnson = JohnsonBound::new(&inst, &PairSelection::All);
        let prefixes: Vec<Vec<usize>> = vec![
            vec![],
            vec![0],
            vec![1],
            vec![2],
            vec![0, 1],
            vec![2, 0],
            vec![1, 2],
            vec![0, 1, 2],
        ];
        for prefix in prefixes {
            let heads = heads_of(&inst, &prefix);
            let remaining = remaining_of(&inst, &prefix);
            let exact = exact_best_completion(&inst, &prefix);
            let lb1 = one_machine_bound(&inst, &heads, remaining);
            let lb2 = johnson.bound(&inst, &heads, remaining);
            assert!(lb1 <= exact, "LB1 {lb1} > exact {exact} at {prefix:?}");
            assert!(lb2 <= exact, "LB2 {lb2} > exact {exact} at {prefix:?}");
        }
    }

    #[test]
    fn johnson_at_least_as_strong_at_root_of_tiny() {
        let inst = tiny();
        let heads = vec![0u64; 3];
        let remaining = JobSet::full(3);
        let lb1 = one_machine_bound(&inst, &heads, remaining);
        let johnson = JohnsonBound::new(&inst, &PairSelection::All);
        let lb2 = johnson.bound(&inst, &heads, remaining);
        assert!(lb2 >= lb1, "Johnson {lb2} weaker than one-machine {lb1}");
    }

    #[test]
    fn empty_remaining_returns_partial_makespan() {
        let inst = tiny();
        let schedule = [2, 0, 1];
        let heads = heads_of(&inst, &schedule);
        let remaining = JobSet::empty();
        let exact = makespan(&inst, &schedule);
        assert_eq!(one_machine_bound(&inst, &heads, remaining), exact);
        let johnson = JohnsonBound::new(&inst, &PairSelection::All);
        assert_eq!(johnson.bound(&inst, &heads, remaining), exact);
    }

    #[test]
    fn two_machine_exactness_via_johnson() {
        // On a 2-machine instance, the Johnson bound at the root equals
        // the true optimum (Johnson's algorithm is exact for M=2).
        let inst = Instance::new(4, 2, vec![3, 2, 1, 4, 6, 2, 2, 5]);
        let johnson = JohnsonBound::new(&inst, &PairSelection::All);
        let root_bound = johnson.bound(&inst, &[0, 0], JobSet::full(4));
        let mut jobs: Vec<usize> = (0..4).collect();
        let mut best = u64::MAX;
        permute(&mut jobs, 0, &mut |order| {
            best = best.min(makespan(&inst, order));
        });
        assert_eq!(root_bound, best);
    }

    #[test]
    fn pair_selection_sizes() {
        let inst = crate::taillard::generate(10, 6, 12345);
        assert_eq!(
            JohnsonBound::new(&inst, &PairSelection::All).pair_count(),
            15
        );
        assert_eq!(
            JohnsonBound::new(&inst, &PairSelection::AdjacentPlusEnds).pair_count(),
            6
        );
        let custom = PairSelection::Custom(vec![(0, 5), (2, 3)]);
        assert_eq!(JohnsonBound::new(&inst, &custom).pair_count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid machine pair")]
    fn custom_pair_validation() {
        let inst = tiny();
        let _ = JohnsonBound::new(&inst, &PairSelection::Custom(vec![(2, 1)]));
    }

    #[test]
    fn pool_kernels_match_scalar_bounds_exactly() {
        // Every (union, excluded job, heads) combination on a real
        // instance: the pooled delta evaluation must reproduce the
        // scalar bounds bit-for-bit, since Johnson/OneMachine pools are
        // consumed as values (not just prune decisions).
        let inst = crate::taillard::generate(9, 4, 4242);
        let johnson = JohnsonBound::new(&inst, &PairSelection::All);
        for prefix in [vec![], vec![3], vec![7, 1], vec![0, 4, 8, 2]] {
            let heads_base = heads_of(&inst, &prefix);
            let union = remaining_of(&inst, &prefix);
            let ctx = OneMachinePool::new(&inst, union);
            let jpool = johnson.pool(&inst, union);
            for t in union.iter() {
                let mut heads = heads_base.clone();
                push_job(&inst, &mut heads, t);
                let child = union.without(t);
                assert_eq!(
                    ctx.bound(&inst, &heads, t),
                    one_machine_bound(&inst, &heads, child),
                    "one-machine pool mismatch at {prefix:?} + {t}"
                );
                assert_eq!(
                    jpool.bound(&heads, t),
                    johnson.bound(&inst, &heads, child),
                    "johnson pool mismatch at {prefix:?} + {t}"
                );
            }
        }
    }

    #[test]
    fn all_pairs_dominate_subsets() {
        let inst = crate::taillard::generate(8, 5, 777);
        let all = JohnsonBound::new(&inst, &PairSelection::All);
        let sub = JohnsonBound::new(&inst, &PairSelection::AdjacentPlusEnds);
        let heads = vec![0u64; 5];
        let r = JobSet::full(8);
        assert!(all.bound(&inst, &heads, r) >= sub.bound(&inst, &heads, r));
    }
}
