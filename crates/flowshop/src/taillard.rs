//! Taillard's benchmark generator (E. Taillard, *Benchmarks for basic
//! scheduling problems*, EJOR 64:278–285, 1993).
//!
//! Instances are defined by a linear congruential generator and a
//! published per-instance seed, so the exact processing-time matrices can
//! be regenerated anywhere. Ta056 — the 50×20 instance the paper solved
//! for the first time — is `taillard_instance(TA_50_20, 6)`.
//!
//! The embedded seed tables cover the 20×5, 20×10, 20×20 and 50×20
//! groups. The 50×20 entry for Ta056 is cross-validated by evaluating the
//! optimal schedule published in the paper (§5.3): its makespan must be
//! exactly 3679 (see `ta056` tests).

use crate::Instance;

/// Taillard's portable uniform generator: 31-bit Lehmer LCG
/// (`seed ← 16807·seed mod 2³¹−1`) via Schrage's method, mapped to
/// `{low, …, high}`.
#[derive(Clone, Debug)]
pub struct TaillardRng {
    seed: i64,
}

impl TaillardRng {
    const M: i64 = 2_147_483_647;
    const A: i64 = 16_807;
    const B: i64 = 127_773;
    const C: i64 = 2_836;

    /// Creates the generator with a published time seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < seed < 2³¹ − 1` (Lehmer generators cannot leave
    /// the zero state).
    pub fn new(seed: i64) -> Self {
        assert!(seed > 0 && seed < Self::M, "seed out of range");
        TaillardRng { seed }
    }

    /// Next uniform value in `(0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        let k = self.seed / Self::B;
        self.seed = Self::A * (self.seed % Self::B) - k * Self::C;
        if self.seed < 0 {
            self.seed += Self::M;
        }
        self.seed as f64 / Self::M as f64
    }

    /// Next uniform integer in `{low, …, high}` — Taillard's `unif`.
    pub fn next_int(&mut self, low: i32, high: i32) -> i32 {
        low + (self.next_unit() * f64::from(high - low + 1)) as i32
    }
}

/// A benchmark group: all instances share a shape and differ by seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchmarkGroup {
    /// Group name (e.g. `"ta051-ta060"`).
    pub name: &'static str,
    /// Jobs per instance.
    pub jobs: usize,
    /// Machines per instance.
    pub machines: usize,
    /// Index of the first instance in Taillard's global numbering
    /// (1-based; e.g. 51 for the 50×20 group).
    pub first_index: usize,
    /// The published time seeds, one per instance.
    pub time_seeds: [i64; 10],
}

/// The 20×5 group, ta001–ta010.
pub const TA_20_5: BenchmarkGroup = BenchmarkGroup {
    name: "ta001-ta010",
    jobs: 20,
    machines: 5,
    first_index: 1,
    time_seeds: [
        873654221, 379008056, 1866992158, 216771124, 495070989, 402959317, 1369363414, 2021925980,
        573109518, 88325120,
    ],
};

/// The 20×10 group, ta011–ta020.
pub const TA_20_10: BenchmarkGroup = BenchmarkGroup {
    name: "ta011-ta020",
    jobs: 20,
    machines: 10,
    first_index: 11,
    time_seeds: [
        587595453, 1401007982, 873136276, 268827376, 1634173168, 691823909, 73807235, 1273398721,
        2065119309, 1672900551,
    ],
};

/// The 20×20 group, ta021–ta030.
pub const TA_20_20: BenchmarkGroup = BenchmarkGroup {
    name: "ta021-ta030",
    jobs: 20,
    machines: 20,
    first_index: 21,
    time_seeds: [
        479340445, 268827376, 1958948863, 918272953, 555010963, 2010851491, 1519833303, 1748670931,
        1923497586, 1829909967,
    ],
};

/// The 50×20 group, ta051–ta060 — Ta056 is instance 6 of this group.
pub const TA_50_20: BenchmarkGroup = BenchmarkGroup {
    name: "ta051-ta060",
    jobs: 50,
    machines: 20,
    first_index: 51,
    time_seeds: [
        3755293, 2898574, 3902815, 1237595, 1064093, 1397197, 1544387, 1369098, 456619, 2908525,
    ],
};

/// Generates the `k`-th (1-based) instance of a group with Taillard's
/// generator: processing times `unif(1, 99)`, machine-major order.
///
/// # Panics
///
/// Panics if `k` is not in `1..=10`.
pub fn taillard_instance(group: &BenchmarkGroup, k: usize) -> Instance {
    assert!((1..=10).contains(&k), "groups have 10 instances");
    generate(group.jobs, group.machines, group.time_seeds[k - 1])
}

/// Generates a flowshop instance of arbitrary shape from a seed using
/// Taillard's procedure (times in `1..=99`, machine-major fill order).
pub fn generate(jobs: usize, machines: usize, time_seed: i64) -> Instance {
    let mut rng = TaillardRng::new(time_seed);
    let mut machine_major = Vec::with_capacity(jobs * machines);
    for _m in 0..machines {
        for _j in 0..jobs {
            machine_major.push(rng.next_int(1, 99) as u32);
        }
    }
    Instance::from_machine_major(jobs, machines, machine_major)
}

/// The instance the paper solved: Ta056 (50 jobs × 20 machines).
pub fn ta056() -> Instance {
    taillard_instance(&TA_50_20, 6)
}

/// The optimal Ta056 schedule published in the paper (§5.3), as 0-based
/// job indices in processing order. Its makespan is 3679 — the first
/// proven optimum for this instance.
pub const TA056_OPTIMAL_SCHEDULE: [usize; 50] = [
    13, 36, 2, 17, 7, 32, 10, 20, 41, 4, 12, 48, 49, 19, 27, 44, 42, 40, 45, 14, 23, 43, 39, 35,
    38, 3, 15, 46, 16, 26, 0, 25, 9, 18, 31, 24, 29, 6, 1, 30, 22, 5, 47, 21, 28, 33, 8, 34, 37,
    11,
];

/// The proven optimal makespan of Ta056 (paper §5.3).
pub const TA056_OPTIMUM: u64 = 3679;

/// The best known upper bound before the paper's runs (Ruiz & Stützle's
/// iterated greedy): 3681. The paper's first run was initialized with it.
pub const TA056_PRIOR_BEST: u64 = 3681;
