//! The `Problem` implementation binding the flowshop substrate to the
//! interval-coded search tree.

use crate::bounds::{one_machine_bound, JobSet, JohnsonBound, OneMachinePool, PairSelection};
use crate::makespan::push_job;
use crate::Instance;
use gridbnb_coding::TreeShape;
use gridbnb_engine::Problem;

/// Which bounding operator the search uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundMode {
    /// The one-machine bound only (cheapest).
    OneMachine,
    /// The Johnson two-machine bound over the selected pairs.
    Johnson(PairSelection),
    /// `max(one-machine, Johnson)` — strongest, for hard instances.
    Combined(PairSelection),
}

impl Default for BoundMode {
    fn default() -> Self {
        BoundMode::Combined(PairSelection::All)
    }
}

/// The permutation flowshop as a [`Problem`] on a permutation tree:
/// depth `d` fixes the job in position `d`; rank `r` selects the `r`-th
/// (by index) still-unscheduled job.
#[derive(Clone, Debug)]
pub struct FlowshopProblem {
    instance: Instance,
    mode: BoundMode,
    johnson: Option<JohnsonBound>,
}

/// Search state: machine heads of the scheduled prefix plus the remaining
/// job set. The prefix itself is implied by the tree path (the engine
/// carries ranks), so states stay small.
#[derive(Clone, Debug)]
pub struct FlowshopState {
    heads: Vec<u64>,
    remaining: JobSet,
}

impl FlowshopProblem {
    /// Binds an instance with the given bounding operator.
    ///
    /// # Panics
    ///
    /// Panics if the instance has more than 64 jobs (the remaining-set
    /// bitmask limit; every Taillard group fits).
    pub fn new(instance: Instance, mode: BoundMode) -> Self {
        assert!(instance.jobs() <= 64, "at most 64 jobs");
        let johnson = match &mode {
            BoundMode::OneMachine => None,
            BoundMode::Johnson(sel) | BoundMode::Combined(sel) => {
                Some(JohnsonBound::new(&instance, sel))
            }
        };
        FlowshopProblem {
            instance,
            mode,
            johnson,
        }
    }

    /// Binds with the default (strongest) bound.
    pub fn with_default_bound(instance: Instance) -> Self {
        FlowshopProblem::new(instance, BoundMode::default())
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The bound mode in use.
    pub fn bound_mode(&self) -> &BoundMode {
        &self.mode
    }

    /// Decodes branch ranks (as reported in engine `Solution`s) into the
    /// job permutation they represent.
    pub fn decode_ranks(&self, ranks: &[u64]) -> Vec<usize> {
        let mut remaining = JobSet::full(self.instance.jobs());
        ranks
            .iter()
            .map(|&r| {
                let job = remaining.nth(r);
                remaining = remaining.without(job);
                job
            })
            .collect()
    }

    /// Encodes a job permutation into branch ranks — the inverse of
    /// [`FlowshopProblem::decode_ranks`]. Useful to locate a known
    /// schedule (like the paper's published Ta056 optimum) in the tree.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is not a permutation of `0..jobs`.
    pub fn encode_schedule(&self, schedule: &[usize]) -> Vec<u64> {
        assert_eq!(schedule.len(), self.instance.jobs(), "not a permutation");
        let mut remaining = JobSet::full(self.instance.jobs());
        schedule
            .iter()
            .map(|&job| {
                let rank = remaining
                    .iter()
                    .position(|j| j == job)
                    .expect("job repeated or out of range") as u64;
                remaining = remaining.without(job);
                rank
            })
            .collect()
    }
}

impl Problem for FlowshopProblem {
    type State = FlowshopState;

    fn shape(&self) -> TreeShape {
        TreeShape::permutation(self.instance.jobs())
    }

    fn root_state(&self) -> FlowshopState {
        FlowshopState {
            heads: vec![0; self.instance.machines()],
            remaining: JobSet::full(self.instance.jobs()),
        }
    }

    fn branch(&self, state: &FlowshopState, rank: u64) -> FlowshopState {
        let job = state.remaining.nth(rank);
        let mut heads = state.heads.clone();
        push_job(&self.instance, &mut heads, job);
        FlowshopState {
            heads,
            remaining: state.remaining.without(job),
        }
    }

    fn lower_bound(&self, state: &FlowshopState) -> u64 {
        match &self.mode {
            BoundMode::OneMachine => {
                one_machine_bound(&self.instance, &state.heads, state.remaining)
            }
            BoundMode::Johnson(_) => self.johnson.as_ref().expect("johnson precomputed").bound(
                &self.instance,
                &state.heads,
                state.remaining,
            ),
            BoundMode::Combined(_) => {
                let lb1 = one_machine_bound(&self.instance, &state.heads, state.remaining);
                let lb2 = self.johnson.as_ref().expect("johnson precomputed").bound(
                    &self.instance,
                    &state.heads,
                    state.remaining,
                );
                lb1.max(lb2)
            }
        }
    }

    /// Flat pool kernel. When the pool is a sibling pool — every state's
    /// remaining set is one shared union minus exactly one job, which is
    /// how the pooled explorer builds them — the parent-level aggregates
    /// (per-machine loads, top-2 min-tails, Johnson orders filtered to
    /// the union) are computed once and every child is evaluated as an
    /// allocation-free delta. In `Combined` mode the Johnson pass runs
    /// only on survivors of the one-machine screen: a child the cheap
    /// bound already eliminates stays eliminated under every future
    /// (lower) cutoff, because the combined bound dominates it.
    ///
    /// `OneMachine` and `Johnson` modes reproduce the scalar bound
    /// values exactly; `Combined` reproduces the scalar elimination
    /// decisions exactly (values may report the cheaper tier).
    fn lower_bound_batch(&self, states: &[FlowshopState], cutoff: u64, out: &mut Vec<u64>) {
        out.clear();
        out.reserve(states.len());
        let union = JobSet(states.iter().fold(0u64, |acc, s| acc | s.remaining.0));
        let siblings = union.len() >= 2
            && states
                .iter()
                .all(|s| (union.0 & !s.remaining.0).count_ones() == 1);
        if !siblings {
            // Not a recognizable sibling pool (or too small to share
            // anything): scalar loop.
            for s in states {
                out.push(self.lower_bound_against(s, cutoff));
            }
            return;
        }
        let excluded = |s: &FlowshopState| (union.0 & !s.remaining.0).trailing_zeros() as usize;
        match &self.mode {
            BoundMode::OneMachine => {
                let ctx = OneMachinePool::new(&self.instance, union);
                for s in states {
                    out.push(ctx.bound(&self.instance, &s.heads, excluded(s)));
                }
            }
            BoundMode::Johnson(_) => {
                let johnson = self.johnson.as_ref().expect("johnson precomputed");
                let pool = johnson.pool(&self.instance, union);
                for s in states {
                    out.push(pool.bound(&s.heads, excluded(s)));
                }
            }
            BoundMode::Combined(_) => {
                let ctx = OneMachinePool::new(&self.instance, union);
                for s in states {
                    out.push(ctx.bound(&self.instance, &s.heads, excluded(s)));
                }
                let survivors = out.iter().filter(|&&b| b < cutoff).count();
                if survivors == 0 {
                    return; // whole pool screened out; Johnson would be wasted
                }
                let johnson = self.johnson.as_ref().expect("johnson precomputed");
                if survivors < 3 {
                    // Building the filtered-order pool costs several
                    // allocations; below this it is cheaper to run the
                    // allocation-free scalar Johnson bound directly.
                    for (i, s) in states.iter().enumerate() {
                        if out[i] < cutoff {
                            out[i] =
                                out[i].max(johnson.bound(&self.instance, &s.heads, s.remaining));
                        }
                    }
                    return;
                }
                let pool = johnson.pool(&self.instance, union);
                for (i, s) in states.iter().enumerate() {
                    if out[i] < cutoff {
                        out[i] = out[i].max(pool.bound(&s.heads, excluded(s)));
                    }
                }
            }
        }
    }

    fn leaf_cost(&self, state: &FlowshopState) -> u64 {
        debug_assert!(state.remaining.is_empty());
        state.heads[self.instance.machines() - 1]
    }
}
